"""Ablation A1: SOCS kernel count vs accuracy and speed.

Design choice: images are computed with truncated TCC eigen-kernels.  How
many kernels does the flow actually need?  Accuracy is measured against
the Abbe reference on a standard-cell-like mask.
"""

import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.geometry import Polygon, Rect
from repro.litho import OpticalModel
from repro.litho.raster import rasterize


@pytest.fixture(scope="module")
def mask(tech):
    polys = [Polygon.from_rect(Rect(i * 320 - 45, -800, i * 320 + 45, 800))
             for i in range(-2, 3)]
    polys.append(Polygon.from_rect(Rect(-75, 900, 75, 1050)))  # a pad
    return rasterize(polys, Rect(-1280, -1280, 1280, 1280), tech.litho.pixel_nm)


def test_a1_socs_kernel_count(benchmark, tech, mask):
    reference = OpticalModel(tech.litho, max_kernels=100, energy_cutoff=0.999999)
    abbe = reference.aerial_image(mask, method="abbe").intensity

    rows = []
    errors = {}
    for kernels in (4, 8, 16, 24, 40):
        model = OpticalModel(tech.litho, max_kernels=kernels, energy_cutoff=1.0)
        start = time.perf_counter()
        image = model.aerial_image(mask, method="socs").intensity
        model.aerial_image(mask, method="socs")  # cached-kernel timing
        elapsed = (time.perf_counter() - start) / 2
        err = float(np.abs(image - abbe).max())
        errors[kernels] = err
        rows.append((kernels, f"{err:.2e}", f"{1000 * elapsed:.0f}"))

    print()
    print(format_table(
        ["kernels", "max |I - Abbe|", "image time (ms)"],
        rows,
        title="A1: SOCS truncation vs the Abbe reference (5-line + pad mask)",
    ))

    assert errors[40] < 1e-3          # production default is Abbe-exact
    assert errors[4] > errors[40]     # truncation visibly costs accuracy
    # Monotone improvement with kernel count.
    ordered = [errors[k] for k in (4, 8, 16, 24, 40)]
    assert all(a >= b - 1e-12 for a, b in zip(ordered, ordered[1:]))

    model = OpticalModel(tech.litho)
    model.aerial_image(mask)  # warm the kernel cache
    benchmark(model.aerial_image, mask)
