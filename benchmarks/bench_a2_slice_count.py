"""Ablation A2: metrology slice count for non-rectangular gates.

Design choice: how many CD slices per gate does equivalent-length
extraction need?  Ground truth is a dense 17-slice measurement of a real
(litho-simulated, un-OPC'd) gate; fewer slices must converge to it.
"""

import pytest

from repro.analysis import format_table
from repro.device import extract_equivalent_lengths
from repro.metrology import measure_gate_cds
from repro.pdk import Layers


@pytest.fixture(scope="module")
def gate_setup(simulator, library):
    inv = library["INV_X1"]
    polys = inv.layout.polygons_on(Layers.POLY)
    transistor = inv.transistor("MP0")  # widest device: most CD variation
    region = transistor.gate_rect.expanded(250)
    latent = simulator.latent_image(polys, region)
    return latent, transistor, simulator.resist.threshold


def test_a2_slice_count(benchmark, gate_setup, device_model):
    latent, transistor, threshold = gate_setup
    rects = {"g": transistor.gate_rect}

    def extract(n_slices):
        (m,) = measure_gate_cds(latent, threshold, rects, n_slices=n_slices).values()
        return extract_equivalent_lengths(m, device_model, width=transistor.width)

    reference = extract(17)
    rows = []
    errors = {}
    for n in (1, 3, 5, 9, 17):
        nrg = extract(n)
        err_drive = abs(nrg.length_drive - reference.length_drive)
        err_leak = abs(nrg.length_leakage - reference.length_leakage)
        errors[n] = (err_drive, err_leak)
        rows.append((
            n, f"{nrg.length_drive:.2f}", f"{nrg.length_leakage:.2f}",
            f"{err_drive:.3f}", f"{err_leak:.3f}",
        ))
    print()
    print(format_table(
        ["slices", "drive EL (nm)", "leak EL (nm)", "drive err (nm)", "leak err (nm)"],
        rows,
        title="A2: equivalent-length convergence vs slice count "
              "(un-OPC'd INV_X1 PMOS gate)",
    ))

    # 5 slices (the flow default) sits within ~1.5 nm of the dense truth —
    # the endcap neck falls between stations, so convergence is first-order.
    assert errors[5][0] < 1.5
    assert errors[5][1] < 2.0
    # More slices converge; a single mid-cut misses the neck entirely.
    assert errors[9][0] <= errors[3][0] + 0.05
    assert errors[1][1] >= errors[5][1]

    benchmark(extract, 5)
