"""Ablation A3: simulation-window ambit vs CD stitching noise.

Design choice: how much halo does a simulation window need?  Too little
and FFT wrap-around perturbs CDs near the window; the default (1200 nm)
keeps the site-to-site noise well under the residual OPC error it would
otherwise masquerade as.
"""

import pytest

from repro.analysis import format_table
from repro.geometry import Polygon, Rect
from repro.litho import LithographySimulator
from repro.litho.simulator import measure_cd_on_cutline


@pytest.fixture(scope="module")
def grating():
    return [Polygon.from_rect(Rect(i * 320 - 45, -800, i * 320 + 45, 800))
            for i in range(-2, 3)]


def test_a3_ambit_noise(benchmark, tech, simulator, grating):
    region = Rect(-300, -300, 300, 300)
    threshold = simulator.resist.threshold

    reference_sim = LithographySimulator.for_tech(tech, ambit=2800)
    reference_sim.resist = simulator.resist
    truth = measure_cd_on_cutline(
        reference_sim.latent_image(grating, region), threshold, -160, 160, 0.0
    )

    rows = []
    noise = {}
    for ambit in (400, 800, 1200, 1600):
        sim = LithographySimulator.for_tech(tech, ambit=ambit)
        sim.resist = simulator.resist
        cd = measure_cd_on_cutline(
            sim.latent_image(grating, region), threshold, -160, 160, 0.0
        )
        noise[ambit] = abs(cd - truth)
        rows.append((ambit, f"{cd:.2f}", f"{cd - truth:+.2f}"))
    print()
    print(format_table(
        ["ambit (nm)", "measured CD (nm)", "error vs 2800 nm halo"],
        rows,
        title=f"A3: window halo vs CD accuracy (truth {truth:.2f} nm)",
    ))

    assert noise[1200] < 1.0           # the default is sub-nm accurate
    assert noise[400] > noise[1600] - 0.05  # small halos are visibly worse

    benchmark(simulator.latent_image, grating, region)
