"""Ablation A4: flexible design rules and the attenuated-PSM option.

Two extension studies tied to the authors' companion work:

* the FDR exploration — classifying gate-layer pitches by image
  parameters (NILS, MEEF, CD fidelity) instead of one minimum-pitch rule;
* binary mask vs 6% attenuated PSM at the anchor pitch.
"""

import dataclasses

import pytest

from repro.analysis import format_table
from repro.dfm import explore_pitch_rules
from repro.litho import LithographySimulator, grating_meef, grating_nils


def test_a4_flexible_design_rules(benchmark, simulator, tech):
    pitches = [320, 400, 480, 640, 960, 1600]
    verdicts = explore_pitch_rules(simulator, tech.rules.gate_length, pitches)

    rows = [
        (f"{v.pitch:.0f}", f"{v.printed_cd:.1f}", f"{v.cd_error:+.1f}",
         f"{v.nils:.2f}", f"{v.meef:.2f}", v.classification)
        for v in verdicts
    ]
    print()
    print(format_table(
        ["pitch (nm)", "printed CD", "CD err (nm)", "NILS", "MEEF", "class"],
        rows,
        title="A4a: flexible design rules for the 90 nm gate layer (no OPC)",
    ))

    by_pitch = {v.pitch: v for v in verdicts}
    assert by_pitch[320].classification in ("preferred", "allowed")
    # Somewhere in the sweep the simple fixed rule would hide a bad pitch.
    assert any(v.classification == "flagged" for v in verdicts)

    benchmark(grating_nils, simulator, 90.0, 320.0)


def test_a4_attpsm_vs_binary(tech, simulator, benchmark):
    psm_settings = dataclasses.replace(tech.litho, mask_type="attpsm")
    psm = LithographySimulator(psm_settings)
    psm.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)

    rows = []
    values = {}
    for name, sim in (("binary", simulator), ("attpsm 6%", psm)):
        nils = grating_nils(sim, 90, 320)
        meef = grating_meef(sim, 90, 320)
        values[name] = (nils, meef)
        rows.append((name, f"{sim.resist.threshold:.3f}", f"{nils:.2f}", f"{meef:.2f}"))
    print()
    print(format_table(
        ["mask", "threshold", "NILS", "MEEF"],
        rows,
        title="A4b: binary chrome vs attenuated PSM at the anchor pitch",
    ))

    assert values["attpsm 6%"][0] > 1.15 * values["binary"][0]

    benchmark(grating_meef, psm, 90.0, 320.0)
