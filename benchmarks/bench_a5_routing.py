"""Ablation A5: HPWL wire estimate vs realised routed wirelength.

The paper's flow annotates *gate* CDs; wires enter timing through the
load model.  How much does replacing the placement-time HPWL estimate
with actual maze-routed lengths move the analysis?
"""

import pytest

from repro.analysis import format_table
from repro.route import route_design
from repro.timing import StaEngine


def test_a5_routed_vs_hpwl(benchmark, adder_flow):
    netlist = adder_flow.netlist
    cells = adder_flow.cells
    placement = adder_flow.placement
    routing = route_design(netlist, cells, placement)

    hpwl_engine = adder_flow.engine
    routed_engine = StaEngine(netlist, cells, adder_flow.liberty, placement,
                              net_lengths=routing.net_lengths())
    d_hpwl = hpwl_engine.run().critical_delay
    d_routed = routed_engine.run().critical_delay

    hpwl_total = placement.half_perimeter_wirelength(netlist, cells)
    rows = [
        ("total wirelength (um)", f"{hpwl_total / 1000:.1f}",
         f"{routing.total_wirelength_nm / 1000:.1f}"),
        ("critical delay (ps)", f"{d_hpwl:.1f}", f"{d_routed:.1f}"),
        ("vias", "-", routing.total_vias),
        ("failed nets", "-", len(routing.failed_nets)),
    ]
    print()
    print(format_table(
        ["quantity", "HPWL estimate", "maze-routed"],
        rows,
        title=f"A5: wire model ablation on {netlist.name} "
              f"({netlist.gate_count} gates)",
    ))

    assert routing.clean
    # Routed trees detour: total length exceeds the HPWL lower-bound scale.
    assert routing.total_wirelength_nm > 0.7 * hpwl_total
    # The timing conclusion is stable across the wire models (<20% delta).
    assert d_routed == pytest.approx(d_hpwl, rel=0.2)

    benchmark(route_design, netlist, cells, placement)
