"""Ablation A6: technology scaling of the drawn-vs-printed gap.

The same research group's later work studies printability across node
transitions; here the flow runs the same design at the 130 nm (KrF) and
90 nm (ArF) nodes and compares the printed-CD error populations — the
gap the paper's methodology exists to close, shown growing with scaling.
"""

import pytest

from repro.analysis import format_table
from repro.cells import build_library
from repro.circuits import c17
from repro.flow import FlowConfig, PostOpcTimingFlow
from repro.pdk import make_tech_130nm, make_tech_90nm


@pytest.fixture(scope="module")
def node_reports():
    reports = {}
    for tech in (make_tech_130nm(), make_tech_90nm()):
        library = build_library(tech)
        flow = PostOpcTimingFlow(c17(library), tech, cells=library)
        reports[tech.name] = (
            tech,
            flow.run(FlowConfig(opc_mode="none", clock_period_ps=1000.0)),
            flow.run(FlowConfig(opc_mode="rule", clock_period_ps=1000.0)),
        )
    return reports


def test_a6_node_scaling(benchmark, node_reports):
    rows = []
    relative = {}
    for name, (tech, raw, rule) in node_reports.items():
        length = tech.rules.gate_length
        relative[name] = abs(raw.cd_stats.mean) / length
        rows.append((
            name,
            f"{tech.litho.k1_for_pitch(tech.rules.poly_pitch):.2f}",
            f"{raw.cd_stats.mean:+.2f}",
            f"{100 * raw.cd_stats.mean / length:+.1f}%",
            f"{rule.cd_stats.mean:+.2f}",
            f"{rule.cd_stats.sigma:.2f}",
        ))
    print()
    print(format_table(
        ["node", "k1", "no-OPC CD err (nm)", "relative", "rule-OPC err (nm)",
         "rule-OPC sigma"],
        rows,
        title="A6: drawn-vs-printed gap across technology nodes (c17)",
    ))
    print()
    print("scaling pressure: the uncorrected gap is a larger fraction of the")
    print("gate at the newer node — post-OPC extraction becomes mandatory.")

    # Both nodes print; the relative uncorrected error grows with scaling.
    assert relative["repro90"] > relative["repro130"]
    for name, (_, raw, rule) in node_reports.items():
        assert raw.cd_stats.count > 0
        assert abs(rule.cd_stats.mean) < abs(raw.cd_stats.mean)

    tech130, raw130, _ = node_reports["repro130"]
    benchmark(lambda: raw130.cd_stats.sigma)
