"""Ablation A7: flow-engine parallelism and artifact-cache reuse.

Two questions about the stage-graph engine:

* How does the tile-parallel backend scale?  The metrology + model-OPC
  wall time is measured at jobs = 1, 2, 4 on a forced multi-tile setup
  (small ambit / small tile budget so even c17 splits into many tiles).
* What does the shared FlowContext buy a sweep?  A four-mode OPC sweep
  through one context is compared against four cold single-mode runs.
"""

import time

import pytest

from repro.analysis import format_table
from repro.circuits import c17
from repro.flow import FlowConfig, FlowSweep, PostOpcTimingFlow
from repro.litho import LithographySimulator


def _small_tile_simulator(tech):
    sim = LithographySimulator.for_tech(tech, ambit=600.0, max_tile_px=192)
    sim.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    return sim


def test_a7_tile_parallel_scaling(benchmark, tech, library):
    config = FlowConfig(opc_mode="selective", clock_period_ps=500,
                        n_critical_paths=2)
    rows = []
    reference = None
    for jobs in (1, 2, 4):
        flow = PostOpcTimingFlow(c17(library), tech, cells=library,
                                 simulator=_small_tile_simulator(tech),
                                 jobs=jobs)
        report = flow.run(config)
        metrology = report.trace.record_for("metrology")
        opc = report.trace.record_for("opc")
        rows.append((
            jobs,
            flow.executor.backend,
            metrology.counters["tiles"],
            f"{opc.wall_s:.2f}",
            f"{metrology.wall_s:.2f}",
            f"{report.wns_post:+.2f}",
        ))
        if reference is None:
            reference = report
        else:
            # Parallel dispatch must not change the numbers.
            assert report.wns_post == reference.wns_post
            assert report.measurements == reference.measurements

    print()
    print(format_table(
        ["jobs", "backend", "tiles", "OPC wall (s)", "metrology wall (s)",
         "WNS post (ps)"],
        rows,
        title="A7: tile-loop scaling (c17, forced multi-tile grid)",
    ))
    benchmark.extra_info["tiles"] = rows[0][2]
    # A fully-cached re-run: the fixed cost of assembling a report when
    # every stage is served from the artifact context.
    benchmark(flow.run, config)


def test_a7_sweep_cache_reuse(benchmark, tech, library, simulator):
    config = FlowConfig(clock_period_ps=500)

    start = time.perf_counter()
    cold_reports = {}
    for mode in ("none", "rule", "model", "selective"):
        flow = PostOpcTimingFlow(c17(library), tech, cells=library,
                                 simulator=simulator)
        cold_reports[mode] = flow.run(
            FlowConfig(opc_mode=mode, clock_period_ps=500))
    cold_wall = time.perf_counter() - start

    shared = PostOpcTimingFlow(c17(library), tech, cells=library,
                               simulator=simulator)
    start = time.perf_counter()
    result = FlowSweep(shared).run(config)
    sweep_wall = time.perf_counter() - start

    rows = [
        ("4 cold flows", f"{cold_wall:.2f}", 0),
        ("shared-context sweep", f"{sweep_wall:.2f}",
         sum(r.trace.cache_hits for r in result.reports.values())),
    ]
    print()
    print(format_table(
        ["strategy", "wall (s)", "stages from cache"],
        rows,
        title="A7: OPC-mode sweep, shared artifact context vs cold runs",
    ))

    # Shared context serves placement/drawn-STA/tagging from cache and
    # must not change any result.  (Wall times are reported, not asserted:
    # the cacheable stages are cheap next to model OPC, so the gap is
    # within noise on a loaded machine.)
    for mode, cold in cold_reports.items():
        assert result.reports[mode].wns_post == cold.wns_post
    ctx = shared.context
    assert ctx.misses["place"] == 1 and ctx.hits["place"] == 3
    assert ctx.misses["sta_drawn"] == 1 and ctx.hits["sta_drawn"] == 3
    benchmark.extra_info["cold_wall_s"] = round(cold_wall, 2)
    benchmark.extra_info["sweep_wall_s"] = round(sweep_wall, 2)
    # Re-running any already-swept mode is now a pure cache replay.
    benchmark(shared.run, FlowConfig(opc_mode="rule", clock_period_ps=500))
