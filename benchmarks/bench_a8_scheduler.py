"""Ablation A8: async stage-level DAG scheduler vs the serial engine.

Three questions about the scheduler refactor:

* What does the async DAG path cost on a single run?  The serial engine
  and the scheduler must produce bit-identical reports; the scheduler
  adds event-loop plumbing, so the single-run delta is pure overhead.
* What does the concurrent sweep buy?  A four-mode OPC sweep dispatched
  as one shared-prefix DAG is compared against the serial sweep.  The
  stage bodies are pure-Python and GIL-bound, so the win is *not* wall
  time — it is single-flight dedup: the shared prefix (place, drawn STA,
  tagging, rule-OPC base) is computed exactly once no matter how many
  modes race for it, and overlapping stage windows prove the modes
  actually ran concurrently.
* What does a second identical sweep cost through a warm context?  Every
  stage key is already settled, so the replay is the fixed cost of
  assembling four reports from cache.
"""

import time

import pytest

from repro.analysis import format_table
from repro.circuits import c17
from repro.flow import (
    FlowConfig,
    FlowSweep,
    FlowTrace,
    PostOpcTimingFlow,
    StageScheduler,
)


def test_a8_single_run_scheduler_overhead(benchmark, tech, library, simulator):
    config = FlowConfig(opc_mode="selective", clock_period_ps=500,
                        n_critical_paths=2)

    serial_flow = PostOpcTimingFlow(c17(library), tech, cells=library,
                                    simulator=simulator)
    start = time.perf_counter()
    serial_report = serial_flow.run(config)
    serial_wall = time.perf_counter() - start

    async_flow = PostOpcTimingFlow(c17(library), tech, cells=library,
                                   simulator=simulator)
    start = time.perf_counter()
    async_report = async_flow.run(config, scheduler=StageScheduler())
    async_wall = time.perf_counter() - start

    # The invariant the refactor is built on: bit-identical results.
    assert async_report.wns_post == serial_report.wns_post
    assert async_report.leakage_post == serial_report.leakage_post
    assert async_report.mask_polygons == serial_report.mask_polygons
    assert async_report.trace.annotations["cache_consistent"] is True

    print()
    print(format_table(
        ["engine", "wall (s)", "stages", "WNS post (ps)"],
        [
            ("serial", f"{serial_wall:.2f}", len(serial_report.trace),
             f"{serial_report.wns_post:+.2f}"),
            ("async DAG", f"{async_wall:.2f}", len(async_report.trace),
             f"{async_report.wns_post:+.2f}"),
        ],
        title="A8: single selective-OPC run, serial engine vs async DAG",
    ))
    benchmark.extra_info["serial_wall_s"] = round(serial_wall, 2)
    benchmark.extra_info["async_wall_s"] = round(async_wall, 2)
    # Cached replay through the scheduler: the steady-state service cost.
    benchmark(async_flow.run, config, scheduler=StageScheduler())


def test_a8_serial_vs_concurrent_sweep(benchmark, tech, library, simulator):
    config = FlowConfig(clock_period_ps=500)

    serial_flow = PostOpcTimingFlow(c17(library), tech, cells=library,
                                    simulator=simulator)
    start = time.perf_counter()
    serial = FlowSweep(serial_flow).run(config)
    serial_wall = time.perf_counter() - start

    concurrent_flow = PostOpcTimingFlow(c17(library), tech, cells=library,
                                        simulator=simulator)
    sweep = FlowSweep(concurrent_flow)
    start = time.perf_counter()
    concurrent = sweep.run_concurrent(config)
    concurrent_wall = time.perf_counter() - start

    # A second identical sweep through the warm context: every stage key
    # is settled, so this is the pure replay cost a service user pays.
    start = time.perf_counter()
    replay = sweep.run_concurrent(config)
    replay_wall = time.perf_counter() - start

    # Bit-identical per mode, both passes.
    assert concurrent.failures == {} and serial.failures == {}
    for mode, ref in serial.reports.items():
        for got in (concurrent.reports[mode], replay.reports[mode]):
            assert got.wns_post == ref.wns_post
            assert got.leakage_post == ref.leakage_post
            assert got.mask_polygons == ref.mask_polygons

    # Exactly-once sharing across the racing modes: the shared prefix is
    # computed a single time, and the books must balance.
    ctx = concurrent_flow.context
    assert ctx.misses["place"] == 1
    assert ctx.misses["sta_drawn"] == 1
    assert ctx.misses["tag_critical"] == 1
    assert ctx.misses["opc.rule_base"] == 1
    assert ctx.consistency() == []

    union = FlowTrace()
    for report in concurrent.reports.values():
        for r in report.trace:
            union.add(r.name, r.wall_s, cache_hit=r.cache_hit,
                      t_start=r.t_start, t_end=r.t_end)
    assert union.concurrent_stages >= 2

    hit_counts = {
        label: sum(r.trace.cache_hits for r in result.reports.values())
        for label, result in
        (("serial", serial), ("concurrent", concurrent), ("replay", replay))
    }
    rows = [
        ("serial sweep", f"{serial_wall:.2f}", hit_counts["serial"], "-", "-"),
        ("concurrent sweep", f"{concurrent_wall:.2f}",
         hit_counts["concurrent"], ctx.deduped, union.concurrent_stages),
        ("replay (warm ctx)", f"{replay_wall:.2f}", hit_counts["replay"],
         "-", "-"),
    ]
    print()
    print(format_table(
        ["strategy", "wall (s)", "stages from cache", "deduped",
         "max in flight"],
        rows,
        title="A8: 4-mode OPC sweep, serial vs async-DAG dispatch (c17)",
    ))
    # Wall times are reported, not asserted: the stage bodies hold the
    # GIL, so thread-backed dispatch cannot beat serial on CPU-bound
    # work — the scheduler's value is dedup and overlap, both asserted.
    benchmark.extra_info["serial_wall_s"] = round(serial_wall, 2)
    benchmark.extra_info["concurrent_wall_s"] = round(concurrent_wall, 2)
    benchmark.extra_info["replay_wall_s"] = round(replay_wall, 2)
    benchmark.extra_info["deduped"] = ctx.deduped
    benchmark.extra_info["concurrent_stages"] = union.concurrent_stages
    benchmark(sweep.run_concurrent, config)
