"""Ablation A9: scaling the flow to multi-thousand-gate vehicles.

Three claims behind the scale work, measured on the structured-ASIC
fabric at 1k and 3k gates:

* **Sharded litho beats the tile path.**  The classic metrology planner
  walks every 512-pixel tile over the remaining gates (an
  O(tiles x gates) scan) and spends most of each FFT on the ambit halo;
  the shard planner bins gates in O(gates) and amortizes the halo over
  ~1024-pixel windows.  Cold-cache full flows are timed both ways.
* **Sharding is dispatch-invariant.**  The same shard plan measured
  serially and through the process-backed executor must be bit-identical.
* **Incremental re-timing is the right default.**  Re-timing a <=5%
  derate change through ``run_incremental`` must be >= 5x faster than a
  full ``StaEngine.run`` and bit-identical to it.

Run directly (not through pytest — the flows take minutes):

    PYTHONPATH=src python benchmarks/bench_a9_scale.py \
        --sizes 1000 3000 --out BENCH_scale.json

Wall times are indicative (shared container), so the JSON records them
but the hard assertions are the identity and speedup claims.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.cells import build_library
from repro.circuits import structured_asic
from repro.flow import FlowConfig, ParallelExecutor, PostOpcTimingFlow
from repro.litho import LithographySimulator
from repro.metrology import plan_metrology_shards
from repro.metrology.gate_cd import measure_tile_chunk
from repro.pdk import make_tech_90nm
from repro.timing import (
    InstanceDerate,
    TimingConstraints,
    diff_derates,
    run_incremental,
)

CANONICAL_PERIOD_PS = 1000.0


def _endpoint_key(sta):
    return sorted((e.net, e.transition, e.arrival, e.required)
                  for e in sta.endpoints)


def _timed_flow(netlist, tech, library, simulator, config):
    """One cold-cache flow run (fresh context) and its report."""
    flow = PostOpcTimingFlow(netlist, tech, cells=library, simulator=simulator)
    start = time.perf_counter()
    report = flow.run(config)
    wall = time.perf_counter() - start
    return flow, report, wall


def bench_size(n_gates, tech, library, simulator, shards):
    print(f"== {n_gates} gates ==", flush=True)
    netlist = structured_asic(n_gates)
    tile_config = FlowConfig(opc_mode="rule", litho_shards=0)
    shard_config = FlowConfig(opc_mode="rule", litho_shards=shards)

    _, tile_report, tile_wall = _timed_flow(
        netlist, tech, library, simulator, tile_config)
    print(f"  tile flow: {tile_wall:.1f}s wns_post={tile_report.wns_post:+.2f}",
          flush=True)

    shard_flow, shard_report, shard_wall = _timed_flow(
        netlist, tech, library, simulator, shard_config)
    print(f"  shard flow: {shard_wall:.1f}s "
          f"wns_post={shard_report.wns_post:+.2f}", flush=True)

    # Cached rerun: every stage key is settled in the shard flow's context.
    start = time.perf_counter()
    cached_report = shard_flow.run(shard_config)
    cached_wall = time.perf_counter() - start
    cached_hits = cached_report.trace.cache_hits
    assert _endpoint_key(cached_report.post_sta) == _endpoint_key(
        shard_report.post_sta), "cached rerun must replay bit-identically"

    shard_tasks = [r.counters.get("litho_shards", 0)
                   for r in shard_report.trace
                   if r.name == "metrology"]

    # Incremental re-time of a localized <=5% derate change (a selective-
    # OPC what-if on one mid-pipeline cluster) vs a full STA run.  A
    # *scattered* 5% change is the incremental path's worst case — its
    # register-bounded cone then covers most stages — so the claim is
    # about the localized changes the flow actually replays.
    engine = shard_flow.engine
    constraints = TimingConstraints(clock_period_ps=CANONICAL_PERIOD_PS)
    baseline = engine.run(constraints)
    stages = 1 + max(int(g.split("_")[0][1:])
                     for g in netlist.gates if g.startswith("s"))
    cluster = f"s{stages // 2}_c1_"
    names = [g for g in netlist.gates if g.startswith(cluster)]
    assert 0 < len(names) <= n_gates // 20
    derates = {name: InstanceDerate(delay_rise_scale=1.05,
                                    delay_fall_scale=1.05)
               for name in names}
    changed = diff_derates({}, derates)

    full_sta_wall = incremental_wall = float("inf")
    for _ in range(5):  # best-of-5: these are millisecond-scale timings
        start = time.perf_counter()
        full = engine.run(constraints, derates)
        full_sta_wall = min(full_sta_wall, time.perf_counter() - start)
        start = time.perf_counter()
        incremental = run_incremental(engine, baseline, changed, constraints,
                                      derates)
        incremental_wall = min(incremental_wall, time.perf_counter() - start)

    assert _endpoint_key(full) == _endpoint_key(incremental)
    assert full.arrivals == incremental.arrivals
    assert full.slews == incremental.slews
    speedup = full_sta_wall / max(incremental_wall, 1e-9)
    print(f"  retime: full {full_sta_wall * 1000:.1f}ms vs incremental "
          f"{incremental_wall * 1000:.1f}ms ({speedup:.1f}x)", flush=True)
    if n_gates >= 3000:
        # smaller fabrics have shallow pipelines (4 stages), so the cone
        # is a larger fraction and the fixed endpoint-collection cost
        # dominates; the >=5x claim is about the >=3k scale vehicles
        assert speedup >= 5.0, (
            f"incremental re-time must be >=5x a full run, got {speedup:.1f}x")

    return {
        "gates": n_gates,
        "litho_shards_requested": shards,
        "shard_tasks": shard_tasks[0] if shard_tasks else 0,
        "cold_tile_flow_wall_s": round(tile_wall, 2),
        "cold_shard_flow_wall_s": round(shard_wall, 2),
        "shard_vs_tile_speedup": round(tile_wall / shard_wall, 2),
        "cached_rerun_wall_s": round(cached_wall, 3),
        "cached_rerun_stage_hits": cached_hits,
        "cached_rerun_stage_total": len(cached_report.trace),
        "wns_post_tile_ps": round(tile_report.wns_post, 3),
        "wns_post_shard_ps": round(shard_report.wns_post, 3),
        "changed_instances": len(changed),
        "full_sta_wall_ms": round(full_sta_wall * 1000, 2),
        "incremental_retime_wall_ms": round(incremental_wall * 1000, 2),
        "incremental_speedup": round(speedup, 1),
        "incremental_bit_identical": True,
    }


def bench_dispatch_identity(tech, library, simulator, n_gates=300, shards=4):
    """Same shard plan, serial vs process-pool dispatch: bit-identical."""
    from repro.pdk import Layers
    from repro.place import assemble_layout, instance_gate_rects, place_rows
    from repro.place.assembler import TOP_CELL

    netlist = structured_asic(n_gates)
    placement = place_rows(netlist, library)
    layout = assemble_layout(netlist, library, placement)
    polys = layout.flat_polygons(TOP_CELL, Layers.POLY)
    rects = instance_gate_rects(netlist, library, placement)
    tasks = plan_metrology_shards(simulator, polys, rects, shards=shards)

    start = time.perf_counter()
    serial = measure_tile_chunk((simulator, tasks))
    serial_wall = time.perf_counter() - start

    executor = ParallelExecutor.from_jobs(2)
    start = time.perf_counter()
    parallel = executor.map_chunks(measure_tile_chunk, simulator, tasks)
    parallel_wall = time.perf_counter() - start

    flat_serial = {k: m for chunk in serial for k, m in chunk.items()}
    flat_parallel = {k: m for chunk in parallel for k, m in chunk.items()}
    assert set(flat_serial) == set(flat_parallel)
    identical = all(
        flat_serial[k].slice_cds == flat_parallel[k].slice_cds
        and flat_serial[k].slice_positions == flat_parallel[k].slice_positions
        for k in flat_serial
    )
    assert identical, "process dispatch must be bit-identical to serial"
    print(f"  dispatch identity at {n_gates} gates: serial {serial_wall:.1f}s "
          f"process {parallel_wall:.1f}s identical={identical}", flush=True)
    return {
        "gates": n_gates,
        "shard_tasks": len(tasks),
        "serial_wall_s": round(serial_wall, 2),
        "process_pool_wall_s": round(parallel_wall, 2),
        "bit_identical": identical,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[1000, 3000])
    parser.add_argument("--shards", type=int, default=4,
                        help="minimum shard count per flow (the grid grows "
                             "with the die anyway)")
    parser.add_argument("--out", default="BENCH_scale.json")
    args = parser.parse_args(argv)

    tech = make_tech_90nm()
    library = build_library(tech)
    simulator = LithographySimulator.for_tech(tech)
    simulator.calibrate_to_anchor(tech.rules.gate_length,
                                  tech.rules.poly_pitch)

    payload = {
        "benchmark": "bench_a9_scale",
        "design": "structured_asic fabric",
        "machine_note": "shared container, wall times indicative; "
                        "asserted claims are bit-identity and the >=5x "
                        "incremental re-time speedup",
        "schema": {
            "by_size": "one entry per --sizes value; cold walls are "
                       "fresh-context full flows (rule OPC), cached rerun "
                       "replays the shard flow's own context",
            "dispatch_identity": "same shard plan, serial vs 2-process "
                                 "map_chunks",
        },
        "by_size": [bench_size(n, tech, library, simulator, args.shards)
                    for n in args.sizes],
        "dispatch_identity": bench_dispatch_identity(tech, library, simulator),
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
