"""E10 (Table 4): equivalent-length extraction accuracy.

The multi-slice extraction versus the mid-gate single cut that a plain
CD-SEM measurement would give: error in the predicted drive and leakage
currents for characteristic printed-gate shapes (bowed, necked, flared,
tilted).  The single-cut model misestimates exactly when the gate is
non-rectangular — the case the flow exists for.
"""

import pytest

from repro.analysis import format_table
from repro.device import equivalent_length_drive, equivalent_length_leakage
from repro.geometry import Rect
from repro.metrology.gate_cd import GateCdMeasurement

PROFILES = {
    "uniform":  [88, 88, 88, 88, 88],
    "bowed":    [94, 89, 86, 89, 94],   # endcap flare, thin middle
    "necked":   [90, 90, 74, 90, 90],   # local pinch
    "flared":   [90, 92, 96, 104, 116], # near the gate contact pad
    "tilted":   [82, 86, 90, 94, 98],   # focus/astigmatism gradient
}
WIDTH_PER_SLICE = 80.0


def reference_currents(cds, model):
    """Ground truth: sum the slice devices directly."""
    drive = sum(model.drive_current(WIDTH_PER_SLICE, cd) for cd in cds)
    leak = sum(model.leakage_current(WIDTH_PER_SLICE, cd) for cd in cds)
    return drive, leak


def test_e10_el_accuracy(benchmark, device_model):
    total_width = 5 * WIDTH_PER_SLICE
    rows = []
    worst_single_cut_leak_error = 0.0
    for name, cds in PROFILES.items():
        widths = [WIDTH_PER_SLICE] * len(cds)
        ref_drive, ref_leak = reference_currents(cds, device_model)

        el_drive = equivalent_length_drive(cds, widths, device_model)
        el_leak = equivalent_length_leakage(cds, widths, device_model)
        nrg_drive = device_model.drive_current(total_width, el_drive)
        nrg_leak = device_model.leakage_current(total_width, el_leak)

        mid = cds[len(cds) // 2]
        single_drive = device_model.drive_current(total_width, mid)
        single_leak = device_model.leakage_current(total_width, mid)

        err = lambda got, ref: 100.0 * (got - ref) / ref
        leak_err_single = err(single_leak, ref_leak)
        worst_single_cut_leak_error = max(worst_single_cut_leak_error,
                                          abs(leak_err_single))
        rows.append((
            name,
            f"{el_drive:.1f}/{el_leak:.1f}",
            f"{err(nrg_drive, ref_drive):+.2f}%",
            f"{err(single_drive, ref_drive):+.2f}%",
            f"{err(nrg_leak, ref_leak):+.2f}%",
            f"{leak_err_single:+.2f}%",
        ))

        # NRG equivalents must reproduce the slice ground truth exactly
        # (that is their defining equation).
        assert nrg_drive == pytest.approx(ref_drive, rel=1e-3)
        assert nrg_leak == pytest.approx(ref_leak, rel=1e-3)

    print()
    print(format_table(
        ["profile", "EL drive/leak (nm)", "NRG drive err", "1-cut drive err",
         "NRG leak err", "1-cut leak err"],
        rows,
        title="E10: slice-based NRG model vs mid-gate single-cut model",
    ))

    # The single cut is exact for the uniform gate but misses badly on the
    # necked/flared shapes (leakage above all).
    assert worst_single_cut_leak_error > 15.0

    cds = PROFILES["flared"]
    benchmark(equivalent_length_leakage, cds, [WIDTH_PER_SLICE] * 5, device_model)
