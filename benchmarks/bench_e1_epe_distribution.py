"""E1 (Fig. 1): residual OPC error distribution.

Reconstructs the paper's "extracting residual OPC errors" figure: the EPE
distribution over a standard-cell poly context for no OPC, rule-based OPC
and model-based OPC.  Model OPC shrinks but does not eliminate the error —
the residual is what the flow back-annotates.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.geometry import Rect
from repro.opc import apply_model_opc, apply_rule_opc, run_orc
from repro.pdk import Layers


@pytest.fixture(scope="module")
def cell_row_polys(library):
    """A row of three cells: the litho context of a placed design."""
    polys = []
    x = 0.0
    for name in ("NAND2_X1", "INV_X1", "NAND3_X1"):
        cell = library[name]
        for poly in cell.layout.polygons_on(Layers.POLY):
            polys.append(poly.translated(x, 0.0))
        x += cell.width
    return polys


@pytest.fixture(scope="module")
def masks(simulator, cell_row_polys):
    rule = apply_rule_opc(cell_row_polys)
    model = apply_model_opc(simulator, cell_row_polys).polygons
    return {"none": cell_row_polys, "rule": rule, "model": model}


def test_e1_epe_distribution(benchmark, simulator, cell_row_polys, masks):
    reports = {
        mode: run_orc(simulator, mask, cell_row_polys)
        for mode, mask in masks.items()
    }

    rows = []
    for mode in ("none", "rule", "model"):
        r = reports[mode]
        epes = np.asarray(r.epes)
        rows.append((
            mode, len(epes), f"{epes.mean():+.2f}", f"{r.rms_epe:.2f}",
            f"{r.max_epe:.2f}", len(r.violations),
        ))
    print()
    print(format_table(
        ["opc", "sites", "mean EPE (nm)", "rms EPE (nm)", "max |EPE| (nm)",
         "ORC violations"],
        rows,
        title="E1: residual edge-placement error by OPC recipe",
    ))

    # Shape assertions: every correction level strictly improves RMS EPE.
    assert reports["rule"].rms_epe < reports["none"].rms_epe
    assert reports["model"].rms_epe < reports["rule"].rms_epe
    assert reports["model"].rms_epe > 0.2  # but residual never vanishes

    benchmark.extra_info["rms_epe_model"] = reports["model"].rms_epe
    benchmark(run_orc, simulator, masks["rule"], cell_row_polys)
