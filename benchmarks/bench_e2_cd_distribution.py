"""E2 (Fig. 2): printed-vs-drawn gate-CD distribution across a placed design.

The "deriving actual (calibrated to silicon) CD values" result: per-
transistor printed CDs over the whole adder with an across-chip
dose/defocus map, split into systematic (context) and random components.
"""

import pytest

from repro.analysis import format_histogram, format_table
from repro.metrology import measure_gate_cds
from repro.metrology.statistics import histogram_of_errors, systematic_random_split


def test_e2_cd_distribution(benchmark, adder_flow, adder_reports):
    report = adder_reports["rule"]
    stats = report.cd_stats

    print()
    print(format_table(
        ["metric", "value"],
        [
            ("measured transistors", stats.count),
            ("mean error (nm)", f"{stats.mean:+.2f}"),
            ("sigma (nm)", f"{stats.sigma:.2f}"),
            ("min / max (nm)", f"{stats.minimum:+.2f} / {stats.maximum:+.2f}"),
        ],
        title="E2: printed-minus-drawn gate CD (rule OPC + ACLV map)",
    ))
    print()
    print(format_histogram(histogram_of_errors(report.measurements, bin_width=1.0)))

    # Context signature: same cell, same transistor -> same systematic error.
    groups = {}
    for (gate, transistor), m in report.measurements.items():
        if not m.printed:
            continue
        cell_name = adder_flow.netlist.gates[gate].cell_name
        groups.setdefault((cell_name, transistor), []).append(m.error)
    sigma_sys, sigma_rand = systematic_random_split(groups)
    print()
    print(f"variance split: systematic (cell context) sigma = {sigma_sys:.2f} nm, "
          f"residual (ACLV + stitching) sigma = {sigma_rand:.2f} nm")

    assert stats.count == len(adder_flow.gate_rects)
    assert abs(stats.mean) < 5.0           # rule OPC keeps the population centered
    assert 0.2 < stats.sigma < 5.0         # but leaves real spread
    assert sigma_sys > 0

    # Kernel: CD metrology of one tile's worth of gates.
    from repro.geometry import Rect

    tile_rects = dict(list(adder_flow.gate_rects.items())[:16])
    region = Rect.bounding(tile_rects.values()).expanded(200)
    mask = [poly for _, poly in adder_flow.owned_polygons]
    latent = adder_flow.simulator.latent_image(mask, region)
    benchmark(
        measure_gate_cds, latent, adder_flow.simulator.resist.threshold, tile_rects
    )
