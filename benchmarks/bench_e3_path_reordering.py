"""E3 (Table 1): speed-path criticality reordering.

The paper's first headline: after back-annotating post-OPC CDs, the speed
paths do not just shift — they *reorder*.  The vehicle is a random-logic
block whose top paths are nearly tied; the systematic, context-dependent
CD residuals (different cells print differently) change the ranking, and
the #1 speed path itself changes.
"""

import pytest

from repro.analysis import format_table


def test_e3_path_reordering(benchmark, rand_flow, rand_reports):
    for mode in ("none", "rule"):
        report = rand_reports[mode]
        rows = []
        for net, before, after, move in report.rank.rows():
            rows.append((
                net,
                before + 1,
                after + 1,
                f"{_slack(report.drawn_sta, net):+.1f}",
                f"{_slack(report.post_sta, net):+.1f}",
                "<-- moved" if move else "",
            ))
        print()
        print(format_table(
            ["endpoint", "drawn rank", "post rank", "drawn slack (ps)",
             "post slack (ps)", ""],
            rows,
            title=f"E3: speed-path ranking, drawn vs post-OPC CDs (opc={mode})",
        ))
        print(f"Kendall tau = {report.rank.tau:.3f}, "
              f"Spearman rho = {report.rank.rho:.3f}, "
              f"moved = {report.rank.moved}/{len(report.rank.endpoints)}, "
              f"new #1 path: {report.rank.new_top}")

    none = rand_reports["none"]
    rule = rand_reports["rule"]
    # Shape: significant reordering, including a new most-critical path,
    # and it survives even with OPC applied (residual errors reorder too).
    assert none.rank.moved >= 4
    assert none.rank.tau < 0.95
    assert none.rank.new_top or rule.rank.new_top
    assert rule.rank.moved >= 2

    # Kernel: one full STA run of the reordering design.
    result = benchmark(rand_flow.engine.run)
    assert result.critical_delay > 0


def _slack(sta, net):
    try:
        return sta.slack_of(net)
    except KeyError:
        return float("nan")
