"""E4 (Table 2): worst-case slack, drawn vs post-OPC.

The paper reports a 36.4% change in worst-case slack once silicon CDs are
used.  The magnitude is margin-relative (their design, their period); the
*shape* reproduced here: post-OPC slack moves by tens of percent of the
signoff margin, and the direction flips with the sign of the residual CD
bias (thin gates -> faster/leakier, fat gates -> slower).
"""

import pytest

from repro.analysis import format_table


def test_e4_worst_slack(benchmark, adder_flow, adder_reports, signoff_period):
    rows = []
    for mode in ("none", "rule"):
        report = adder_reports[mode]
        rows.append((
            mode,
            f"{report.cd_stats.mean:+.2f}",
            f"{report.wns_drawn:+.2f}",
            f"{report.wns_post:+.2f}",
            f"{report.wns_post - report.wns_drawn:+.2f}",
            f"{report.wns_change_percent:+.1f}%",
        ))
    print()
    print(format_table(
        ["opc", "CD bias (nm)", "drawn WNS (ps)", "post WNS (ps)",
         "delta (ps)", "change"],
        rows,
        title=f"E4: worst-case slack at the signoff period "
              f"({signoff_period:.1f} ps)",
    ))
    print()
    print("paper: 36.4% increase in worst-case slack on their testchip;")
    print("the reproduction's change is likewise tens of percent of margin.")

    none, rule = adder_reports["none"], adder_reports["rule"]
    # The drawn-CD margin is small by construction; the post-OPC shift is a
    # large fraction of it in at least the uncorrected scenario.
    assert abs(none.wns_change_percent) > 15.0
    assert abs(none.wns_post - none.wns_drawn) > abs(rule.wns_post - rule.wns_drawn)

    benchmark.extra_info["wns_change_percent_none"] = none.wns_change_percent
    benchmark.extra_info["wns_change_percent_rule"] = rule.wns_change_percent
    benchmark(adder_flow.tag_critical_gates, none.drawn_sta, 8)
