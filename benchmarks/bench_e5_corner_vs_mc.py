"""E5 (Fig. 3): corner-case vs Monte-Carlo statistical timing.

The paper's motivation: "process variation modeling based on worst-case
scenarios (corner cases) yields overly pessimistic simulation results."
The corners put every gate at +-3 sigma simultaneously; the Monte-Carlo
distribution over realistic (partially correlated) CD fields never gets
close to the corner bound.
"""

import pytest

from repro.analysis import format_table
from repro.timing import run_corners, run_monte_carlo
from repro.timing.mc import CdVariationSpec


def test_e5_corner_vs_mc(benchmark, adder_flow, device_model, signoff_period):
    from repro.timing import TimingConstraints

    constraints = TimingConstraints(clock_period_ps=signoff_period)
    corners = run_corners(adder_flow.engine, device_model, constraints)
    spec = CdVariationSpec(sigma_random_nm=1.5, sigma_correlated_nm=1.0, seed=11)
    mc = run_monte_carlo(adder_flow.engine, device_model, samples=60,
                         spec=spec, constraints=constraints)

    print()
    print(format_table(
        ["quantity", "WNS (ps)"],
        [
            ("slow corner (all gates +6 nm)", f"{corners['slow']:+.2f}"),
            ("MC worst of 60", f"{mc.min_wns:+.2f}"),
            ("MC 1st percentile", f"{mc.percentile_wns(1):+.2f}"),
            ("MC mean", f"{mc.mean_wns:+.2f}"),
            ("typical corner", f"{corners['typical']:+.2f}"),
            ("fast corner (all gates -6 nm)", f"{corners['fast']:+.2f}"),
        ],
        title="E5: corner-based guardband vs Monte-Carlo statistical timing",
    ))
    pessimism = mc.min_wns - corners["slow"]
    guardband = corners["typical"] - corners["slow"]
    print()
    print(f"corner guardband {guardband:.1f} ps; MC never comes within "
          f"{pessimism:.1f} ps of the slow corner "
          f"({100 * pessimism / guardband:.0f}% of the guardband is pessimism)")

    assert corners["slow"] < mc.min_wns <= mc.mean_wns < corners["fast"]
    assert pessimism > 0.25 * guardband  # the paper's pessimism claim

    benchmark(run_monte_carlo, adder_flow.engine, device_model, 10, spec, constraints)
