"""E6 (Table 3): selective OPC on tagged critical gates.

The paper's proposal: "by passing design intent to process/OPC engineers,
selective OPC can be applied to improve CD variation control based on
gates' functions such as critical gates."  Selective mode holds the
critical gates at model-OPC accuracy for a fraction of the correction
cost.
"""

import pytest

from repro.analysis import format_table
from repro.flow import FlowConfig


def test_e6_selective_opc(benchmark, c17_flow, c17_reports):
    rows = []
    critical_err = {}
    for mode in ("none", "rule", "selective", "model"):
        report = c17_reports[mode]
        critical = [
            abs(m.error) for (gate, _), m in report.measurements.items()
            if gate in report.critical_gates and m.printed
        ]
        critical_err[mode] = max(critical) if critical else float("nan")
        rows.append((
            mode,
            report.model_corrected_polygons,
            f"{report.runtimes['opc']:.1f}",
            f"{report.cd_stats.mean:+.2f}",
            f"{report.cd_stats.sigma:.2f}",
            f"{critical_err[mode]:.2f}",
            f"{report.wns_post:+.1f}",
        ))
    print()
    print(format_table(
        ["opc mode", "model polys", "opc time (s)", "CD mean (nm)",
         "CD sigma (nm)", "worst critical |err| (nm)", "post WNS (ps)"],
        rows,
        title="E6: selective OPC — timing quality vs correction cost (c17)",
    ))

    selective = c17_reports["selective"]
    model = c17_reports["model"]
    # Selective corrects strictly fewer polygons...
    assert 0 < selective.model_corrected_polygons < model.model_corrected_polygons
    # ...is cheaper than full model OPC...
    assert selective.runtimes["opc"] < model.runtimes["opc"]
    # ...and still beats plain rule OPC on the critical gates.
    assert critical_err["selective"] <= critical_err["rule"] + 0.5

    sta = c17_flow.engine.run()
    critical_gates = c17_flow.tag_critical_gates(sta, 1)
    benchmark(
        c17_flow.apply_opc,
        FlowConfig(opc_mode="selective", clock_period_ps=500.0, n_critical_paths=1),
        critical_gates,
    )
