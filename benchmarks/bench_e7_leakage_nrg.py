"""E7 (Fig. 4): leakage from non-rectangular gates.

Substrate result from the cited companion work (Poppe et al., "From poly
line to transistor"): a printed gate needs *different* equivalent lengths
for delay and for leakage.  Using the mid-gate CD alone underestimates
leakage because the narrowest slices dominate the exponential.
"""

import numpy as np
import pytest

from repro.analysis import format_table
from repro.device import extract_equivalent_lengths


def test_e7_leakage_nrg(benchmark, c17_flow, c17_reports, device_model):
    report = c17_reports["none"]  # biggest CD distortion: clearest effect
    measurements = {k: m for k, m in report.measurements.items() if m.printed}

    per_gate = []
    leak_nrg_total = leak_mid_total = leak_drawn_total = 0.0
    for (gate, tname), m in measurements.items():
        transistor = c17_flow.cells[
            c17_flow.netlist.gates[gate].cell_name
        ].transistor(tname)
        nrg = extract_equivalent_lengths(m, device_model, width=transistor.width)
        leak_nrg = device_model.leakage_current(transistor.width, nrg.length_leakage)
        leak_mid = device_model.leakage_current(transistor.width, m.mid_cd)
        leak_drawn = device_model.leakage_current(transistor.width, m.drawn_cd)
        leak_nrg_total += leak_nrg
        leak_mid_total += leak_mid
        leak_drawn_total += leak_drawn
        per_gate.append((nrg.length_drive, nrg.length_leakage, m.cd_range))

    drive_els = np.array([x[0] for x in per_gate])
    leak_els = np.array([x[1] for x in per_gate])
    print()
    print(format_table(
        ["model", "total leakage (nA)", "vs drawn"],
        [
            ("drawn rectangles", f"{leak_drawn_total * 1e9:.2f}", "1.00x"),
            ("mid-gate single CD", f"{leak_mid_total * 1e9:.2f}",
             f"{leak_mid_total / leak_drawn_total:.2f}x"),
            ("slice-based NRG (leakage EL)", f"{leak_nrg_total * 1e9:.2f}",
             f"{leak_nrg_total / leak_drawn_total:.2f}x"),
        ],
        title="E7: leakage of the un-OPC'd c17 under three gate models",
    ))
    print()
    print(f"mean drive EL {drive_els.mean():.2f} nm, "
          f"mean leakage EL {leak_els.mean():.2f} nm "
          f"(leakage EL is shorter: narrow slices dominate)")
    print(f"mean within-gate CD range {np.mean([x[2] for x in per_gate]):.2f} nm")

    # Shape: leakage EL <= drive EL for every gate; NRG total >= mid-CD total.
    assert (leak_els <= drive_els + 1e-6).all()
    assert leak_nrg_total >= 0.98 * leak_mid_total
    assert leak_nrg_total > 1.2 * leak_drawn_total  # thin gates leak hard

    sample = next(iter(measurements.values()))
    benchmark(extract_equivalent_lengths, sample, device_model)
