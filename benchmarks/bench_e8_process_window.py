"""E8 (Fig. 5): delay sensitivity across the dose/defocus process window.

CD-to-timing propagation across exposure conditions: the printed CD of the
anchor gate pattern over a dose x defocus grid, mapped to a gate-delay
derate through the device model (a Bossung plot in timing units).
"""

import pytest

from repro.analysis import format_table
from repro.geometry import Polygon, Rect
from repro.litho.resist import ProcessCondition
from repro.litho.simulator import measure_cd_on_cutline

DOSES = (0.96, 1.0, 1.04)
DEFOCUS = (0.0, 100.0, 200.0, 300.0)


@pytest.fixture(scope="module")
def anchor_lines(tech):
    pitch = tech.rules.poly_pitch
    width = tech.rules.gate_length
    return [
        Polygon.from_rect(Rect(i * pitch - width / 2, -1500, i * pitch + width / 2, 1500))
        for i in range(-3, 4)
    ]


def test_e8_process_window(benchmark, simulator, device_model, anchor_lines, tech):
    region = Rect(-160, -100, 160, 100)
    threshold = simulator.resist.threshold
    nominal_delay = 1.0 / device_model.drive_current(1000.0, tech.rules.gate_length)

    grid = {}
    rows = []
    for defocus in DEFOCUS:
        row = [f"{defocus:.0f}"]
        for dose in DOSES:
            latent = simulator.latent_image(
                anchor_lines, region, ProcessCondition(dose=dose, defocus_nm=defocus)
            )
            cd = measure_cd_on_cutline(latent, threshold, -160, 160, 0.0)
            grid[(dose, defocus)] = cd
            if cd > 0:
                derate = (1.0 / device_model.drive_current(1000.0, cd)) / nominal_delay
                row.append(f"{cd:.1f} ({derate:.2f}x)")
            else:
                row.append("open")
        rows.append(tuple(row))

    print()
    print(format_table(
        ["defocus (nm)"] + [f"dose {d:.2f}" for d in DOSES],
        rows,
        title="E8: printed gate CD (and delay derate) over the process window",
    ))

    # Shape assertions: dose is monotone (more dose -> thinner dark line),
    # and defocus at nominal dose thins the line (contrast loss).
    assert grid[(0.96, 0.0)] > grid[(1.0, 0.0)] > grid[(1.04, 0.0)]
    assert grid[(1.0, 300.0)] < grid[(1.0, 0.0)]
    # Delay spans a meaningful range across the window.
    cds = [cd for cd in grid.values() if cd > 0]
    assert max(cds) - min(cds) > 10.0

    benchmark(
        simulator.latent_image, anchor_lines, region,
        ProcessCondition(dose=1.04, defocus_nm=200.0),
    )
