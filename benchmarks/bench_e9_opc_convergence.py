"""E9 (Fig. 6): model-based OPC convergence.

EPE versus iteration for the simulate-then-move loop — the cost curve that
motivates *selective* OPC: most of the benefit lands in the first three
iterations, and a hard floor remains at line-end corners.
"""

import pytest

from repro.analysis import format_table
from repro.geometry import Polygon, Rect
from repro.opc import ModelOpcRecipe, apply_model_opc


@pytest.fixture(scope="module")
def gate_context(tech):
    pitch = tech.rules.poly_pitch
    return [
        Polygon.from_rect(Rect(i * pitch - 45, -1365, i * pitch + 45, 1365))
        for i in range(-2, 3)
    ]


def test_e9_opc_convergence(benchmark, simulator, gate_context):
    recipe = ModelOpcRecipe(iterations=8, target_epe=0.25)
    result = apply_model_opc(simulator, gate_context, recipe=recipe)

    rows = [
        (i, f"{rms:.2f}", f"{worst:.2f}")
        for i, (rms, worst) in enumerate(result.epe_history)
    ]
    print()
    print(format_table(
        ["iteration", "rms EPE (nm)", "max |EPE| (nm)"],
        rows,
        title="E9: model-based OPC convergence (5-line gate context)",
    ))
    rms = [r for r, _ in result.epe_history]
    print()
    print(f"first iteration removes {100 * (rms[0] - rms[1]) / rms[0]:.0f}% of rms EPE;"
          f" floor at ~{rms[-1]:.1f} nm (line-end corners)")

    assert rms[1] < 0.7 * rms[0]          # fast initial convergence
    assert rms[-1] < 0.35 * rms[0]        # converges well below start
    assert rms[-1] > 0.2                  # but a physical floor remains

    one_shot = ModelOpcRecipe(iterations=1)
    benchmark(apply_model_opc, simulator, gate_context, (), one_shot)
