"""Shared fixtures for the experiment benchmarks.

Heavy artifacts (technology, characterized library, calibrated litho
simulator, flow runs) are session-scoped and built lazily, so each
benchmark file pays only for what it uses.
"""

import pytest

from repro.cells import build_library
from repro.circuits import c17, carry_select_adder, random_logic
from repro.device import AlphaPowerModel
from repro.flow import FlowConfig, PostOpcTimingFlow
from repro.litho import LithographySimulator
from repro.pdk import make_tech_90nm
from repro.variation import DoseDefocusMap


@pytest.fixture(scope="session")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="session")
def library(tech):
    return build_library(tech)


@pytest.fixture(scope="session")
def device_model(tech):
    return AlphaPowerModel(tech.device)


@pytest.fixture(scope="session")
def simulator(tech):
    sim = LithographySimulator.for_tech(tech)
    sim.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    return sim


@pytest.fixture(scope="session")
def c17_flow(tech, library, simulator):
    return PostOpcTimingFlow(c17(library), tech, cells=library, simulator=simulator)


@pytest.fixture(scope="session")
def adder_flow(tech, library, simulator):
    """The headline design: a carry-select adder with near-tied speed paths."""
    netlist = carry_select_adder(6, block=2)
    return PostOpcTimingFlow(netlist, tech, cells=library, simulator=simulator)


@pytest.fixture(scope="session")
def adder_process_map(adder_flow):
    return DoseDefocusMap(adder_flow.placement.die, seed=5)


@pytest.fixture(scope="session")
def signoff_period(adder_flow):
    """Clock period a drawn-CD signoff would pick: 2% margin on the drawn
    critical delay."""
    return 1.02 * adder_flow.engine.run().critical_delay


@pytest.fixture(scope="session")
def adder_reports(adder_flow, adder_process_map, signoff_period):
    """Flow runs of the adder under no/rule OPC with the ACLV map."""
    reports = {}
    for mode in ("none", "rule"):
        reports[mode] = adder_flow.run(FlowConfig(
            opc_mode=mode,
            clock_period_ps=signoff_period,
            n_critical_paths=8,
            process_map=adder_process_map,
        ))
    return reports


@pytest.fixture(scope="session")
def rand_flow(tech, library, simulator):
    """Random logic with many near-tied speed paths: the reordering vehicle."""
    netlist = random_logic(80, n_inputs=10, seed=3)
    return PostOpcTimingFlow(netlist, tech, cells=library, simulator=simulator)


@pytest.fixture(scope="session")
def rand_reports(rand_flow):
    period = 1.02 * rand_flow.engine.run().critical_delay
    process_map = DoseDefocusMap(rand_flow.placement.die, seed=5)
    reports = {}
    for mode in ("none", "rule"):
        reports[mode] = rand_flow.run(FlowConfig(
            opc_mode=mode,
            clock_period_ps=period,
            n_critical_paths=10,
            process_map=process_map,
        ))
    return reports


@pytest.fixture(scope="session")
def c17_reports(c17_flow):
    reports = {}
    for mode in ("none", "rule", "selective", "model"):
        reports[mode] = c17_flow.run(FlowConfig(
            opc_mode=mode, clock_period_ps=500.0, n_critical_paths=1,
        ))
    return reports
