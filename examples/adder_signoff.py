"""Litho-aware timing signoff of a ripple-carry adder.

The motivating scenario of the paper: a design signs off clean at drawn
CDs, but the printed gates tell a different story.  This example runs the
drawn STA, then the post-OPC back-annotated STA, and prints the speed-path
table both ways plus the leakage delta — the drawn-vs-silicon gap that
motivates embedding post-OPC verification in the design flow.

    python examples/adder_signoff.py [bits]
"""

import sys

from repro.analysis import format_histogram, format_table
from repro.cells import build_library
from repro.circuits import ripple_carry_adder
from repro.flow import FlowConfig, PostOpcTimingFlow
from repro.metrology.statistics import histogram_of_errors
from repro.pdk import make_tech_90nm


def main(bits: int = 2):
    tech = make_tech_90nm()
    library = build_library(tech)
    netlist = ripple_carry_adder(bits)
    flow = PostOpcTimingFlow(netlist, tech, cells=library)

    # A period just above the drawn critical delay: "signs off" at drawn CDs.
    drawn = flow.engine.run()
    period = 1.05 * drawn.critical_delay
    print(f"{netlist.name}: drawn critical delay {drawn.critical_delay:.1f} ps, "
          f"clock period set to {period:.1f} ps")

    report = flow.run(FlowConfig(opc_mode="rule", clock_period_ps=period,
                                 n_critical_paths=6))

    print()
    print(report.summary())

    print()
    print(format_table(
        ["endpoint", "drawn slack", "post slack", "rank move"],
        [
            (net, f"{_slack(report.drawn_sta, net):+.1f}",
             f"{_slack(report.post_sta, net):+.1f}", move)
            for net, before, after, move in report.rank.rows()
        ],
        title="speed-path ranking, drawn vs post-OPC (ps)",
    ))

    print()
    print("printed-minus-drawn gate CD distribution:")
    print(format_histogram(histogram_of_errors(report.measurements, bin_width=1.0)))


def _slack(sta, net):
    try:
        return sta.slack_of(net)
    except KeyError:
        return float("nan")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
