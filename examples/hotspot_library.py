"""Building a hotspot pattern library from ORC results.

The DFM follow-on to the paper's flow: once post-OPC verification finds
failure sites, cluster them into a pattern library and use it to flag the
same configurations in *new* layouts without re-running lithography
(the "DRC Plus" use model of the same research group).

    python examples/hotspot_library.py
"""

from repro.analysis import format_table
from repro.dfm import HotspotLibrary
from repro.geometry import Point, Polygon, Rect
from repro.litho import LithographySimulator
from repro.opc import run_orc
from repro.opc.orc import OrcLimits
from repro.pdk import make_tech_90nm


def tight_line_end_pair(x, gap):
    """Two facing line ends — the classic bridging/pullback hotspot."""
    return [
        Polygon.from_rect(Rect(x - 45, -800, x + 45, -gap / 2)),
        Polygon.from_rect(Rect(x - 45, gap / 2, x + 45, 800)),
    ]


def main():
    tech = make_tech_90nm()
    sim = LithographySimulator.for_tech(tech)
    sim.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)

    # A "test chip" with repeated risky configurations (no OPC, on purpose).
    layout = []
    for k in range(4):
        layout += tight_line_end_pair(k * 2500, 150)       # config A x4
    for k in range(2):
        layout += tight_line_end_pair(15000 + k * 2500, 320)  # config B x2

    # Classify only catastrophic sites (opens/bridges/pinches); plain EPE
    # violations are handled by OPC, not by pattern screening.
    report = run_orc(sim, layout, layout, limits=OrcLimits(max_epe=1e9))
    print(f"ORC found {len(report.violations)} violations "
          f"({len(report.violations_of('open'))} opens, "
          f"{len(report.violations_of('bridge'))} bridges, "
          f"{len(report.violations_of('pinch'))} pinches)")

    library = HotspotLibrary.from_orc(layout, report.violations)
    print()
    print(format_table(
        ["class", "occurrences", "violation kinds"],
        [(i, cls.count, ", ".join(f"{k} x{n}" for k, n in sorted(cls.kinds.items())))
         for i, cls in enumerate(library.classes)],
        title=f"hotspot pattern library ({len(library)} classes)",
    ))

    # A new design reuses configuration A: flag it by pattern match alone,
    # scanning candidate sites on a coarse grid (production pattern matchers
    # scan every placement; the library itself is translation-invariant).
    new_layout = tight_line_end_pair(99000, 150)
    sites = [Point(99000 + dx, dy)
             for dx in range(-90, 91, 45) for dy in range(-225, 226, 45)]
    hits = library.match(new_layout, sites)
    print()
    if hits:
        classes = sorted({cls for _, cls in hits})
        print(f"new layout: {len(hits)} of {len(sites)} scanned sites match "
              f"hotspot classes {classes} - flagged WITHOUT a lithography run")
    else:
        print("new layout: no known hotspot found")


if __name__ == "__main__":
    main()
