"""Exploring the lithography substrate directly.

Everything underneath the timing flow is a usable litho toolkit: this
example images a gate-layer grating through pitch, through dose and
through focus, runs model-based OPC on an isolated line, and prints the
classic process curves (iso-dense bias, CD-through-dose, Bossung-style
CD-through-focus).

    python examples/litho_explorer.py
"""

from repro.analysis import format_table
from repro.geometry import Polygon, Rect
from repro.litho import LithographySimulator
from repro.litho.resist import ProcessCondition
from repro.litho.simulator import cd_through_pitch, measure_cd_on_cutline
from repro.opc import apply_model_opc, run_orc
from repro.pdk import make_tech_90nm


def main():
    tech = make_tech_90nm()
    sim = LithographySimulator.for_tech(tech)
    threshold = sim.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    print(f"resist threshold calibrated to {threshold:.3f} "
          f"(anchor: {tech.rules.gate_length:.0f} nm line at "
          f"{tech.rules.poly_pitch:.0f} nm pitch)")

    pitches = [320, 400, 480, 640, 960, 1600]
    print()
    print(format_table(
        ["pitch (nm)", "printed CD (nm)", "bias vs drawn (nm)"],
        [(p, f"{cd:.1f}", f"{cd - 90:+.1f}")
         for p, cd in cd_through_pitch(sim, 90.0, pitches)],
        title="iso-dense bias through pitch (90 nm line, no OPC)",
    ))

    lines = [Polygon.from_rect(Rect(i * 320 - 45, -1500, i * 320 + 45, 1500))
             for i in range(-3, 4)]
    region = Rect(-160, -100, 160, 100)

    rows = []
    for dose in (0.92, 0.96, 1.0, 1.04, 1.08):
        latent = sim.latent_image(lines, region, ProcessCondition(dose=dose))
        cd = measure_cd_on_cutline(latent, threshold, -160, 160, 0.0)
        rows.append((f"{dose:.2f}", f"{cd:.1f}"))
    print()
    print(format_table(["relative dose", "printed CD (nm)"], rows,
                       title="CD through dose (dense 90 nm line)"))

    rows = []
    for defocus in (0, 100, 200, 300):
        latent = sim.latent_image(lines, region, ProcessCondition(defocus_nm=defocus))
        cd = measure_cd_on_cutline(latent, threshold, -160, 160, 0.0)
        rows.append((defocus, f"{cd:.1f}"))
    print()
    print(format_table(["defocus (nm)", "printed CD (nm)"], rows,
                       title="CD through focus (dense 90 nm line)"))

    print()
    iso = Polygon.from_rect(Rect(-45, -800, 45, 800))
    before = run_orc(sim, [iso], [iso])
    result = apply_model_opc(sim, [iso])
    after = run_orc(sim, result.polygons, [iso])
    print("model-based OPC on an isolated line:")
    print(f"  EPE rms {before.rms_epe:.1f} -> {after.rms_epe:.1f} nm "
          f"in {result.iterations_run} iterations")


if __name__ == "__main__":
    main()
