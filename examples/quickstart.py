"""Quickstart: the paper's flow on the ISCAS-85 c17 benchmark.

Builds the 90 nm technology, maps c17 onto the generated standard-cell
library, and runs drawn-CD timing against post-OPC extracted timing with
rule-based OPC.  Takes about a minute on a laptop (real lithography
simulation runs underneath).

    python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.cells import build_library
from repro.circuits import c17
from repro.flow import FlowConfig, PostOpcTimingFlow
from repro.pdk import make_tech_90nm
from repro.timing import top_paths


def main():
    tech = make_tech_90nm()
    library = build_library(tech)
    netlist = c17(library)
    print(f"design: {netlist.name} ({netlist.gate_count} gates, "
          f"{len(netlist.inputs)} inputs, {len(netlist.outputs)} outputs)")

    flow = PostOpcTimingFlow(netlist, tech, cells=library)
    print(f"placed die: {flow.placement.die.width / 1000:.1f} x "
          f"{flow.placement.die.height / 1000:.1f} um, "
          f"{len(flow.gate_rects)} transistors to measure")

    report = flow.run(FlowConfig(opc_mode="rule", clock_period_ps=500.0))

    print()
    print(report.summary())
    print()
    rows = [
        (p.endpoint_net, f"{p.arrival:.1f}", f"{p.slack:+.1f}", " -> ".join(p.gates))
        for p in top_paths(report.post_sta, 4)
    ]
    print(format_table(
        ["endpoint", "arrival (ps)", "slack (ps)", "path"],
        rows,
        title="post-OPC speed paths",
    ))


if __name__ == "__main__":
    main()
