"""Selective OPC: design intent driving mask synthesis.

The paper's closing proposal: pass design intent (which gates are timing
critical) to the OPC engineers, so expensive model-based correction is
spent only where timing needs it.  This example compares three mask
recipes on the same design:

* rule-based OPC everywhere (cheap),
* model-based OPC everywhere (expensive),
* selective: model-based on tagged critical gates only.

    python examples/selective_opc.py
"""

from repro.analysis import format_table
from repro.cells import build_library
from repro.circuits import c17
from repro.flow import FlowConfig, PostOpcTimingFlow
from repro.pdk import make_tech_90nm


def main():
    tech = make_tech_90nm()
    library = build_library(tech)
    flow = PostOpcTimingFlow(c17(library), tech, cells=library)

    rows = []
    for mode in ("rule", "selective", "model"):
        report = flow.run(FlowConfig(opc_mode=mode, clock_period_ps=500.0,
                                     n_critical_paths=1))
        critical_stats = [
            m.error for (gate, _), m in report.measurements.items()
            if gate in report.critical_gates and m.printed
        ]
        worst_critical = max((abs(e) for e in critical_stats), default=float("nan"))
        rows.append((
            mode,
            report.model_corrected_polygons,
            f"{report.runtimes['opc']:.1f}",
            f"{report.cd_stats.mean:+.2f}",
            f"{report.cd_stats.sigma:.2f}",
            f"{worst_critical:.2f}",
            f"{report.wns_post:+.1f}",
        ))

    print(format_table(
        ["opc mode", "model-corrected polys", "opc time (s)",
         "CD mean (nm)", "CD sigma (nm)", "worst critical |err|", "WNS (ps)"],
        rows,
        title="selective OPC: timing quality vs correction cost (c17)",
    ))
    print()
    print("Selective mode holds the critical gates to model-OPC accuracy at a")
    print("fraction of the full-chip correction cost.")


if __name__ == "__main__":
    main()
