"""Statistical timing: corners, Monte-Carlo, and hold analysis.

Runs the STA substrate by itself (no lithography in the loop) on a
Kogge-Stone adder: classic corner analysis vs Monte-Carlo over realistic
CD variation, plus min-path (hold) checks on a register pipeline.

    python examples/statistical_timing.py
"""

from repro.analysis import format_table
from repro.cells import build_library
from repro.circuits import Netlist, kogge_stone_adder
from repro.device import AlphaPowerModel
from repro.pdk import make_tech_90nm
from repro.place import place_rows
from repro.timing import (
    StaEngine,
    TimingConstraints,
    characterize_library,
    report_summary,
    report_timing,
    run_corners,
    run_hold,
    run_monte_carlo,
)
from repro.timing.mc import CdVariationSpec


def pipeline_netlist() -> Netlist:
    """DFF -> 4 inverters -> DFF, for the hold check."""
    netlist = Netlist("pipe")
    netlist.add_input("ck")
    netlist.add_gate("ffa", "DFF_X1", {"D": "back", "CK": "ck", "Q": "q"})
    prev = "q"
    for i in range(4):
        netlist.add_gate(f"i{i}", "INV_X1", {"A": prev, "Z": f"n{i}"})
        prev = f"n{i}"
    netlist.add_gate("ffb", "DFF_X1", {"D": prev, "CK": "ck", "Q": "back"})
    netlist.add_output("q")
    return netlist


def main():
    tech = make_tech_90nm()
    library = build_library(tech)
    model = AlphaPowerModel(tech.device)
    liberty = characterize_library(library, model)

    netlist = kogge_stone_adder(8)
    engine = StaEngine(netlist, library, liberty, place_rows(netlist, library))
    constraints = TimingConstraints(clock_period_ps=500)

    result = engine.run(constraints)
    print(report_summary(result))
    print()
    print(report_timing(result, k=1, netlist=netlist))

    print()
    corners = run_corners(engine, model, constraints)
    mc = run_monte_carlo(engine, model, samples=80, constraints=constraints,
                         spec=CdVariationSpec(sigma_random_nm=1.5,
                                              sigma_correlated_nm=1.5))
    print(format_table(
        ["quantity", "WNS (ps)"],
        [
            ("slow corner (+6 nm everywhere)", f"{corners['slow']:+.1f}"),
            ("MC worst of 80", f"{mc.min_wns:+.1f}"),
            ("MC mean", f"{mc.mean_wns:+.1f}"),
            ("MC sigma", f"{mc.sigma_wns:.1f}"),
            ("fast corner (-6 nm everywhere)", f"{corners['fast']:+.1f}"),
        ],
        title="corner guardband vs Monte-Carlo (Kogge-Stone 8-bit)",
    ))
    print()
    print(f"pessimism: corners guardband {corners['typical'] - corners['slow']:.1f} ps, "
          f"MC never worse than {mc.min_wns - corners['slow']:.1f} ps above the corner")

    print()
    pipe = pipeline_netlist()
    pipe_engine = StaEngine(pipe, library, liberty)
    hold = run_hold(pipe_engine)
    print(f"hold check on a register pipeline: worst hold slack "
          f"{hold.worst_hold_slack:+.1f} ps "
          f"({len(hold.violations)} violations)")


if __name__ == "__main__":
    main()
