"""repro — litho-aware timing analysis via post-OPC CD extraction.

A from-scratch reproduction of Yang, Capodieci, Sylvester, *"Advanced
timing analysis based on post-OPC extraction of critical dimensions"*
(DAC 2005), with every substrate built in: geometry, GDSII, a PDK with
generated standard cells, place & route, partially-coherent lithography
simulation, OPC, CD metrology, device models, and static timing.

Quick start::

    from repro.cells import build_library
    from repro.circuits import c17
    from repro.flow import FlowConfig, PostOpcTimingFlow
    from repro.pdk import make_tech_90nm

    tech = make_tech_90nm()
    library = build_library(tech)
    flow = PostOpcTimingFlow(c17(library), tech, cells=library)
    print(flow.run(FlowConfig(opc_mode="rule", clock_period_ps=500)).summary())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-claim-versus-measured record.
"""

__version__ = "1.0.0"
