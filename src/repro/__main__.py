"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``flow``    — run the post-OPC timing flow on a built-in design
* ``sweep``   — run all OPC modes through one shared flow context
* ``serve``   — flow-as-a-service front-end (bounded job queue over a
  shared cache; JSON-lines protocol on a UNIX or TCP socket)
* ``sta``     — drawn-CD static timing report
* ``liberty`` — emit the characterized library as Liberty text
* ``gds``     — write a placed design (and optionally its OPC mask) to GDSII
* ``litho``   — print the calibrated process signature (CD through pitch)
* ``lint``    — static determinism/contract checks (AST rules + waivers)
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.cells import build_library
from repro.circuits import (
    array_multiplier,
    c17,
    carry_select_adder,
    kogge_stone_adder,
    random_logic,
    ripple_carry_adder,
    structured_asic,
    testchip,
)
from repro.pdk import make_tech_90nm

DESIGNS = {
    "c17": lambda lib: c17(lib),
    "rca4": lambda lib: ripple_carry_adder(4),
    "rca8": lambda lib: ripple_carry_adder(8),
    "csa6": lambda lib: carry_select_adder(6, block=2),
    "ksa8": lambda lib: kogge_stone_adder(8),
    "mult4": lambda lib: array_multiplier(4),
    "rand80": lambda lib: random_logic(80, n_inputs=10, seed=3),
    "testchip": lambda lib: testchip(bits=3, random_gates=24),
    "fabric1k": lambda lib: structured_asic(1000),
    "fabric3k": lambda lib: structured_asic(3000),
}


def _make_design(name: str, library, design_size=None):
    if design_size is not None:
        # --design-size overrides --design: an exactly-sized structured-ASIC
        # vehicle (seeded, so the same size is the same netlist every run).
        return structured_asic(design_size)
    if name not in DESIGNS:
        raise SystemExit(f"unknown design {name!r}; choose from {sorted(DESIGNS)}")
    return DESIGNS[name](library)


def _make_flow_engine(args):
    """Shared flow/sweep setup: context (persistent if asked) + executor.

    A ``--run-dir`` without an explicit ``--cache-dir`` keeps the
    artifact cache inside the run directory, so the journal and the
    artifacts it references travel (and resume) together.
    """
    from repro.flow import FlowContext, ParallelExecutor, RunJournal

    max_bytes = None
    if getattr(args, "cache_size_mb", None):
        max_bytes = int(args.cache_size_mb * 1e6)
    cache_dir = args.cache_dir
    if cache_dir is None and getattr(args, "run_dir", None):
        cache_dir = os.path.join(args.run_dir, RunJournal.CACHE_SUBDIR)
    context = FlowContext(cache_dir=cache_dir, max_disk_bytes=max_bytes)
    executor = ParallelExecutor.from_jobs(
        args.jobs, retries=args.retries, chunk_timeout=args.chunk_timeout
    )
    return context, executor


def _open_journal(args, flow, config, command):
    """Create (or resume) the run journal for a ``--run-dir`` invocation."""
    from repro.flow import InputValidationError, RunJournal, stable_hash

    if not getattr(args, "run_dir", None):
        if getattr(args, "resume", False):
            raise InputValidationError("resume", "--resume requires --run-dir")
        return None
    manifest = {
        "command": command,
        "design": args.design,
        "fingerprint": flow.fingerprint,
        "config_hash": stable_hash(config),
    }
    if args.resume:
        return RunJournal.resume(args.run_dir, manifest)
    return RunJournal.create(args.run_dir, manifest)


def cmd_flow(args) -> int:
    from repro.flow import (
        FlowConfig,
        FlowInterrupted,
        InterruptGuard,
        PostOpcTimingFlow,
    )

    tech = make_tech_90nm()
    library = build_library(tech)
    netlist = _make_design(args.design, library, args.design_size)
    context, executor = _make_flow_engine(args)
    flow = PostOpcTimingFlow(netlist, tech, cells=library,
                             executor=executor, context=context)
    # clock_period_ps=None derives the period from the flow's own drawn-STA
    # stage (one STA, served from the artifact cache — not a warm-up run).
    config = FlowConfig(opc_mode=args.opc, clock_period_ps=args.period,
                        n_critical_paths=args.paths,
                        max_quarantine_fraction=args.max_quarantine_fraction,
                        litho_shards=args.litho_shards,
                        incremental_sta=not args.full_sta)
    journal = _open_journal(args, flow, config, "flow")
    scheduler = None
    if getattr(args, "async_dag", False):
        from repro.flow import StageScheduler

        scheduler = StageScheduler(args.max_concurrent_stages)
    try:
        with InterruptGuard() as guard:
            report = flow.run(config, journal=journal, interrupt=guard,
                              scheduler=scheduler)
    except Exception as exc:
        if journal is not None:
            if not isinstance(exc, FlowInterrupted):
                journal.record_failed(exc)  # interruption already journaled
            journal.close()
        raise
    print(report.summary())
    if journal is not None:
        journal.record_complete(
            wns_drawn=report.wns_drawn,
            wns_post=report.wns_post,
            coverage=report.coverage,
            quarantined_gates=len(report.quarantined_gates),
            cached_stages=report.trace.cache_hits,
        )
        journal.close()
        print(f"journal: {journal.path} "
              f"({report.trace.cache_hits} stages replayed from cache)")
    if args.cache_dir:
        print(f"cache: {context.summary()}")
    if args.trace:
        report.trace.write_json(args.trace)
        print(f"wrote trace {args.trace}")
    if args.gds:
        from repro.flow import export_flow_gds

        export_flow_gds(flow, report, args.gds)
        print(f"wrote {args.gds}")
    return 0


def cmd_sweep(args) -> int:
    from repro.flow import (
        FlowConfig,
        FlowInterrupted,
        FlowSweep,
        InterruptGuard,
        PostOpcTimingFlow,
    )

    tech = make_tech_90nm()
    library = build_library(tech)
    netlist = _make_design(args.design, library, args.design_size)
    context, executor = _make_flow_engine(args)
    flow = PostOpcTimingFlow(netlist, tech, cells=library,
                             executor=executor, context=context)
    base = FlowConfig(
        opc_mode="none", clock_period_ps=args.period,
        n_critical_paths=args.paths,
        max_quarantine_fraction=args.max_quarantine_fraction,
        litho_shards=args.litho_shards,
        incremental_sta=not args.full_sta,
    )
    journal = _open_journal(args, flow, base, "sweep")
    try:
        with InterruptGuard() as guard:
            sweep = FlowSweep(flow)
            if getattr(args, "async_dag", False):
                from repro.flow import StageScheduler

                result = sweep.run_concurrent(
                    base, scheduler=StageScheduler(args.max_concurrent_stages),
                    journal=journal, interrupt=guard,
                )
            else:
                result = sweep.run(base, journal=journal, interrupt=guard)
    except Exception as exc:
        if journal is not None:
            if not isinstance(exc, FlowInterrupted):
                journal.record_failed(exc)
            journal.close()
        raise
    print(result.table())
    print(f"context: {result.cache_summary()}")
    if journal is not None:
        journal.record_complete(
            modes_ok=sorted(result.reports),
            modes_failed=sorted(result.failures),
        )
        journal.close()
        print(f"journal: {journal.path}")
    if args.trace:
        import json

        payload = {mode: report.trace.as_dict()
                   for mode, report in result.reports.items()}
        payload["context"] = flow.context.stats()
        payload["failures"] = dict(result.failures)
        with open(args.trace, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote trace {args.trace}")
    # Partial failure is still a usable sweep; only a sweep with zero
    # surviving modes counts as failed.
    return 1 if (result.failures and not result.reports) else 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.flow import (
        FlowContext,
        FlowService,
        InputValidationError,
        ParallelExecutor,
        PostOpcTimingFlow,
    )

    if not args.socket and not args.tcp:
        raise InputValidationError(
            "socket", "serve needs --socket PATH and/or --tcp HOST:PORT"
        )
    tech = make_tech_90nm()
    library = build_library(tech)
    max_bytes = int(args.cache_size_mb * 1e6) if args.cache_size_mb else None
    # One shared context: every job of every design dedups against it.
    context = FlowContext(cache_dir=args.cache_dir, max_disk_bytes=max_bytes)
    executor = ParallelExecutor.from_jobs(
        args.jobs, retries=args.retries, chunk_timeout=args.chunk_timeout
    )
    flows = {
        name: PostOpcTimingFlow(_make_design(name, library), tech,
                                cells=library, executor=executor,
                                context=context)
        for name in (args.designs or ["c17"])
    }

    async def _serve() -> int:
        import signal

        service = FlowService(
            flows, max_queue=args.queue, workers=args.workers,
            run_root=args.run_root,
            max_concurrent_stages=args.max_concurrent_stages,
            deadline_s=args.deadline,
            stage_timeout_s=args.stage_timeout,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown,
            drain_timeout_s=args.drain_timeout,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-UNIX loop: ctrl-C lands as KeyboardInterrupt
        await service.start()
        try:
            if args.socket:
                await service.serve_unix(args.socket)
                print(f"serving on unix://{args.socket}")
            if args.tcp:
                host, _, port = args.tcp.rpartition(":")
                host = host or "127.0.0.1"
                await service.serve_tcp(host, int(port))
                print(f"serving on tcp://{host}:{port}")
            print(f"designs: {', '.join(sorted(flows))}; "
                  f"queue {args.queue}, workers {args.workers} "
                  "(SIGINT/SIGTERM stops after running jobs settle)")
            await stop.wait()
            print("stopping: draining running jobs...")
        finally:
            await service.stop(drain_timeout=args.drain_timeout)
        return 0

    return asyncio.run(_serve())


def cmd_sta(args) -> int:
    from repro.device import AlphaPowerModel
    from repro.place import place_rows
    from repro.timing import (
        StaEngine, TimingConstraints, characterize_library, report_summary,
        report_timing,
    )

    tech = make_tech_90nm()
    library = build_library(tech)
    netlist = _make_design(args.design, library)
    liberty = characterize_library(library, AlphaPowerModel(tech.device))
    engine = StaEngine(netlist, library, liberty, place_rows(netlist, library))
    result = engine.run(TimingConstraints(clock_period_ps=args.period or 1000.0))
    print(report_summary(result))
    print()
    print(report_timing(result, k=args.paths, netlist=netlist))
    return 0


def cmd_liberty(args) -> int:
    from repro.device import AlphaPowerModel
    from repro.timing import characterize_library, write_liberty

    tech = make_tech_90nm()
    library = build_library(tech)
    liberty = characterize_library(library, AlphaPowerModel(tech.device))
    text = write_liberty(liberty)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out} ({len(liberty)} cells)")
    else:
        print(text)
    return 0


def cmd_gds(args) -> int:
    from repro.gds import write_gds
    from repro.place import assemble_layout, place_rows

    tech = make_tech_90nm()
    library = build_library(tech)
    netlist = _make_design(args.design, library)
    placement = place_rows(netlist, library)
    layout = assemble_layout(netlist, library, placement)
    write_gds(layout, args.out)
    print(f"wrote {args.out}: {netlist.gate_count} gates, "
          f"die {placement.die.width / 1000:.1f} x {placement.die.height / 1000:.1f} um")
    return 0


def cmd_litho(args) -> int:
    from repro.litho import LithographySimulator
    from repro.litho.simulator import cd_through_pitch

    tech = make_tech_90nm()
    sim = LithographySimulator.for_tech(tech)
    threshold = sim.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    print(f"threshold {threshold:.3f} (anchor {tech.rules.gate_length:.0f} nm "
          f"@ {tech.rules.poly_pitch:.0f} nm pitch)")
    for pitch, cd in cd_through_pitch(sim, tech.rules.gate_length,
                                      [320, 400, 480, 640, 960, 1600]):
        print(f"  pitch {pitch:5.0f} nm -> printed CD {cd:6.1f} nm "
              f"({cd - tech.rules.gate_length:+.1f})")
    return 0


def cmd_lint(args) -> int:
    from repro.lintcheck.cli import list_rules, run_lint, write_fingerprints

    if args.list_rules:
        return list_rules()
    if args.write_stage_fingerprints:
        return write_fingerprints(
            args.paths,
            args.stage_fingerprints or ".repro-stage-fingerprints.json",
            exclude=args.exclude,
        )
    return run_lint(
        args.paths,
        select=args.select,
        ignore=args.ignore,
        no_waivers=args.no_waivers,
        exclude=args.exclude,
        fmt=args.format,
        jobs=args.jobs,
        baseline=args.baseline,
        write_baseline_path=args.write_baseline,
        stage_fingerprints=args.stage_fingerprints,
        changed_only=args.changed,
    )


def _add_scale_args(sub) -> None:
    """Large-vehicle knobs shared by flow/sweep."""
    sub.add_argument("--design-size", type=int, default=None, metavar="GATES",
                     help="ignore --design and run a deterministic "
                          "structured-ASIC vehicle with exactly this many "
                          "gates (e.g. 3000)")
    sub.add_argument("--litho-shards", type=int, default=0, metavar="N",
                     help="shard metrology into at least N large overlapping "
                          "litho windows instead of per-gate tiles "
                          "(0 = classic tile path); results are "
                          "bit-identical between serial and parallel "
                          "execution of the same shard plan")
    sub.add_argument("--full-sta", action="store_true",
                     help="recompute the post-OPC STA from scratch instead "
                          "of incrementally re-timing the drawn STA "
                          "(same result, slower; for cross-checking)")


def _add_scheduler_args(sub) -> None:
    """Async DAG scheduler knobs shared by flow/sweep."""
    sub.add_argument("--async", dest="async_dag", action="store_true",
                     help="run the stage graph through the async DAG "
                          "scheduler: every dependency-ready stage runs "
                          "concurrently, bit-identical to the serial path")
    sub.add_argument("--max-concurrent-stages", type=int, default=None,
                     help="cap stages in flight per run "
                          "(default: graph width)")


def _add_durability_args(sub) -> None:
    """Persistent-cache, journal and fault-tolerance knobs shared by
    flow/sweep.  Exit codes: 0 ok, 2 interrupted (SIGINT/SIGTERM), 3
    input validation, 4 quarantine threshold exceeded."""
    sub.add_argument("--run-dir", default=None,
                     help="run directory: append-only journal.jsonl plus the "
                          "artifact cache (unless --cache-dir overrides it)")
    sub.add_argument("--resume", action="store_true",
                     help="continue an interrupted run from its --run-dir "
                          "journal + cache instead of recomputing")
    sub.add_argument("--max-quarantine-fraction", type=float, default=0.5,
                     help="abort (exit 4) when more than this fraction of "
                          "gates fell back to drawn CDs (default 0.5)")
    sub.add_argument("--cache-dir", default=None,
                     help="persist flow artifacts here; later runs (or other "
                          "processes) serve them as disk hits")
    sub.add_argument("--cache-size-mb", type=float, default=None,
                     help="cap the cache directory, evicting LRU entries")
    sub.add_argument("--retries", type=int, default=1,
                     help="retry a failed/crashed worker chunk this many times "
                          "before degrading it to serial execution")
    sub.add_argument("--chunk-timeout", type=float, default=None,
                     help="seconds before a worker chunk counts as failed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="litho-aware timing analysis (DAC 2005 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    flow = sub.add_parser("flow", help="run the post-OPC timing flow")
    flow.add_argument("--design", default="c17", choices=sorted(DESIGNS))
    flow.add_argument("--opc", default="rule",
                      choices=["none", "rule", "model", "selective"])
    flow.add_argument("--period", type=float, default=None,
                      help="clock period (ps); default derives it from the drawn STA")
    flow.add_argument("--paths", type=int, default=5)
    flow.add_argument("--jobs", type=int, default=1,
                      help="parallel workers for the OPC/metrology tile loops")
    _add_scale_args(flow)
    _add_scheduler_args(flow)
    _add_durability_args(flow)
    flow.add_argument("--trace", default=None,
                      help="write the per-stage trace (wall time, cache, counters) as JSON")
    flow.add_argument("--gds", default=None, help="also export layers to this GDS file")
    flow.set_defaults(func=cmd_flow)

    sweep = sub.add_parser(
        "sweep", help="run all OPC modes through one shared flow context"
    )
    sweep.add_argument("--design", default="c17", choices=sorted(DESIGNS))
    sweep.add_argument("--period", type=float, default=None,
                       help="clock period (ps); default derives it from the drawn STA")
    sweep.add_argument("--paths", type=int, default=5)
    sweep.add_argument("--jobs", type=int, default=1)
    _add_scale_args(sweep)
    _add_scheduler_args(sweep)
    _add_durability_args(sweep)
    sweep.add_argument("--trace", default=None,
                       help="write per-mode traces + context stats as JSON")
    sweep.set_defaults(func=cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="serve flows over a bounded job queue (JSON-lines socket API)",
    )
    serve.add_argument("--designs", nargs="+", default=None,
                       choices=sorted(DESIGNS), metavar="DESIGN",
                       help="designs to pre-build and serve (default: c17)")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="listen on a UNIX socket at this path")
    serve.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="listen on a local TCP socket")
    serve.add_argument("--queue", type=int, default=16,
                       help="bounded job queue size; a full queue rejects "
                            "submits with reason queue-full (default 16)")
    serve.add_argument("--workers", type=int, default=2,
                       help="jobs running concurrently (default 2)")
    serve.add_argument("--run-root", default=None, metavar="DIR",
                       help="give every job a journaled run directory "
                            "DIR/<job-id>/")
    serve.add_argument("--jobs", type=int, default=1,
                       help="parallel workers for each job's tile loops")
    serve.add_argument("--max-concurrent-stages", type=int, default=None,
                       help="cap concurrently-running stages per job")
    serve.add_argument("--cache-dir", default=None,
                       help="persist the shared artifact cache here")
    serve.add_argument("--cache-size-mb", type=float, default=None,
                       help="cap the cache directory, evicting LRU entries")
    serve.add_argument("--retries", type=int, default=1,
                       help="retry a failed worker chunk this many times")
    serve.add_argument("--chunk-timeout", type=float, default=None,
                       help="seconds before a worker chunk counts as failed")
    serve.add_argument("--deadline", type=float, default=None, metavar="S",
                       help="default per-job wall budget; past it the "
                            "watchdog fails the job with exit code 2 "
                            "(per-submit deadline_s overrides)")
    serve.add_argument("--stage-timeout", type=float, default=None,
                       metavar="S",
                       help="hung-stage watchdog: fail a job whose journal "
                            "is silent this long (needs --run-root)")
    serve.add_argument("--drain-timeout", type=float, default=None,
                       metavar="S",
                       help="bound on shutdown: running jobs past this are "
                            "cancelled instead of awaited forever")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive failures that open a design's "
                            "circuit breaker (default 5)")
    serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                       metavar="S",
                       help="seconds an open breaker rejects submits before "
                            "admitting a half-open probe (default 30)")
    serve.set_defaults(func=cmd_serve)

    sta = sub.add_parser("sta", help="drawn-CD timing report")
    sta.add_argument("--design", default="c17", choices=sorted(DESIGNS))
    sta.add_argument("--period", type=float, default=None)
    sta.add_argument("--paths", type=int, default=3)
    sta.set_defaults(func=cmd_sta)

    liberty = sub.add_parser("liberty", help="emit the characterized .lib")
    liberty.add_argument("--out", default=None)
    liberty.set_defaults(func=cmd_liberty)

    gds = sub.add_parser("gds", help="write a placed design to GDSII")
    gds.add_argument("--design", default="c17", choices=sorted(DESIGNS))
    gds.add_argument("--out", required=True)
    gds.set_defaults(func=cmd_gds)

    litho = sub.add_parser("litho", help="print the calibrated process signature")
    litho.set_defaults(func=cmd_litho)

    lint = sub.add_parser(
        "lint", help="static determinism & flow-contract checks"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directory trees to check (default: src)")
    lint.add_argument("--select", action="append", default=None, metavar="RULE",
                      help="run only this rule (repeatable, or "
                           "comma-separated)")
    lint.add_argument("--ignore", action="append", default=None, metavar="RULE",
                      help="skip this rule (repeatable, or comma-separated)")
    lint.add_argument("--changed", action="store_true",
                      help="lint only files changed against git HEAD "
                           "(plus untracked) under the given paths")
    lint.add_argument("--exclude", action="append", default=None, metavar="SUBSTR",
                      help="drop files whose path contains this substring "
                           "(e.g. the checker's own violation corpus)")
    lint.add_argument("--no-waivers", action="store_true",
                      help="report findings even where a "
                           "`# repro-lint: allow[...]` waiver covers them")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text",
                      help="output format (sarif = SARIF 2.1.0 for code "
                           "scanning; default: text)")
    lint.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="fan per-module rules out over N worker "
                           "processes (default: 1 = serial)")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="suppress findings grandfathered in this "
                           "baseline file")
    lint.add_argument("--write-baseline", nargs="?", metavar="PATH",
                      const=".repro-lint-baseline.json", default=None,
                      help="record the current findings as the baseline "
                           "(default path: .repro-lint-baseline.json) and exit 0")
    lint.add_argument("--stage-fingerprints", default=None, metavar="PATH",
                      help="stage version fingerprint file for the "
                           "stale-version rule (default: "
                           ".repro-stage-fingerprints.json when present)")
    lint.add_argument("--write-stage-fingerprints", action="store_true",
                      help="record current stage (version, shape) "
                           "fingerprints and exit 0")
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    # repro-lint: allow[broad-except] top-level CLI handler: maps FlowError exit codes
    except Exception as exc:
        # The structured FlowError taxonomy carries its own exit code
        # (2 interrupted, 3 validation, 4 quarantine, 1 other FlowError);
        # anything else keeps the raw traceback.
        exit_code = getattr(exc, "exit_code", None)
        if isinstance(exit_code, int):
            print(f"error: {exc}", file=sys.stderr)
            return exit_code
        raise


if __name__ == "__main__":
    sys.exit(main())
