"""Result analysis: path-rank comparison and report tables."""

from repro.analysis.rank import RankComparison, compare_rankings, kendall_tau, spearman_rho
from repro.analysis.report import format_table, format_histogram
from repro.analysis.flow_report import flow_report_markdown

__all__ = [
    "RankComparison",
    "compare_rankings",
    "kendall_tau",
    "spearman_rho",
    "format_table",
    "format_histogram",
    "flow_report_markdown",
]
