"""Markdown signoff report for a flow run.

Renders a :class:`~repro.flow.FlowReport` as the document a timing team
would circulate: CD population, worst-slack movement, path-rank table,
leakage, hold, and printability faults.
"""

from __future__ import annotations

from typing import List

from repro.metrology.statistics import histogram_of_errors


def flow_report_markdown(report) -> str:
    """Render a FlowReport as a self-contained markdown document."""
    lines: List[str] = [
        f"# Post-OPC timing report — {report.netlist_name}",
        "",
        f"*OPC mode:* **{report.opc_mode}** &nbsp;&nbsp; "
        f"*clock period:* {report.drawn_sta.clock_period_ps:.1f} ps &nbsp;&nbsp; "
        f"*critical gates tagged:* {len(report.critical_gates)}",
        "",
        "## Printed gate CDs",
        "",
        f"{report.cd_stats.count} transistors measured; printed − drawn error "
        f"mean **{report.cd_stats.mean:+.2f} nm**, sigma "
        f"**{report.cd_stats.sigma:.2f} nm**, range "
        f"[{report.cd_stats.minimum:+.2f}, {report.cd_stats.maximum:+.2f}] nm.",
        "",
        "| error bin (nm) | count |",
        "|---|---|",
    ]
    for center, count in histogram_of_errors(report.measurements, bin_width=2.0):
        lines.append(f"| {center:+.0f} | {count} |")

    coverage = getattr(report, "coverage", 1.0)
    quarantined = list(getattr(report, "quarantined_gates", []) or [])
    reasons = getattr(report, "quarantine_reasons", {}) or {}
    lines += [
        "",
        f"Extraction coverage: **{coverage:.1%}** of gate instances "
        f"({len(quarantined)} quarantined to drawn CDs).",
    ]
    if quarantined:
        lines += [
            "",
            "| quarantined gate | reason |",
            "|---|---|",
        ]
        for gate in sorted(quarantined):
            lines.append(f"| `{gate}` | {reasons.get(gate, 'unknown')} |")

    lines += [
        "",
        "## Worst-case slack",
        "",
        "| view | WNS (ps) |",
        "|---|---|",
        f"| drawn CDs | {report.wns_drawn:+.2f} |",
        f"| post-OPC extracted CDs | {report.wns_post:+.2f} |",
        "",
        f"Change: **{report.wns_change_percent:+.1f}%** of the drawn margin.",
        "",
        "## Speed-path ranking",
        "",
        f"Kendall tau {report.rank.tau:.3f}, {report.rank.moved} of "
        f"{len(report.rank.endpoints)} endpoints moved"
        + (", **new #1 path**." if report.rank.new_top else "."),
        "",
        "| endpoint | drawn rank | post rank |",
        "|---|---|---|",
    ]
    for net, before, after, _ in report.rank.rows():
        lines.append(f"| {net} | {before + 1} | {after + 1} |")

    lines += [
        "",
        "## Static power",
        "",
        f"Leakage {report.leakage_drawn * 1e9:.2f} nA (drawn) → "
        f"{report.leakage_post * 1e9:.2f} nA (printed), "
        f"**{report.leakage_change_percent:+.1f}%**.",
    ]
    if report.hold_drawn != float("inf"):
        lines += [
            "",
            "## Hold",
            "",
            f"Worst register hold slack {report.hold_drawn:+.2f} ps (drawn) → "
            f"{report.hold_post:+.2f} ps (printed).",
        ]
    if report.failed_gates:
        lines += [
            "",
            "## Printability faults",
            "",
            "Gates with open/unmeasurable channels (yield loss, not derated):",
            "",
        ]
        lines += [f"* `{g}`" for g in sorted(report.failed_gates)]
    trace = getattr(report, "trace", None)
    if trace is not None and len(trace):
        stage_text = ", ".join(
            f"{r.name} {r.wall_s:.1f}s" + (" (cached)" if r.cache_hit else "")
            for r in trace
        )
        cache_text = f" — {trace.cache_hits} stages served from cache" \
            if trace.cache_hits else ""
    else:
        stage_text = ", ".join(f"{k} {v:.1f}s" for k, v in report.runtimes.items())
        cache_text = ""
    lines += [
        "",
        "---",
        f"*stage runtimes:* {stage_text}{cache_text}",
        "",
    ]
    return "\n".join(lines)
