"""Rank correlation between drawn and post-OPC speed-path orderings."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.timing.paths import TimingPath


def kendall_tau(ranks_a: Sequence[int], ranks_b: Sequence[int]) -> float:
    """Kendall's tau-a between two rankings of the same items."""
    if len(ranks_a) != len(ranks_b):
        raise ValueError("rankings must have equal length")
    n = len(ranks_a)
    if n < 2:
        return 1.0
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            a = ranks_a[i] - ranks_a[j]
            b = ranks_b[i] - ranks_b[j]
            product = a * b
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    return (concordant - discordant) / (n * (n - 1) / 2)


def spearman_rho(ranks_a: Sequence[int], ranks_b: Sequence[int]) -> float:
    """Spearman's rho between two rankings of the same items."""
    if len(ranks_a) != len(ranks_b):
        raise ValueError("rankings must have equal length")
    n = len(ranks_a)
    if n < 2:
        return 1.0
    d2 = sum((a - b) ** 2 for a, b in zip(ranks_a, ranks_b))
    return 1.0 - 6.0 * d2 / (n * (n * n - 1))


@dataclass(frozen=True)
class RankComparison:
    """How a path ranking moved between two timing runs."""

    endpoints: Tuple[str, ...]
    ranks_before: Tuple[int, ...]
    ranks_after: Tuple[int, ...]
    tau: float
    rho: float
    moved: int           # endpoints whose rank changed
    new_top: bool        # did the #1 path change?

    def rows(self) -> List[Tuple[str, int, int, int]]:
        """(endpoint, rank before, rank after, movement) report rows."""
        return [
            (net, before, after, before - after)
            for net, before, after in zip(self.endpoints, self.ranks_before, self.ranks_after)
        ]


def compare_rankings(
    paths_before: Sequence[TimingPath],
    paths_after: Sequence[TimingPath],
) -> RankComparison:
    """Compare two top-K path reports over their common endpoints.

    Endpoints appearing in only one report are ranked after all common
    ones in the report that lacks them (they fell out of / entered the
    top-K — itself a reordering signal).
    """
    order_before = [p.endpoint_net for p in paths_before]
    order_after = [p.endpoint_net for p in paths_after]
    rank_before: Dict[str, int] = {net: i for i, net in enumerate(order_before)}
    rank_after: Dict[str, int] = {net: i for i, net in enumerate(order_after)}
    endpoints = sorted(set(order_before) | set(order_after), key=lambda net: (
        rank_before.get(net, len(order_before)), net
    ))
    fallback_before = len(order_before)
    fallback_after = len(order_after)
    ranks_a = [rank_before.get(net, fallback_before) for net in endpoints]
    ranks_b = [rank_after.get(net, fallback_after) for net in endpoints]
    moved = sum(1 for a, b in zip(ranks_a, ranks_b) if a != b)
    new_top = bool(order_before and order_after and order_before[0] != order_after[0])
    return RankComparison(
        endpoints=tuple(endpoints),
        ranks_before=tuple(ranks_a),
        ranks_after=tuple(ranks_b),
        tau=kendall_tau(ranks_a, ranks_b),
        rho=spearman_rho(ranks_a, ranks_b),
        moved=moved,
        new_top=new_top,
    )
