"""Fixed-width text tables for benchmark and flow reports."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render an aligned ASCII table (numbers right-aligned)."""
    text_rows: List[List[str]] = []
    for row in rows:
        text_rows.append([_fmt(value) for value in row])
    widths = [len(h) for h in headers]
    for row in text_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))

    def line(cells, pad=" "):
        return " | ".join(cell.rjust(widths[k]) for k, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        out.append(line(row))
    return "\n".join(out)


def format_histogram(
    bins: Sequence[Tuple[float, int]],
    width: int = 40,
    label: str = "nm",
) -> str:
    """Horizontal ASCII histogram for CD/EPE error distributions."""
    if not bins:
        return "(empty histogram)"
    peak = max(count for _, count in bins) or 1
    lines = []
    for center, count in bins:
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        lines.append(f"{center:+7.1f} {label} | {bar} {count}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
