"""Standard-cell library: logic, transistors, and generated layout."""

from repro.cells.stdcell import Pin, StandardCell, Transistor
from repro.cells.library import CellLibrary, build_library

__all__ = ["Pin", "StandardCell", "Transistor", "CellLibrary", "build_library"]
