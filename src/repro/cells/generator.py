"""Parametric standard-cell layout generation.

All cells share one row template (heights and strips derived from the
technology's design rules):

* horizontal VSS rail at the bottom, VDD rail at the top (METAL1),
* an NMOS active strip above the VSS rail, a PMOS strip below the VDD rail,
* one vertical POLY stripe per transistor pair, on the contacted poly pitch,
  with a landing pad in the mid-cell gap for the gate contact,
* CONTACT + METAL1 stubs on each source/drain column and on the gate pads.

The returned :class:`GeneratedLayout` carries the transistor gate rectangles
(the poly-over-active regions), which downstream metrology uses to measure
printed gate CDs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.cells.stdcell import Pin, Transistor
from repro.gds import Cell
from repro.geometry import Rect
from repro.pdk import Layers, Technology


@dataclass(frozen=True)
class RowTemplate:
    """Derived dimensions of the standard-cell row, all in nanometres."""

    height: float
    rail: float
    wn_x1: float
    wp_x1: float
    pad_size: float
    pitch: float
    gate_length: float
    endcap: float
    contact: float
    active_enclosure: float
    metal_enclosure: float

    @staticmethod
    def from_tech(tech: Technology) -> "RowTemplate":
        rules = tech.rules
        # Strip and rail dimensions scale with the node (anchored at the
        # 90 nm template that the default rule set was tuned around).
        scale = rules.gate_length / 90.0
        return RowTemplate(
            height=rules.cell_height,
            rail=240.0 * scale,
            wn_x1=400.0 * scale,
            wp_x1=600.0 * scale,
            pad_size=rules.contact_size + 2 * rules.poly_contact_enclosure,
            pitch=rules.poly_pitch,
            gate_length=rules.gate_length,
            endcap=rules.poly_endcap,
            contact=rules.contact_size,
            active_enclosure=rules.active_contact_enclosure,
            metal_enclosure=rules.metal1_contact_enclosure,
        )

    def nmos_strip(self, drive: int) -> Rect:
        width = self.wn_x1 * drive
        return Rect(0, self.rail, 0, self.rail + width)  # x set by caller

    def pmos_strip(self, drive: int) -> Rect:
        width = self.wp_x1 * drive
        return Rect(0, self.height - self.rail - width, 0, self.height - self.rail)


@dataclass
class GeneratedLayout:
    """Output of the cell generator."""

    cell: Cell
    transistors: List[Transistor]
    pins: Dict[str, Pin] = field(default_factory=dict)
    width: float = 0.0
    height: float = 0.0


def generate_cell_layout(
    name: str,
    stripe_pins: Sequence[str],
    drive: int,
    tech: Technology,
    input_pins: Sequence[str] = (),
    output_pin: str = "Z",
    clock_pin: str = "",
) -> GeneratedLayout:
    """Build the layout for a cell with one poly stripe per entry of
    ``stripe_pins`` (the gate-pin label of that stripe).

    Stripe ``i`` produces transistors ``MN{i}`` (on the NMOS strip) and
    ``MP{i}`` (on the PMOS strip).
    """
    if drive < 1:
        raise ValueError("drive must be >= 1")
    if not stripe_pins:
        raise ValueError("cell needs at least one poly stripe")
    t = RowTemplate.from_tech(tech)
    n = len(stripe_pins)
    width = (n + 1) * t.pitch

    cell = Cell(name)
    wn = t.wn_x1 * drive
    wp = t.wp_x1 * drive
    # Active extends past the outer source/drain contacts by the enclosure.
    x_active = t.pitch / 2 - (t.contact / 2 + t.active_enclosure)
    nmos = Rect(x_active, t.rail, width - x_active, t.rail + wn)
    pmos = Rect(x_active, t.height - t.rail - wp, width - x_active, t.height - t.rail)
    if nmos.y1 + t.pad_size >= pmos.y0:
        raise ValueError(
            f"drive {drive} does not fit the row: nmos top {nmos.y1}, pmos bottom {pmos.y0}"
        )
    cell.add_rect(Layers.ACTIVE, nmos)
    cell.add_rect(Layers.ACTIVE, pmos)
    cell.add_rect(Layers.NWELL, Rect(0, t.height / 2, width, t.height))
    cell.add_rect(Layers.NIMPLANT, Rect(0, 0, width, t.height / 2))
    cell.add_rect(Layers.PIMPLANT, Rect(0, t.height / 2, width, t.height))
    cell.add_rect(Layers.BOUNDARY, Rect(0, 0, width, t.height))

    # Power rails.
    cell.add_rect(Layers.METAL1, Rect(0, 0, width, t.rail))
    cell.add_rect(Layers.METAL1, Rect(0, t.height - t.rail, width, t.height))

    mid = (nmos.y1 + pmos.y0) / 2
    transistors: List[Transistor] = []
    pins: Dict[str, Pin] = {}

    for i, pin_label in enumerate(stripe_pins):
        cx = (i + 1) * t.pitch
        x0, x1 = cx - t.gate_length / 2, cx + t.gate_length / 2
        stripe = Rect(x0, nmos.y0 - t.endcap, x1, pmos.y1 + t.endcap)
        cell.add_rect(Layers.POLY, stripe)

        pad = Rect.from_center(cx, mid, t.pad_size, t.pad_size)
        cell.add_rect(Layers.POLY, pad)
        cell.add_rect(Layers.CONTACT, Rect.from_center(cx, mid, t.contact, t.contact))
        pad_metal = Rect.from_center(
            cx, mid, t.contact + 2 * t.metal_enclosure, t.contact + 2 * t.metal_enclosure
        )
        cell.add_rect(Layers.METAL1, pad_metal)
        if pin_label in input_pins and pin_label not in pins:
            pins[pin_label] = Pin(pin_label, "input", pad_metal)
        if clock_pin and pin_label == clock_pin and pin_label not in pins:
            pins[pin_label] = Pin(pin_label, "clock", pad_metal)

        transistors.append(
            Transistor(
                name=f"MN{i}",
                mos_type="n",
                gate_pin=pin_label,
                width=wn,
                length=t.gate_length,
                gate_rect=Rect(x0, nmos.y0, x1, nmos.y1),
            )
        )
        transistors.append(
            Transistor(
                name=f"MP{i}",
                mos_type="p",
                gate_pin=pin_label,
                width=wp,
                length=t.gate_length,
                gate_rect=Rect(x0, pmos.y0, x1, pmos.y1),
            )
        )

    # Source/drain contact columns between and outside the gates.
    out_rect = None
    for i in range(n + 1):
        cx = t.pitch / 2 + i * t.pitch
        for strip in (nmos, pmos):
            cy = (strip.y0 + strip.y1) / 2
            cell.add_rect(Layers.CONTACT, Rect.from_center(cx, cy, t.contact, t.contact))
            stub = Rect.from_center(
                cx, cy, t.contact + 2 * t.metal_enclosure, t.contact + 2 * t.metal_enclosure
            )
            cell.add_rect(Layers.METAL1, stub)
            if i == n and strip is nmos:
                out_rect = stub

    # Output pin: the drain stub on the last source/drain column.
    pins[output_pin] = Pin(output_pin, "output", out_rect)

    return GeneratedLayout(
        cell=cell, transistors=transistors, pins=pins, width=width, height=t.height
    )
