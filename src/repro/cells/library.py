"""The standard-cell library of the reproduction.

Builds the cell set used by the benchmark circuits — inverters, buffers,
NAND/NOR gates, AOI/OAI complex gates, XOR/XNOR, and a D flip-flop — each
with generated layout, transistor networks, and boolean functions.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.cells.generator import generate_cell_layout
from repro.cells.stdcell import StandardCell
from repro.pdk import Technology


class CellLibrary:
    """A named collection of :class:`StandardCell` s for one technology."""

    def __init__(self, tech: Technology):
        self.tech = tech
        self.cells: Dict[str, StandardCell] = {}

    def add(self, cell: StandardCell) -> StandardCell:
        if cell.name in self.cells:
            raise ValueError(f"cell {cell.name!r} already in library")
        self.cells[cell.name] = cell
        return cell

    def __getitem__(self, name: str) -> StandardCell:
        if name not in self.cells:
            raise KeyError(f"no cell {name!r}; available: {sorted(self.cells)}")
        return self.cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __iter__(self):
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    def names(self) -> List[str]:
        return sorted(self.cells)

    def combinational(self) -> List[StandardCell]:
        return [c for c in self.cells.values() if not c.is_sequential]


def _make_cell(
    library: CellLibrary,
    name: str,
    kind: str,
    inputs: Sequence[str],
    stripe_pins: Sequence[str],
    function: Callable[[Mapping[str, bool]], bool],
    pd_branches: Sequence[Sequence[int]],
    pu_branches: Sequence[Sequence[int]],
    drive: int,
    output: str = "Z",
    clock: Optional[str] = None,
    is_sequential: bool = False,
) -> StandardCell:
    generated = generate_cell_layout(
        name=name,
        stripe_pins=stripe_pins,
        drive=drive,
        tech=library.tech,
        input_pins=list(inputs),
        output_pin=output,
        clock_pin=clock or "",
    )
    cell = StandardCell(
        name=name,
        kind=kind,
        inputs=list(inputs),
        output=output,
        function=function,
        layout=generated.cell,
        transistors=generated.transistors,
        pins=generated.pins,
        pull_down_branches=[[f"MN{i}" for i in branch] for branch in pd_branches],
        pull_up_branches=[[f"MP{i}" for i in branch] for branch in pu_branches],
        width=generated.width,
        height=generated.height,
        drive=drive,
        clock=clock,
        is_sequential=is_sequential,
    )
    return library.add(cell)


def build_library(tech: Technology, drives: Sequence[int] = (1, 2)) -> CellLibrary:
    """Construct the full library for ``tech`` at the given drive strengths."""
    lib = CellLibrary(tech)
    for x in drives:
        _make_cell(
            lib, f"INV_X{x}", "inv", ["A"], ["A"],
            lambda v: not v["A"],
            pd_branches=[[0]], pu_branches=[[0]], drive=x,
        )
        _make_cell(
            lib, f"BUF_X{x}", "buf", ["A"], ["A", "zint"],
            lambda v: v["A"],
            pd_branches=[[1]], pu_branches=[[1]], drive=x,
        )
        _make_cell(
            lib, f"NAND2_X{x}", "nand", ["A", "B"], ["A", "B"],
            lambda v: not (v["A"] and v["B"]),
            pd_branches=[[0, 1]], pu_branches=[[0], [1]], drive=x,
        )
        _make_cell(
            lib, f"NAND3_X{x}", "nand", ["A", "B", "C"], ["A", "B", "C"],
            lambda v: not (v["A"] and v["B"] and v["C"]),
            pd_branches=[[0, 1, 2]], pu_branches=[[0], [1], [2]], drive=x,
        )
        _make_cell(
            lib, f"NOR2_X{x}", "nor", ["A", "B"], ["A", "B"],
            lambda v: not (v["A"] or v["B"]),
            pd_branches=[[0], [1]], pu_branches=[[0, 1]], drive=x,
        )
        _make_cell(
            lib, f"NOR3_X{x}", "nor", ["A", "B", "C"], ["A", "B", "C"],
            lambda v: not (v["A"] or v["B"] or v["C"]),
            pd_branches=[[0], [1], [2]], pu_branches=[[0, 1, 2]], drive=x,
        )
        _make_cell(
            lib, f"AOI21_X{x}", "aoi", ["A1", "A2", "B"], ["A1", "A2", "B"],
            lambda v: not ((v["A1"] and v["A2"]) or v["B"]),
            pd_branches=[[0, 1], [2]], pu_branches=[[0, 2], [1, 2]], drive=x,
        )
        _make_cell(
            lib, f"OAI21_X{x}", "oai", ["A1", "A2", "B"], ["A1", "A2", "B"],
            lambda v: not ((v["A1"] or v["A2"]) and v["B"]),
            pd_branches=[[0, 2], [1, 2]], pu_branches=[[0, 1], [2]], drive=x,
        )
        _make_cell(
            lib, f"XOR2_X{x}", "xor", ["A", "B"],
            ["A", "B", "A", "B", "a_n", "b_n"],
            lambda v: v["A"] != v["B"],
            pd_branches=[[2, 3], [4, 5]], pu_branches=[[2, 5], [4, 3]], drive=x,
        )
        _make_cell(
            lib, f"XNOR2_X{x}", "xnor", ["A", "B"],
            ["A", "B", "A", "B", "a_n", "b_n"],
            lambda v: v["A"] == v["B"],
            pd_branches=[[2, 5], [4, 3]], pu_branches=[[2, 3], [4, 5]], drive=x,
        )
        _make_cell(
            lib, f"DFF_X{x}", "dff", ["D"],
            ["D", "CK", "ck_n", "m1", "m2", "s1", "s2", "q_int"],
            lambda v: v["D"],
            pd_branches=[[7]], pu_branches=[[7]], drive=x,
            output="Q", clock="CK", is_sequential=True,
        )
    return lib
