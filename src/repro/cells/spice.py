"""Transistor-level SPICE (CDL-style) emission for standard cells.

Writes each cell as a ``.subckt`` whose MOSFETs carry the drawn W/L — or,
given a set of extracted equivalent lengths, the *printed* dimensions.
This is the artifact a designer would drop into HSPICE to double-check a
back-annotated path, closing the loop the paper describes ("actual CD
values, to be used in timing analysis and speed path characterization").
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cells.stdcell import StandardCell


def write_spice_subckt(
    cell: StandardCell,
    length_overrides: Optional[Mapping[str, float]] = None,
    nmos_model: str = "nch",
    pmos_model: str = "pch",
) -> str:
    """Render one cell as a SPICE subcircuit.

    ``length_overrides`` maps transistor names to printed gate lengths in
    nm (e.g. the drive ELs extracted by the flow).
    """
    overrides = length_overrides or {}
    ports = list(cell.inputs)
    if cell.clock:
        ports.append(cell.clock)
    ports.append(cell.output)
    lines = [
        f"* {cell.name} ({cell.kind}, drive X{cell.drive})",
        f".subckt {cell.name} {' '.join(ports)} VDD VSS",
    ]
    for t in cell.transistors:
        length = overrides.get(t.name, t.length)
        model = nmos_model if t.mos_type == "n" else pmos_model
        bulk = "VSS" if t.mos_type == "n" else "VDD"
        rail = "VSS" if t.mos_type == "n" else "VDD"
        # Internal series nodes are approximated: each device drains to the
        # output and sources to its rail unless it is mid-stack.
        gate_node = t.gate_pin if (t.gate_pin in ports) else f"int_{t.gate_pin}"
        lines.append(
            f"M{t.name} {cell.output} {gate_node} {rail} {bulk} {model} "
            f"W={t.width:.0f}n L={length:.1f}n"
        )
    lines.append(f".ends {cell.name}")
    return "\n".join(lines) + "\n"


def write_spice_library(cells, length_overrides=None) -> str:
    """All cells of a library as one SPICE deck."""
    decks = [write_spice_subckt(cell, (length_overrides or {}).get(cell.name))
             for cell in cells]
    return "\n".join(decks)
