"""Standard-cell data model.

A :class:`StandardCell` couples three views of the same cell:

* the *logical* view (pins, boolean function),
* the *electrical* view (transistors plus the series/parallel topology of
  the pull-up and pull-down networks),
* the *physical* view (a generated layout :class:`~repro.gds.Cell`).

The physical-electrical link is the heart of this reproduction: every
:class:`Transistor` records its gate rectangle in cell coordinates, which is
where the post-OPC flow measures the printed critical dimension that is then
back-annotated into timing through :meth:`StandardCell.network_strength`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.gds import Cell
from repro.geometry import Rect


@dataclass(frozen=True)
class Pin:
    """A logical pin with its physical access geometry."""

    name: str
    direction: str  # "input" | "output" | "clock"
    shape: Rect

    def __post_init__(self):
        if self.direction not in ("input", "output", "clock"):
            raise ValueError(f"bad pin direction {self.direction!r}")


@dataclass(frozen=True)
class Transistor:
    """One MOSFET of a cell, with its gate region in cell coordinates."""

    name: str
    mos_type: str  # "n" | "p"
    gate_pin: str
    width: float
    length: float
    gate_rect: Rect

    def __post_init__(self):
        if self.mos_type not in ("n", "p"):
            raise ValueError(f"bad mos_type {self.mos_type!r}")
        if self.width <= 0 or self.length <= 0:
            raise ValueError("transistor dimensions must be positive")

    @property
    def wl_ratio(self) -> float:
        return self.width / self.length


@dataclass
class StandardCell:
    """A library cell: logic + transistor networks + generated layout.

    ``pull_down_branches`` / ``pull_up_branches`` describe the switching
    networks as lists of series chains: each branch is a list of transistor
    names connected in series; the branches are in parallel.  A
    parallel-inside-series network (e.g. the AOI21 pull-up) is expressed by
    enumerating one branch per series path.
    """

    name: str
    kind: str
    inputs: List[str]
    output: str
    function: Callable[[Mapping[str, bool]], bool]
    layout: Cell
    transistors: List[Transistor]
    pins: Dict[str, Pin]
    pull_down_branches: List[List[str]]
    pull_up_branches: List[List[str]]
    width: float
    height: float
    drive: int = 1
    clock: Optional[str] = None
    is_sequential: bool = False

    def __post_init__(self):
        by_name = {t.name: t for t in self.transistors}
        for branch in self.pull_down_branches + self.pull_up_branches:
            for device in branch:
                if device not in by_name:
                    raise ValueError(f"branch references unknown transistor {device!r}")
        self._by_name = by_name

    def evaluate(self, values: Mapping[str, bool]) -> bool:
        """Evaluate the cell's boolean function on named input values."""
        missing = [pin for pin in self.inputs if pin not in values]
        if missing:
            raise KeyError(f"missing input values for {missing} of {self.name}")
        return bool(self.function(values))

    # -- electrical summaries used by timing characterization ---------------

    def transistor(self, name: str) -> Transistor:
        return self._by_name[name]

    def transistors_on_pin(self, pin: str) -> List[Transistor]:
        return [t for t in self.transistors if t.gate_pin == pin]

    def input_capacitance(self, pin: str, cox_af_per_nm2: float) -> float:
        """Gate capacitance seen at ``pin`` in femtofarads."""
        attos = sum(t.width * t.length * cox_af_per_nm2 for t in self.transistors_on_pin(pin))
        return attos / 1000.0

    def network_strength(
        self,
        mos_type: str,
        dimension_overrides: Optional[Mapping[str, Tuple[float, float]]] = None,
    ) -> float:
        """Worst-case equivalent W/L of the pull-up ("p") or pull-down ("n").

        Series devices in a branch combine harmonically (conductances in
        series); the worst case over parallel branches is the *weakest*
        branch, because a single switching input conducts through exactly
        one series path.  ``dimension_overrides`` maps transistor name to a
        ``(width, length)`` pair — this is how post-OPC extracted CDs derate
        an instance without re-characterizing the library.
        """
        branches = self.pull_down_branches if mos_type == "n" else self.pull_up_branches
        if not branches:
            raise ValueError(f"cell {self.name} has no {mos_type!r} network")
        overrides = dimension_overrides or {}
        strengths = []
        for branch in branches:
            resistance = 0.0
            for device in branch:
                t = self._by_name[device]
                width, length = overrides.get(device, (t.width, t.length))
                resistance += length / width
            strengths.append(1.0 / resistance)
        return min(strengths)

    def gate_rects(self) -> Dict[str, Rect]:
        """Gate regions by transistor name, in cell coordinates."""
        return {t.name: t.gate_rect for t in self.transistors}

    @property
    def area(self) -> float:
        return self.width * self.height


def unate_inputs(cell: StandardCell) -> Dict[str, str]:
    """Classify each input as 'positive', 'negative', 'non-unate' or
    'independent' by exhaustive evaluation of the cell function."""
    result: Dict[str, str] = {}
    n = len(cell.inputs)
    for i, pin in enumerate(cell.inputs):
        rises = falls = False
        for bits in range(1 << (n - 1)):
            values = {}
            k = 0
            for j, name in enumerate(cell.inputs):
                if j == i:
                    continue
                values[name] = bool((bits >> k) & 1)
                k += 1
            lo = cell.evaluate({**values, pin: False})
            hi = cell.evaluate({**values, pin: True})
            if lo != hi:
                if hi:
                    rises = True
                else:
                    falls = True
        if rises and falls:
            result[pin] = "non-unate"
        elif rises:
            result[pin] = "positive"
        elif falls:
            result[pin] = "negative"
        else:
            result[pin] = "independent"
    return result
