"""Gate-level netlists and benchmark circuit generators."""

from repro.circuits.netlist import Gate, Netlist
from repro.circuits.bench import C17_BENCH, parse_bench, write_bench
from repro.circuits.verilog import parse_verilog, write_verilog
from repro.circuits.testchip import testchip
from repro.circuits.fabric import structured_asic
from repro.circuits.generators import (
    array_multiplier,
    kogge_stone_adder,
    c17,
    carry_select_adder,
    inverter_chain,
    random_logic,
    ripple_carry_adder,
)

__all__ = [
    "Gate",
    "Netlist",
    "C17_BENCH",
    "parse_bench",
    "write_bench",
    "inverter_chain",
    "ripple_carry_adder",
    "carry_select_adder",
    "array_multiplier",
    "random_logic",
    "c17",
    "kogge_stone_adder",
    "parse_verilog",
    "write_verilog",
    "testchip",
    "structured_asic",
]
