"""ISCAS-85 ``.bench`` format support.

The .bench format is the lingua franca of the classic combinational
benchmark suites (c17, c432, ...).  The parser maps .bench primitives onto
the library: inverting gates map directly, non-inverting AND/OR expand into
their inverting counterpart plus an inverter, and gates wider than the
library's 3 inputs are decomposed into trees.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Tuple

from repro.cells import CellLibrary
from repro.circuits.netlist import Netlist, NetlistError

#: The ISCAS-85 c17 benchmark, verbatim.
C17_BENCH = """\
# c17 iscas example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""

_LINE = re.compile(r"^\s*(\S+)\s*=\s*(\w+)\s*\(([^)]*)\)\s*$")
_IO = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)\s*$")


def parse_bench(text: str, library: CellLibrary, name: str = "bench",
                drive: int = 1) -> Netlist:
    """Parse .bench ``text`` into a :class:`Netlist` mapped onto ``library``."""
    netlist = Netlist(name)
    statements: List[Tuple[str, str, List[str]]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO.match(line)
        if io_match:
            kind, net = io_match.groups()
            if kind == "INPUT":
                netlist.add_input(_net(net))
            else:
                netlist.add_output(_net(net))
            continue
        gate_match = _LINE.match(line)
        if not gate_match:
            raise NetlistError(f"cannot parse .bench line: {raw!r}")
        out, func, arg_text = gate_match.groups()
        args = [_net(a.strip()) for a in arg_text.split(",") if a.strip()]
        statements.append((_net(out), func.upper(), args))

    builder = _BenchBuilder(netlist, library, drive)
    for out, func, args in statements:
        builder.emit(out, func, args)
    netlist.validate(library)
    return netlist


def write_bench(netlist: Netlist, library: CellLibrary) -> str:
    """Serialise a netlist of simple gates back to .bench text.

    Only cells with a direct .bench equivalent are supported (INV, BUF,
    NAND, NOR, XOR, XNOR).
    """
    kind_to_func = {"inv": "NOT", "buf": "BUFF", "nand": "NAND", "nor": "NOR",
                    "xor": "XOR", "xnor": "XNOR"}
    lines = [f"# {netlist.name}"]
    lines.extend(f"INPUT({net})" for net in netlist.inputs)
    lines.extend(f"OUTPUT({net})" for net in netlist.outputs)
    for gate in netlist.gates.values():
        cell = library[gate.cell_name]
        if cell.kind not in kind_to_func:
            raise NetlistError(f"cell kind {cell.kind!r} has no .bench equivalent")
        args = ", ".join(gate.connections[pin] for pin in cell.inputs)
        lines.append(f"{gate.connections[cell.output]} = {kind_to_func[cell.kind]}({args})")
    return "\n".join(lines) + "\n"


def _net(token: str) -> str:
    """Normalise a .bench signal token to a safe net name."""
    return f"n{token}" if token.isdigit() else token


class _BenchBuilder:
    """Expands .bench primitives into library gates."""

    def __init__(self, netlist: Netlist, library: CellLibrary, drive: int):
        self.netlist = netlist
        self.library = library
        self.drive = drive
        self._counter = 0

    def _fresh(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}__w{self._counter}"

    def _gate(self, cell_base: str, out: str, pins: Dict[str, str]) -> None:
        cell_name = f"{cell_base}_X{self.drive}"
        cell = self.library[cell_name]
        connections = dict(pins)
        connections[cell.output] = out
        self.netlist.add_gate(f"g_{out}", cell_name, connections)

    def emit(self, out: str, func: str, args: Sequence[str]) -> None:
        if func in ("NOT", "INV"):
            self._require_args(func, args, 1)
            self._gate("INV", out, {"A": args[0]})
        elif func in ("BUF", "BUFF"):
            self._require_args(func, args, 1)
            self._gate("BUF", out, {"A": args[0]})
        elif func == "NAND":
            self._inverting_tree("NAND", out, list(args))
        elif func == "NOR":
            self._inverting_tree("NOR", out, list(args))
        elif func == "AND":
            inner = self._fresh(out)
            self._inverting_tree("NAND", inner, list(args))
            self._gate("INV", out, {"A": inner})
        elif func == "OR":
            inner = self._fresh(out)
            self._inverting_tree("NOR", inner, list(args))
            self._gate("INV", out, {"A": inner})
        elif func == "XOR":
            self._xor_tree("XOR2", out, list(args))
        elif func == "XNOR":
            self._require_args(func, args, 2)
            self._gate("XNOR2", out, {"A": args[0], "B": args[1]})
        else:
            raise NetlistError(f"unsupported .bench function {func!r}")

    def _require_args(self, func: str, args: Sequence[str], n: int) -> None:
        if len(args) != n:
            raise NetlistError(f"{func} expects {n} args, got {len(args)}")

    def _inverting_tree(self, base: str, out: str, args: List[str]) -> None:
        """NAND/NOR of any width via 2/3-input cells plus De Morgan stages.

        NAND(a,b,c,d) = NAND(AND(a,b,..), ...) is built as a tree of the
        non-inverted reduction with a final inverting gate.
        """
        if len(args) == 1:
            self._gate("INV", out, {"A": args[0]})
            return
        if len(args) == 2:
            self._gate(f"{base}2", out, {"A": args[0], "B": args[1]})
            return
        if len(args) == 3:
            self._gate(f"{base}3", out, {"A": args[0], "B": args[1], "C": args[2]})
            return
        # Reduce the first three inputs: x = INV(BASE3(a,b,c)) gives AND/OR.
        head = self._fresh(out)
        head_pos = self._fresh(out)
        self._gate(f"{base}3", head, {"A": args[0], "B": args[1], "C": args[2]})
        self._gate("INV", head_pos, {"A": head})
        self._inverting_tree(base, out, [head_pos] + args[3:])

    def _xor_tree(self, base: str, out: str, args: List[str]) -> None:
        if len(args) == 1:
            self._gate("BUF", out, {"A": args[0]})
            return
        if len(args) == 2:
            self._gate(base, out, {"A": args[0], "B": args[1]})
            return
        inner = self._fresh(out)
        self._gate(base, inner, {"A": args[0], "B": args[1]})
        self._xor_tree(base, out, [inner] + args[2:])
