"""Structured-ASIC fabric generator.

The scale vehicles for the post-OPC flow: a seeded, size-parameterized
registered pipeline in the shape of a structured-ASIC logic fabric —
an input register bank, ``n_stages`` combinational stages built from
local-connectivity clusters (with a few cross-cluster links for
reconvergent fanout), and a register bank between stages.  Construction
is purely feed-forward inside each stage, so the netlist is acyclic by
construction and fully deterministic for a given parameter set.

Register banks matter for the incremental-STA story: they bound the
fan-out cones of per-gate CD updates, which is what makes cone-limited
re-timing cheap on multi-thousand-gate designs.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.circuits.netlist import Netlist

#: (cell base name, pin list) with selection weights: the mix leans on the
#: 2-input cells like the related repos' mapped fabrics do.
_CELL_MIX = (
    ("INV", ("A",), 1.0),
    ("BUF", ("A",), 0.5),
    ("NAND2", ("A", "B"), 2.5),
    ("NOR2", ("A", "B"), 2.5),
    ("XOR2", ("A", "B"), 1.5),
    ("XNOR2", ("A", "B"), 1.0),
    ("NAND3", ("A", "B", "C"), 1.0),
    ("NOR3", ("A", "B", "C"), 1.0),
    ("AOI21", ("A1", "A2", "B"), 1.0),
    ("OAI21", ("A1", "A2", "B"), 1.0),
)
_MIX_TOTAL = sum(w for _, _, w in _CELL_MIX)


def _pick_cell(rng: random.Random) -> tuple:
    shot = rng.uniform(0.0, _MIX_TOTAL)
    acc = 0.0
    for base, pins, weight in _CELL_MIX:
        acc += weight
        if shot <= acc:
            return base, pins
    return _CELL_MIX[-1][:2]


def structured_asic(
    n_gates: int,
    n_inputs: int = 16,
    n_stages: Optional[int] = None,
    cluster_size: int = 24,
    bank_width: Optional[int] = None,
    seed: int = 1,
    drive: int = 1,
    name: Optional[str] = None,
) -> Netlist:
    """A seeded structured-ASIC-style pipeline with exactly ``n_gates``
    instances (register banks included).

    ``n_stages`` defaults to one pipeline stage per ~300 combinational
    gates (at least 4): large fabrics are deeper, not just wider, which
    keeps each stage's logic — and therefore the register-bounded cone of
    an incremental re-time — roughly constant as designs grow.
    ``bank_width`` is the register count per pipeline bank; by default it
    grows with the design (~4% flops) but never below ``n_inputs``.
    Combinational gates are grouped into clusters of ``cluster_size`` that
    draw mostly on nets created inside the same cluster (placement
    locality), with occasional links to earlier clusters in the same
    stage (reconvergent fanout across cluster boundaries).
    """
    if n_gates < 1:
        raise ValueError("fabric needs at least 1 gate")
    if n_stages is None:
        n_stages = max(4, n_gates // 300)
    if n_inputs < 4 or n_stages < 1 or cluster_size < 2:
        # >= 4 inputs keeps every sampling pool larger than the widest
        # cell's pin count (3), so connections stay distinct.
        raise ValueError("need n_inputs >= 4, n_stages >= 1, cluster_size >= 2")
    if bank_width is None:
        bank_width = max(n_inputs, n_gates // (25 * (n_stages + 1)))
    flops = (n_stages + 1) * bank_width
    comb_budget = n_gates - flops
    if comb_budget < n_stages:
        raise ValueError(
            f"n_gates={n_gates} leaves no combinational budget: "
            f"{n_stages + 1} banks x {bank_width} flops need {flops} gates"
        )

    rng = random.Random(seed)
    netlist = Netlist(name or f"fab{n_gates}")
    netlist.add_input("ck")
    for i in range(n_inputs):
        netlist.add_input(f"in{i}")

    def register_bank(bank: int, d_nets: List[str]) -> List[str]:
        q_nets = []
        for i, d_net in enumerate(d_nets):
            q = f"b{bank}_q{i}"
            netlist.add_gate(f"b{bank}_ff{i}", f"DFF_X{drive}",
                             {"D": d_net, "CK": "ck", "Q": q})
            q_nets.append(q)
        return q_nets

    # Input bank: primary inputs cycled across the bank width.
    stage_inputs = register_bank(
        0, [f"in{i % n_inputs}" for i in range(bank_width)])

    counter = 0
    for stage in range(n_stages):
        # Spread the remaining budget evenly over the remaining stages.
        stage_budget = comb_budget // (n_stages - stage)
        comb_budget -= stage_budget
        capture: List[str] = []  # candidate D nets for the next bank
        built = 0
        cluster = 0
        prior_outputs: List[str] = []  # cross-cluster link candidates
        while built < stage_budget:
            size = min(cluster_size, stage_budget - built)
            local = rng.sample(stage_inputs, min(6, len(stage_inputs)))
            if prior_outputs:  # reconvergence across clusters
                local += rng.sample(prior_outputs,
                                    min(2, len(prior_outputs)))
            for _ in range(size):
                base, pins = _pick_cell(rng)
                out = f"s{stage}_w{counter}"
                counter += 1
                pool = local if len(local) >= len(pins) else stage_inputs
                conns = dict(zip(pins, rng.sample(pool, len(pins))))
                conns["Z"] = out
                netlist.add_gate(f"s{stage}_c{cluster}_g{built}",
                                 f"{base}_X{drive}", conns)
                local.append(out)
                built += 1
            capture.append(local[-1])  # deepest net of the cluster
            prior_outputs.extend(local[-3:])
            cluster += 1
        # Next bank captures cluster outputs, cycled to fill the width.
        stage_inputs = register_bank(
            stage + 1, [capture[i % len(capture)] for i in range(bank_width)])

    for q_net in stage_inputs:
        netlist.add_output(q_net)
    return netlist
