"""Benchmark circuit generators.

These synthesize the gate-level designs the evaluation runs on: an inverter
chain (litho/timing calibration), ripple-carry and carry-select adders (the
classic speed-path workloads), an array multiplier (large, deep design), the
ISCAS-85 c17, and seeded random logic.
"""

from __future__ import annotations

import random
from typing import List

from repro.cells import CellLibrary
from repro.circuits.bench import C17_BENCH, parse_bench
from repro.circuits.netlist import Netlist


def inverter_chain(length: int, drive: int = 1, name: str = "invchain") -> Netlist:
    """A chain of ``length`` inverters from net in0 to net out."""
    if length < 1:
        raise ValueError("chain length must be >= 1")
    netlist = Netlist(name)
    netlist.add_input("in0")
    prev = "in0"
    for i in range(length):
        out = "out" if i == length - 1 else f"w{i}"
        netlist.add_gate(f"inv{i}", f"INV_X{drive}", {"A": prev, "Z": out})
        prev = out
    netlist.add_output("out")
    return netlist


def _full_adder(netlist: Netlist, a: str, b: str, cin: str, s: str, cout: str,
                prefix: str, drive: int) -> None:
    """Sum = a^b^cin; cout = NAND(NAND(a,b), NAND(a^b, cin))."""
    x1 = f"{prefix}_x1"
    n1 = f"{prefix}_n1"
    n2 = f"{prefix}_n2"
    netlist.add_gate(f"{prefix}_gx1", f"XOR2_X{drive}", {"A": a, "B": b, "Z": x1})
    netlist.add_gate(f"{prefix}_gs", f"XOR2_X{drive}", {"A": x1, "B": cin, "Z": s})
    netlist.add_gate(f"{prefix}_gn1", f"NAND2_X{drive}", {"A": a, "B": b, "Z": n1})
    netlist.add_gate(f"{prefix}_gn2", f"NAND2_X{drive}", {"A": x1, "B": cin, "Z": n2})
    netlist.add_gate(f"{prefix}_gco", f"NAND2_X{drive}", {"A": n1, "B": n2, "Z": cout})


def ripple_carry_adder(bits: int, drive: int = 1, name: str = "rca") -> Netlist:
    """A ``bits``-wide ripple-carry adder: a[i] + b[i] + cin -> s[i], cout."""
    if bits < 1:
        raise ValueError("adder needs at least 1 bit")
    netlist = Netlist(f"{name}{bits}")
    for i in range(bits):
        netlist.add_input(f"a{i}")
        netlist.add_input(f"b{i}")
    netlist.add_input("cin")
    carry = "cin"
    for i in range(bits):
        cout = "cout" if i == bits - 1 else f"c{i}"
        _full_adder(netlist, f"a{i}", f"b{i}", carry, f"s{i}", cout, f"fa{i}", drive)
        netlist.add_output(f"s{i}")
        carry = cout
    netlist.add_output("cout")
    return netlist


def _mux2(netlist: Netlist, sel: str, d0: str, d1: str, out: str, prefix: str,
          drive: int) -> None:
    """out = d1 if sel else d0, as NAND(NAND(d0, !sel), NAND(d1, sel))."""
    sel_n = f"{prefix}_seln"
    m0 = f"{prefix}_m0"
    m1 = f"{prefix}_m1"
    netlist.add_gate(f"{prefix}_gi", f"INV_X{drive}", {"A": sel, "Z": sel_n})
    netlist.add_gate(f"{prefix}_g0", f"NAND2_X{drive}", {"A": d0, "B": sel_n, "Z": m0})
    netlist.add_gate(f"{prefix}_g1", f"NAND2_X{drive}", {"A": d1, "B": sel, "Z": m1})
    netlist.add_gate(f"{prefix}_gm", f"NAND2_X{drive}", {"A": m0, "B": m1, "Z": out})


def carry_select_adder(bits: int, block: int = 4, drive: int = 1,
                       name: str = "csa") -> Netlist:
    """A carry-select adder: per block, compute both carry assumptions and
    select with the incoming carry."""
    if bits < 1 or block < 1:
        raise ValueError("bits and block must be >= 1")
    netlist = Netlist(f"{name}{bits}")
    for i in range(bits):
        netlist.add_input(f"a{i}")
        netlist.add_input(f"b{i}")
    netlist.add_input("cin")

    carry = "cin"
    bit = 0
    blk = 0
    while bit < bits:
        size = min(block, bits - bit)
        if blk == 0:
            # First block: plain ripple, the carry-in is primary.
            for j in range(bit, bit + size):
                cout = f"c{j}"
                _full_adder(netlist, f"a{j}", f"b{j}", carry, f"s{j}", cout,
                            f"b0_fa{j}", drive)
                netlist.add_output(f"s{j}")
                carry = cout
        else:
            # Two speculative ripples (cin=0 via constant from a&!a is
            # avoided: instead both chains start from the two mux legs).
            c0 = f"blk{blk}_zero"
            c1 = f"blk{blk}_one"
            # Constant 0 = NOR(x, !x), constant 1 = NAND(x, !x) on a0.
            base = f"blk{blk}"
            netlist.add_gate(f"{base}_ci", f"INV_X{drive}", {"A": "a0", "Z": f"{base}_a0n"})
            netlist.add_gate(f"{base}_g0", f"NOR2_X{drive}",
                             {"A": "a0", "B": f"{base}_a0n", "Z": c0})
            netlist.add_gate(f"{base}_g1", f"NAND2_X{drive}",
                             {"A": "a0", "B": f"{base}_a0n", "Z": c1})
            carry0, carry1 = c0, c1
            for j in range(bit, bit + size):
                s0, s1 = f"{base}_s0_{j}", f"{base}_s1_{j}"
                n0, n1 = f"{base}_c0_{j}", f"{base}_c1_{j}"
                _full_adder(netlist, f"a{j}", f"b{j}", carry0, s0, n0,
                            f"{base}_fa0_{j}", drive)
                _full_adder(netlist, f"a{j}", f"b{j}", carry1, s1, n1,
                            f"{base}_fa1_{j}", drive)
                _mux2(netlist, carry, s0, s1, f"s{j}", f"{base}_muxs{j}", drive)
                netlist.add_output(f"s{j}")
                carry0, carry1 = n0, n1
            new_carry = f"c{bit + size - 1}"
            _mux2(netlist, carry, carry0, carry1, new_carry, f"{base}_muxc", drive)
            carry = new_carry
        bit += size
        blk += 1
    netlist.add_gate("gcout", f"BUF_X{drive}", {"A": carry, "Z": "cout"})
    netlist.add_output("cout")
    return netlist


def array_multiplier(bits: int, drive: int = 1, name: str = "mult") -> Netlist:
    """An unsigned ``bits`` x ``bits`` schoolbook array multiplier.

    Partial-product rows are accumulated with ripple chains; the critical
    path snakes through the adder array, giving the deep, reconvergent
    timing structure the evaluation wants.
    """
    if bits < 2:
        raise ValueError("multiplier needs at least 2 bits")
    netlist = Netlist(f"{name}{bits}")
    for i in range(bits):
        netlist.add_input(f"a{i}")
        netlist.add_input(f"b{i}")

    def partial(i: int, j: int) -> str:
        """pp = a_i AND b_j = INV(NAND(a_i, b_j))."""
        nname = f"pp_n_{i}_{j}"
        pname = f"pp_{i}_{j}"
        netlist.add_gate(f"gppn_{i}_{j}", f"NAND2_X{drive}",
                         {"A": f"a{i}", "B": f"b{j}", "Z": nname})
        netlist.add_gate(f"gpp_{i}_{j}", f"INV_X{drive}", {"A": nname, "Z": pname})
        return pname

    def half_adder(a: str, b: str, s: str, c: str, prefix: str) -> None:
        netlist.add_gate(f"{prefix}_gx", f"XOR2_X{drive}", {"A": a, "B": b, "Z": s})
        nn = f"{prefix}_nn"
        netlist.add_gate(f"{prefix}_gn", f"NAND2_X{drive}", {"A": a, "B": b, "Z": nn})
        netlist.add_gate(f"{prefix}_gc", f"INV_X{drive}", {"A": nn, "Z": c})

    # acc[k] is bit k of the accumulated product so far.
    acc: List[str] = [partial(i, 0) for i in range(bits)]
    for j in range(1, bits):
        row = [partial(i, j) for i in range(bits)]
        carry = ""
        for i in range(bits):
            pos = j + i
            s = f"s_{j}_{pos}"
            c = f"c_{j}_{pos}"
            if pos < len(acc):
                if carry:
                    _full_adder(netlist, acc[pos], row[i], carry, s, c,
                                f"fa_{j}_{pos}", drive)
                else:
                    half_adder(acc[pos], row[i], s, c, f"ha_{j}_{pos}")
                acc[pos] = s
            else:
                if carry:
                    half_adder(row[i], carry, s, c, f"ha_{j}_{pos}")
                    acc.append(s)
                else:
                    acc.append(row[i])
                    carry = ""
                    continue
            carry = c
        if carry:
            acc.append(carry)

    for k, net in enumerate(acc):
        netlist.add_gate(f"gp{k}", f"BUF_X{drive}", {"A": net, "Z": f"p{k}"})
        netlist.add_output(f"p{k}")
    return netlist


def kogge_stone_adder(bits: int, drive: int = 1, name: str = "ksa") -> Netlist:
    """A Kogge-Stone parallel-prefix adder.

    Logarithmic depth with heavy fanout on the prefix tree — the opposite
    timing structure to the ripple-carry adder, and a classic fanout
    stressor for the STA engine.
    """
    if bits < 2:
        raise ValueError("prefix adder needs at least 2 bits")
    netlist = Netlist(f"{name}{bits}")
    for i in range(bits):
        netlist.add_input(f"a{i}")
        netlist.add_input(f"b{i}")

    generate: List[str] = []
    propagate: List[str] = []
    for i in range(bits):
        g = f"g0_{i}"
        p = f"p0_{i}"
        gn = f"g0n_{i}"
        netlist.add_gate(f"gg_{i}", f"NAND2_X{drive}",
                         {"A": f"a{i}", "B": f"b{i}", "Z": gn})
        netlist.add_gate(f"gi_{i}", f"INV_X{drive}", {"A": gn, "Z": g})
        netlist.add_gate(f"gp_{i}", f"XOR2_X{drive}",
                         {"A": f"a{i}", "B": f"b{i}", "Z": p})
        generate.append(g)
        propagate.append(p)

    # Prefix tree: (g, p) o (g', p') = (g + p g', p p').
    level = 1
    stage = 0
    while level < bits:
        new_g = list(generate)
        new_p = list(propagate)
        for i in range(level, bits):
            j = i - level
            prefix = f"s{stage}_{i}"
            # g_new = g_i OR (p_i AND g_j) = NAND(NAND(p_i, g_j), INV(g_i))
            t1 = f"{prefix}_t1"
            t2 = f"{prefix}_t2"
            g_new = f"{prefix}_g"
            netlist.add_gate(f"{prefix}_ga", f"NAND2_X{drive}",
                             {"A": propagate[i], "B": generate[j], "Z": t1})
            netlist.add_gate(f"{prefix}_gb", f"INV_X{drive}",
                             {"A": generate[i], "Z": t2})
            netlist.add_gate(f"{prefix}_gc", f"NAND2_X{drive}",
                             {"A": t1, "B": t2, "Z": g_new})
            new_g[i] = g_new
            if j >= level or i >= 2 * level - 1:
                # p_new = p_i AND p_j (only needed while the span grows).
                t3 = f"{prefix}_t3"
                p_new = f"{prefix}_p"
                netlist.add_gate(f"{prefix}_pa", f"NAND2_X{drive}",
                                 {"A": propagate[i], "B": propagate[j], "Z": t3})
                netlist.add_gate(f"{prefix}_pb", f"INV_X{drive}",
                                 {"A": t3, "Z": p_new})
                new_p[i] = p_new
        generate, propagate = new_g, new_p
        level *= 2
        stage += 1

    # Sums: s_i = p0_i XOR carry_{i-1}; carry_{i-1} = prefix generate of i-1.
    netlist.add_gate("gs0", f"BUF_X{drive}", {"A": "p0_0", "Z": "s0"})
    netlist.add_output("s0")
    for i in range(1, bits):
        netlist.add_gate(f"gs{i}", f"XOR2_X{drive}",
                         {"A": f"p0_{i}", "B": generate[i - 1], "Z": f"s{i}"})
        netlist.add_output(f"s{i}")
    netlist.add_gate("gcout", f"BUF_X{drive}", {"A": generate[bits - 1], "Z": "cout"})
    netlist.add_output("cout")
    return netlist


def random_logic(n_gates: int, n_inputs: int = 8, seed: int = 0,
                 drive: int = 1, name: str = "rand") -> Netlist:
    """A seeded random combinational DAG over the 2-input library cells."""
    if n_gates < 1 or n_inputs < 2:
        raise ValueError("need at least 1 gate and 2 inputs")
    rng = random.Random(seed)
    netlist = Netlist(f"{name}{n_gates}")
    available: List[str] = []
    for i in range(n_inputs):
        netlist.add_input(f"in{i}")
        available.append(f"in{i}")
    two_input = ["NAND2", "NOR2", "XOR2", "XNOR2"]
    one_input = ["INV", "BUF"]
    for g in range(n_gates):
        out = f"w{g}"
        if rng.random() < 0.2:
            base = rng.choice(one_input)
            a = rng.choice(available)
            netlist.add_gate(f"g{g}", f"{base}_X{drive}", {"A": a, "Z": out})
        else:
            base = rng.choice(two_input)
            a, b = rng.sample(available, 2)
            netlist.add_gate(f"g{g}", f"{base}_X{drive}", {"A": a, "B": b, "Z": out})
        available.append(out)
    # Outputs: every net that drives nothing.
    used = set()
    for gate in netlist.gates.values():
        for pin, net in gate.connections.items():
            if pin != "Z":
                used.add(net)
    for g in range(n_gates):
        net = f"w{g}"
        if net not in used:
            netlist.add_output(net)
    return netlist


def c17(library: CellLibrary, drive: int = 1) -> Netlist:
    """The ISCAS-85 c17 benchmark mapped onto the library."""
    return parse_bench(C17_BENCH, library, name="c17", drive=drive)
