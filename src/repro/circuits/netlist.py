"""Gate-level netlist with validation, ordering, and logic simulation.

Nets are plain strings.  Every net has exactly one driver (a primary input
or a gate output) and any number of loads.  Sequential cells (DFFs) break
combinational cycles: their outputs are treated as launch points and their
D pins as capture points, matching how the STA engine sees them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from repro.cells import CellLibrary


@dataclass
class Gate:
    """One placed logic gate: a library cell with pin-to-net bindings."""

    name: str
    cell_name: str
    connections: Dict[str, str]  # pin name -> net name

    def net_on(self, pin: str) -> str:
        if pin not in self.connections:
            raise KeyError(f"gate {self.name} has no connection on pin {pin!r}")
        return self.connections[pin]


class NetlistError(Exception):
    """Structural problem in a netlist (multiple drivers, dangling nets...)."""


@dataclass
class Netlist:
    """A named gate-level netlist."""

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    gates: Dict[str, Gate] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    def add_input(self, net: str) -> str:
        if net in self.inputs:
            raise NetlistError(f"duplicate primary input {net!r}")
        self.inputs.append(net)
        return net

    def add_output(self, net: str) -> str:
        if net in self.outputs:
            raise NetlistError(f"duplicate primary output {net!r}")
        self.outputs.append(net)
        return net

    def add_gate(self, name: str, cell_name: str, connections: Mapping[str, str]) -> Gate:
        if name in self.gates:
            raise NetlistError(f"duplicate gate name {name!r}")
        gate = Gate(name, cell_name, dict(connections))
        self.gates[name] = gate
        return gate

    # -- structure queries ---------------------------------------------------

    def nets(self, library: CellLibrary) -> Set[str]:
        all_nets: Set[str] = set(self.inputs) | set(self.outputs)
        for gate in self.gates.values():
            all_nets.update(gate.connections.values())
        return all_nets

    def driver_of(self, net: str, library: CellLibrary) -> Optional[Gate]:
        """The gate driving ``net``, or None for a primary input."""
        for gate in self.gates.values():
            cell = library[gate.cell_name]
            if gate.connections.get(cell.output) == net:
                return gate
        return None

    def loads_of(self, net: str, library: CellLibrary) -> List[Gate]:
        """Gates with an input (or clock) pin on ``net``."""
        loads = []
        for gate in self.gates.values():
            cell = library[gate.cell_name]
            sink_pins = set(cell.inputs) | ({cell.clock} if cell.clock else set())
            for pin, bound in gate.connections.items():
                if bound == net and pin in sink_pins:
                    loads.append(gate)
                    break
        return loads

    def fanout_count(self, net: str, library: CellLibrary) -> int:
        count = len(self.loads_of(net, library))
        if net in self.outputs:
            count += 1
        return count

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    def validate(self, library: CellLibrary) -> None:
        """Raise NetlistError on structural problems."""
        drivers: Dict[str, str] = {net: "<PI>" for net in self.inputs}
        for gate in self.gates.values():
            cell = library[gate.cell_name]
            expected = set(cell.inputs) | {cell.output} | ({cell.clock} if cell.clock else set())
            bound = set(gate.connections)
            if bound != expected:
                raise NetlistError(
                    f"gate {gate.name} ({cell.name}) pins {sorted(bound)} != {sorted(expected)}"
                )
            out_net = gate.connections[cell.output]
            if out_net in drivers:
                raise NetlistError(
                    f"net {out_net!r} driven by both {drivers[out_net]} and {gate.name}"
                )
            drivers[out_net] = gate.name
        for gate in self.gates.values():
            cell = library[gate.cell_name]
            for pin in cell.inputs:
                net = gate.connections[pin]
                if net not in drivers:
                    raise NetlistError(f"net {net!r} (gate {gate.name}.{pin}) has no driver")
        for net in self.outputs:
            if net not in drivers:
                raise NetlistError(f"primary output {net!r} has no driver")

    # -- ordering and simulation ---------------------------------------------

    def topological_gates(self, library: CellLibrary) -> List[Gate]:
        """Gates in evaluation order.

        Sequential cell outputs are launch points: a DFF is ordered by its
        clock/D availability for *placement* purposes, but its output never
        feeds back a combinational dependency, so cycles through registers
        are legal.
        """
        driver_by_net: Dict[str, Gate] = {}
        for gate in self.gates.values():
            cell = library[gate.cell_name]
            driver_by_net[gate.connections[cell.output]] = gate

        dependents: Dict[str, List[str]] = {g: [] for g in self.gates}
        in_degree: Dict[str, int] = {g: 0 for g in self.gates}
        for gate in self.gates.values():
            cell = library[gate.cell_name]
            if cell.is_sequential:
                continue  # register outputs launch independently
            for pin in cell.inputs:
                driver = driver_by_net.get(gate.connections[pin])
                if driver is not None and not library[driver.cell_name].is_sequential:
                    dependents[driver.name].append(gate.name)
                    in_degree[gate.name] += 1

        # Sequential gates and gates fed only by PIs/registers start ready;
        # registers go first so their Q launches are available before any
        # combinational consumer is evaluated.
        def seed_key(name: str):
            sequential = library[self.gates[name].cell_name].is_sequential
            return (0 if sequential else 1, name)

        queue = deque(sorted((g for g, deg in in_degree.items() if deg == 0),
                             key=seed_key))
        order: List[Gate] = []
        while queue:
            name = queue.popleft()
            order.append(self.gates[name])
            for dep in dependents[name]:
                in_degree[dep] -= 1
                if in_degree[dep] == 0:
                    queue.append(dep)
        if len(order) != len(self.gates):
            raise NetlistError("combinational cycle detected")
        return order

    def simulate(
        self, library: CellLibrary, input_values: Mapping[str, bool],
        register_values: Optional[Mapping[str, bool]] = None,
    ) -> Dict[str, bool]:
        """Evaluate all net values for one input vector.

        ``register_values`` provides the current Q value per sequential gate
        name (default False).
        """
        values: Dict[str, bool] = {}
        for net in self.inputs:
            if net not in input_values:
                raise KeyError(f"no value for primary input {net!r}")
            values[net] = bool(input_values[net])
        registers = register_values or {}
        # Register outputs launch before any combinational evaluation (the
        # topological order does not sequence DFFs ahead of their fanout).
        for gate in self.gates.values():
            cell = library[gate.cell_name]
            if cell.is_sequential:
                values[gate.connections[cell.output]] = bool(registers.get(gate.name, False))
        for gate in self.topological_gates(library):
            cell = library[gate.cell_name]
            if cell.is_sequential:
                continue
            pin_values = {pin: values[gate.connections[pin]] for pin in cell.inputs}
            values[gate.connections[cell.output]] = cell.evaluate(pin_values)
        return values

    def logic_depth(self, library: CellLibrary) -> int:
        """Maximum number of combinational gates on any input-to-output path."""
        depth: Dict[str, int] = {net: 0 for net in self.inputs}
        best = 0
        for gate in self.topological_gates(library):
            cell = library[gate.cell_name]
            if cell.is_sequential:
                depth[gate.connections[cell.output]] = 0
                continue
            level = 1 + max(depth.get(gate.connections[pin], 0) for pin in cell.inputs)
            depth[gate.connections[cell.output]] = level
            best = max(best, level)
        return best

    def cell_usage(self) -> Dict[str, int]:
        usage: Dict[str, int] = {}
        for gate in self.gates.values():
            usage[gate.cell_name] = usage.get(gate.cell_name, 0) + 1
        return usage
