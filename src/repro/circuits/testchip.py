"""A mixed sequential "testchip" generator.

The paper's vehicle was a placed-and-routed full chip: heterogeneous
combinational islands between register banks.  This generator builds a
miniature of that — an input register bank feeding an adder, a multiplier
slice and a random-logic cloud, whose outputs are captured by an output
register bank — so flow experiments exercise register-to-register paths,
clock-to-Q launch, and setup/hold endpoints together.
"""

from __future__ import annotations

from typing import List

from repro.circuits.generators import (
    array_multiplier,
    random_logic,
    ripple_carry_adder,
)
from repro.circuits.netlist import Netlist


def _absorb(target: Netlist, block: Netlist, prefix: str) -> None:
    """Copy a combinational block in, renaming gates and nets."""
    def net(name: str) -> str:
        return f"{prefix}_{name}"

    for gate in block.gates.values():
        target.add_gate(
            f"{prefix}_{gate.name}",
            gate.cell_name,
            {pin: net(n) for pin, n in gate.connections.items()},
        )


def testchip(
    bits: int = 3,
    random_gates: int = 24,
    drive: int = 1,
    name: str = "testchip",
) -> Netlist:
    """Registered adder + multiplier + random-logic islands on one clock.

    Primary interface: ``ck`` plus the adder/multiplier data inputs; each
    data input is registered before use and every island output is captured
    in a register.  Total size scales with ``bits`` and ``random_gates``.
    """
    if bits < 2:
        raise ValueError("testchip needs at least 2 data bits")
    chip = Netlist(name)
    chip.add_input("ck")

    adder = ripple_carry_adder(bits, drive=drive)
    mult = array_multiplier(bits, drive=drive)
    rand = random_logic(random_gates, n_inputs=2 * bits, seed=7, drive=drive)

    # Shared registered data inputs a*/b* feed all three islands.
    for i in range(bits):
        for bus in ("a", "b"):
            pad = f"{bus}{i}"
            chip.add_input(pad)
            chip.add_gate(f"ff_in_{pad}", f"DFF_X{drive}",
                          {"D": pad, "CK": "ck", "Q": f"q_{pad}"})

    def wire_island(block: Netlist, prefix: str, input_map) -> List[str]:
        _absorb(chip, block, prefix)
        for block_input, source in input_map.items():
            chip.add_gate(f"{prefix}_drv_{block_input}", f"BUF_X{drive}",
                          {"A": source, "Z": f"{prefix}_{block_input}"})
        return [f"{prefix}_{out}" for out in block.outputs]

    adder_map = {f"a{i}": f"q_a{i}" for i in range(bits)}
    adder_map.update({f"b{i}": f"q_b{i}" for i in range(bits)})
    adder_map["cin"] = "q_a0"
    adder_outs = wire_island(adder, "add", adder_map)

    mult_map = {f"a{i}": f"q_a{i}" for i in range(bits)}
    mult_map.update({f"b{i}": f"q_b{i}" for i in range(bits)})
    mult_outs = wire_island(mult, "mul", mult_map)

    rand_map = {}
    for i in range(bits):
        rand_map[f"in{2 * i}"] = f"q_a{i}"
        rand_map[f"in{2 * i + 1}"] = f"q_b{i}"
    rand_outs = wire_island(rand, "rnd", rand_map)

    # Capture registers; Q pins become the observable primary outputs.
    for k, out_net in enumerate(adder_outs + mult_outs + rand_outs):
        chip.add_gate(f"ff_out{k}", f"DFF_X{drive}",
                      {"D": out_net, "CK": "ck", "Q": f"out{k}"})
        chip.add_output(f"out{k}")
    return chip
