"""Structural Verilog interchange (gate-level subset).

Writes and reads the flat, named-port structural netlists that EDA tools
exchange:

    module top (a, b, y);
      input a, b;
      output y;
      wire w1;
      NAND2_X1 g1 (.A(a), .B(b), .Z(w1));
      INV_X1 g2 (.A(w1), .Z(y));
    endmodule

Only this subset is supported: one module, scalar nets, named port
connections, library cells.
"""

from __future__ import annotations

import re
from typing import Dict

from repro.cells import CellLibrary
from repro.circuits.netlist import Netlist, NetlistError

_MODULE = re.compile(r"module\s+(\w+)\s*\(([^)]*)\)\s*;", re.S)
_DECL = re.compile(r"(input|output|wire)\s+([^;]+);")
_INSTANCE = re.compile(r"(\w+)\s+(\w+)\s*\(([^;]*)\)\s*;", re.S)
_PIN = re.compile(r"\.(\w+)\s*\(\s*(\w+)\s*\)")


def write_verilog(netlist: Netlist, library: CellLibrary) -> str:
    """Serialise a netlist as flat structural Verilog."""
    ports = list(netlist.inputs) + list(netlist.outputs)
    lines = [f"module {_identifier(netlist.name)} ({', '.join(ports)});"]
    if netlist.inputs:
        lines.append(f"  input {', '.join(netlist.inputs)};")
    if netlist.outputs:
        lines.append(f"  output {', '.join(netlist.outputs)};")
    wires = sorted(
        netlist.nets(library) - set(netlist.inputs) - set(netlist.outputs)
    )
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    lines.append("")
    for gate in netlist.gates.values():
        pins = ", ".join(
            f".{pin}({net})" for pin, net in sorted(gate.connections.items())
        )
        lines.append(f"  {gate.cell_name} {gate.name} ({pins});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def parse_verilog(text: str, library: CellLibrary) -> Netlist:
    """Parse the structural subset back into a :class:`Netlist`."""
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    module = _MODULE.search(text)
    if not module:
        raise NetlistError("no module declaration found")
    name, _ = module.groups()
    netlist = Netlist(name)
    body = text[module.end():]
    end = body.find("endmodule")
    if end < 0:
        raise NetlistError("missing endmodule")
    body = body[:end]

    declared: Dict[str, str] = {}
    for kind, nets in _DECL.findall(body):
        for net in nets.replace("\n", " ").split(","):
            net = net.strip()
            if net:
                declared[net] = kind
    for net, kind in declared.items():
        if kind == "input":
            netlist.add_input(net)
        elif kind == "output":
            netlist.add_output(net)

    body_wo_decls = _DECL.sub("", body)
    for cell_name, inst_name, pin_text in _INSTANCE.findall(body_wo_decls):
        if cell_name in ("module", "input", "output", "wire"):
            continue
        if cell_name not in library:
            raise NetlistError(f"unknown cell {cell_name!r} for instance {inst_name}")
        connections = {pin: net for pin, net in _PIN.findall(pin_text)}
        if not connections:
            raise NetlistError(
                f"instance {inst_name} uses positional ports; only named "
                "connections are supported"
            )
        netlist.add_gate(inst_name, cell_name, connections)
    netlist.validate(library)
    return netlist


def _identifier(name: str) -> str:
    """Make a netlist name a legal Verilog identifier."""
    cleaned = re.sub(r"\W", "_", name)
    return cleaned if cleaned and not cleaned[0].isdigit() else f"m_{cleaned}"
