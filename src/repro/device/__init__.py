"""Analytic device models: alpha-power MOSFET and non-rectangular gates."""

from repro.device.mosfet import AlphaPowerModel
from repro.device.nrg import (
    NrgResult,
    equivalent_length_drive,
    equivalent_length_leakage,
    extract_equivalent_lengths,
)

__all__ = [
    "AlphaPowerModel",
    "NrgResult",
    "equivalent_length_drive",
    "equivalent_length_leakage",
    "extract_equivalent_lengths",
]
