"""Alpha-power-law MOSFET model with short-channel threshold roll-off.

The model provides the two monotone mappings the timing flow needs —
gate length to drive current (delay) and gate length to subthreshold
leakage (static power) — with 90 nm-era sensitivities: roughly 1.3 %/nm
delay sensitivity and ~1.5x leakage per 10 nm of gate-length loss near
nominal (growing steeply further into roll-off).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.pdk import DeviceParams


@dataclass(frozen=True)
class AlphaPowerModel:
    """Sakurai-Newton alpha-power device equations over DeviceParams."""

    params: DeviceParams

    def threshold_voltage(self, length: float) -> float:
        """Vth(L) with exponential short-channel roll-off (volts)."""
        p = self.params
        if length <= 0:
            raise ValueError("length must be positive")
        return p.vth0 - p.vth_rolloff * math.exp(-(length - p.l_min) / p.rolloff_length)

    def overdrive(self, length: float) -> float:
        """Vdd - Vth(L), floored at a tenth of Vdd so the model stays sane
        deep in roll-off (the device is badly leaky there, not dead)."""
        p = self.params
        return max(p.vdd - self.threshold_voltage(length), 0.1 * p.vdd)

    def drive_current(self, width: float, length: float) -> float:
        """Saturation drive current in amperes."""
        if width <= 0 or length <= 0:
            raise ValueError("dimensions must be positive")
        p = self.params
        return p.k_drive * (width / length) * self.overdrive(length) ** p.alpha

    def leakage_current(self, width: float, length: float) -> float:
        """Subthreshold off-state current in amperes."""
        if width <= 0 or length <= 0:
            raise ValueError("dimensions must be positive")
        p = self.params
        exponent = -self.threshold_voltage(length) / (p.subthreshold_n * p.thermal_voltage)
        return p.i0_leak * (width / length) * math.exp(exponent)

    def gate_capacitance(self, width: float, length: float) -> float:
        """Gate capacitance in femtofarads."""
        return width * length * self.params.cox_af_per_nm2 / 1000.0

    def effective_resistance(self, width: float, length: float) -> float:
        """Switching-equivalent resistance in ohms.

        The classic RC-delay abstraction: R = k * Vdd / Idsat with the 0.7
        averaging factor for a full-swing transition.
        """
        return 0.7 * self.params.vdd / self.drive_current(width, length)

    def delay_sensitivity(self, length: float, delta: float = 1.0) -> float:
        """Fractional delay change per nm of gate length near ``length``.

        Delay scales like 1/I for fixed load, so the sensitivity is the
        negative log-derivative of drive current.
        """
        up = self.drive_current(1000.0, length + delta)
        down = self.drive_current(1000.0, length - delta)
        return -(math.log(up) - math.log(down)) / (2 * delta)

    def leakage_ratio_per_nm(self, length: float, delta: float = 1.0) -> float:
        """Multiplicative leakage increase per nm of gate-length *loss*."""
        shorter = self.leakage_current(1000.0, length - delta)
        longer = self.leakage_current(1000.0, length + delta)
        return (shorter / longer) ** (1.0 / (2 * delta))
