"""Non-rectangular-gate (NRG) equivalent transistors.

Printed gates are not rectangles: corner rounding, endcap pullback, and
flare near the gate contact make the channel length vary along the width.
Following Poppe et al. ("From poly line to transistor"), the printed gate
is cut into rectangular slices; the *drive* equivalent length makes a
rectangular device match the summed slice on-current, while the *leakage*
equivalent length matches the summed slice off-current.  Because leakage
is exponential in Vth(L), the two differ: the narrowest slices dominate
leakage but barely move the drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.device.mosfet import AlphaPowerModel
from repro.metrology.gate_cd import GateCdMeasurement


@dataclass(frozen=True)
class NrgResult:
    """Equivalent-rectangle view of one printed transistor."""

    width: float
    drawn_length: float
    length_drive: float
    length_leakage: float
    failed: bool = False

    @property
    def drive_delta(self) -> float:
        """Printed-minus-drawn delay-relevant CD (nm)."""
        return self.length_drive - self.drawn_length

    @property
    def leakage_delta(self) -> float:
        return self.length_leakage - self.drawn_length


def _solve_equivalent_length(
    total_current: float,
    width: float,
    current_of_length,
    lo: float,
    hi: float,
    tol: float = 1e-4,
) -> float:
    """Bisection for L_eq with I(width, L_eq) = total_current.

    ``current_of_length`` must be monotonically decreasing in L.
    """
    f_lo = current_of_length(lo) - total_current
    f_hi = current_of_length(hi) - total_current
    if f_lo <= 0:
        return lo
    if f_hi >= 0:
        return hi
    for _ in range(100):
        mid = (lo + hi) / 2
        if current_of_length(mid) > total_current:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return (lo + hi) / 2


def equivalent_length_drive(
    slice_cds: Sequence[float],
    slice_widths: Sequence[float],
    model: AlphaPowerModel,
    search_lo: float = 20.0,
    search_hi: float = 300.0,
) -> float:
    """Drive (on-current) equivalent gate length of a sliced gate."""
    _validate(slice_cds, slice_widths)
    total_width = sum(slice_widths)
    total = sum(
        model.drive_current(w, cd) for cd, w in zip(slice_cds, slice_widths) if cd > 0
    )
    return _solve_equivalent_length(
        total, total_width, lambda L: model.drive_current(total_width, L),
        search_lo, search_hi,
    )


def equivalent_length_leakage(
    slice_cds: Sequence[float],
    slice_widths: Sequence[float],
    model: AlphaPowerModel,
    search_lo: float = 20.0,
    search_hi: float = 300.0,
) -> float:
    """Leakage (off-current) equivalent gate length of a sliced gate."""
    _validate(slice_cds, slice_widths)
    total_width = sum(slice_widths)
    total = sum(
        model.leakage_current(w, cd) for cd, w in zip(slice_cds, slice_widths) if cd > 0
    )
    return _solve_equivalent_length(
        total, total_width, lambda L: model.leakage_current(total_width, L),
        search_lo, search_hi,
    )


def extract_equivalent_lengths(
    measurement: GateCdMeasurement,
    model: AlphaPowerModel,
    width: Optional[float] = None,
) -> NrgResult:
    """Equivalent lengths straight from a metrology measurement.

    A gate with any open slice (CD 0) is flagged ``failed``: its channel is
    uncontrolled and no equivalent rectangle is meaningful; callers treat
    such instances as yield losses rather than timing derates.
    """
    slice_widths = measurement.slice_widths()
    gate_width = width if width is not None else sum(slice_widths)
    if not measurement.printed:
        return NrgResult(
            width=gate_width,
            drawn_length=measurement.drawn_cd,
            length_drive=measurement.drawn_cd,
            length_leakage=measurement.drawn_cd,
            failed=True,
        )
    return NrgResult(
        width=gate_width,
        drawn_length=measurement.drawn_cd,
        length_drive=equivalent_length_drive(measurement.slice_cds, slice_widths, model),
        length_leakage=equivalent_length_leakage(measurement.slice_cds, slice_widths, model),
    )


def _validate(slice_cds: Sequence[float], slice_widths: Sequence[float]) -> None:
    if len(slice_cds) != len(slice_widths):
        raise ValueError("slice_cds and slice_widths must have equal length")
    if not slice_cds:
        raise ValueError("need at least one slice")
    if not any(cd > 0 for cd in slice_cds):
        raise ValueError("all slices are open; no channel to model")
