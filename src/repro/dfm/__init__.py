"""Design-for-manufacturability add-ons: flexible rules, yield, hotspots."""

from repro.dfm.flexible import FdrLimits, FdrVerdict, explore_pitch_rules
from repro.dfm.yield_model import (
    ExposureDistribution,
    YieldResult,
    process_window_yield,
)
from repro.dfm.hotspots import (
    HotspotClass,
    HotspotLibrary,
    Snippet,
    cluster_snippets,
    extract_snippets,
)

__all__ = [
    "FdrLimits",
    "FdrVerdict",
    "explore_pitch_rules",
    "ExposureDistribution",
    "YieldResult",
    "process_window_yield",
    "Snippet",
    "HotspotClass",
    "HotspotLibrary",
    "extract_snippets",
    "cluster_snippets",
]
