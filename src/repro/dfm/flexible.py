"""Flexible design rules (FDR) from image parameters.

The companion work of the same authors ("Layout verification and
optimization based on flexible design rules", Yang/Sylvester/Capodieci)
replaces the single pass/fail minimum-pitch rule with a printability
*classification* derived from simulated image parameters.  Here each
candidate (width, pitch) configuration is scored by NILS, MEEF and
printed-CD fidelity, and binned into preferred / allowed / flagged —
exactly the yield-versus-density trade the FDR methodology exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.litho.metrics import grating_meef, grating_nils
from repro.litho.resist import NOMINAL, ProcessCondition
from repro.litho.simulator import LithographySimulator, cd_through_pitch


@dataclass(frozen=True)
class FdrLimits:
    """Image-parameter thresholds for the rule classes."""

    nils_preferred: float = 0.85
    nils_allowed: float = 0.55
    meef_preferred: float = 2.5
    meef_allowed: float = 4.0
    cd_error_preferred: float = 5.0   # nm, |printed - drawn| without OPC
    cd_error_allowed: float = 15.0


@dataclass(frozen=True)
class FdrVerdict:
    """Printability scoring of one layout configuration."""

    line_width: float
    pitch: float
    printed_cd: float
    nils: float
    meef: float
    classification: str  # "preferred" | "allowed" | "flagged"

    @property
    def cd_error(self) -> float:
        return self.printed_cd - self.line_width


def classify(
    line_width: float,
    pitch: float,
    printed_cd: float,
    nils: float,
    meef: float,
    limits: FdrLimits,
) -> str:
    """Bin one configuration by its image parameters."""
    if printed_cd == 0.0:
        return "flagged"
    cd_error = abs(printed_cd - line_width)
    if (nils >= limits.nils_preferred and meef <= limits.meef_preferred
            and cd_error <= limits.cd_error_preferred):
        return "preferred"
    if (nils >= limits.nils_allowed and meef <= limits.meef_allowed
            and cd_error <= limits.cd_error_allowed):
        return "allowed"
    return "flagged"


def explore_pitch_rules(
    simulator: LithographySimulator,
    line_width: float,
    pitches: Sequence[float],
    limits: FdrLimits = FdrLimits(),
    condition: ProcessCondition = NOMINAL,
) -> List[FdrVerdict]:
    """Score a through-pitch sweep of the gate layer.

    This is the FDR exploration a design-rule team runs before freezing
    the poly pitch table: instead of one minimum pitch, every pitch gets a
    printability class that layout tools may trade against density.
    """
    printed = dict(cd_through_pitch(simulator, line_width, list(pitches),
                                    condition=condition))
    verdicts = []
    for pitch in pitches:
        nils = grating_nils(simulator, line_width, pitch, condition=condition)
        meef = grating_meef(simulator, line_width, pitch, condition=condition)
        verdicts.append(
            FdrVerdict(
                line_width=line_width,
                pitch=pitch,
                printed_cd=printed[pitch],
                nils=nils,
                meef=meef,
                classification=classify(
                    line_width, pitch, printed[pitch], nils, meef, limits
                ),
            )
        )
    return verdicts
