"""Pattern-based hotspot classification (DRC-Plus style).

The same authors' later line of work (DRC Plus, hotspot clustering +
pattern matching) turns simulation-found failures into a reusable pattern
library: clip a small layout window around each ORC violation, cluster the
clips by geometric similarity, and match the representative patterns
against new layouts *without* re-running lithography.

This module implements that loop on the reproduction's substrate:

* :func:`extract_snippets` — fixed-radius layout clips around violations,
  rasterized to coarse binary bitmaps (translation-normalized),
* :func:`cluster_snippets` — greedy agglomeration by Jaccard similarity,
* :class:`HotspotLibrary` — representative patterns with match counts,
  scanning new layouts by sliding-window bitmap comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.geometry import Point, Polygon, Rect
from repro.litho.raster import rasterize
from repro.opc.orc import OrcViolation


@dataclass
class Snippet:
    """One clipped layout window around a violation site."""

    center: Point
    kind: str                 # the violation kind that produced it
    bitmap: np.ndarray        # coarse binary occupancy, shape (n, n)

    def similarity(self, other: "Snippet") -> float:
        """Jaccard index of the two occupancy bitmaps."""
        a, b = self.bitmap, other.bitmap
        union = np.logical_or(a, b).sum()
        if union == 0:
            return 1.0
        return float(np.logical_and(a, b).sum() / union)


def extract_snippets(
    polygons: Sequence[Polygon],
    violations: Sequence[OrcViolation],
    radius: float = 400.0,
    grid: int = 16,
) -> List[Snippet]:
    """Clip a ``2*radius`` window around each violation and rasterize it.

    The bitmap threshold is half coverage, so the signature captures shape
    topology rather than sub-pixel edge positions — two sites with the
    same configuration but 1-2 nm of OPC difference classify together.
    """
    if radius <= 0 or grid < 2:
        raise ValueError("radius must be positive and grid >= 2")
    snippets = []
    pixel = 2 * radius / grid
    for violation in violations:
        window = Rect.from_center(violation.location.x, violation.location.y,
                                  2 * radius, 2 * radius)
        local = [p for p in polygons if p.bbox.overlaps(window, strict=False)]
        mask = rasterize(local, window, pixel)
        snippets.append(
            Snippet(center=violation.location, kind=violation.kind,
                    bitmap=mask.data >= 0.5)
        )
    return snippets


@dataclass
class HotspotClass:
    """A cluster of similar failure sites."""

    representative: Snippet
    members: List[Snippet] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.members)

    @property
    def kinds(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for member in self.members:
            histogram[member.kind] = histogram.get(member.kind, 0) + 1
        return histogram


def cluster_snippets(
    snippets: Sequence[Snippet], similarity_threshold: float = 0.75
) -> List[HotspotClass]:
    """Greedy leader clustering: a snippet joins the first class whose
    representative it matches at or above the threshold."""
    if not 0.0 < similarity_threshold <= 1.0:
        raise ValueError("similarity_threshold must be in (0, 1]")
    classes: List[HotspotClass] = []
    for snippet in snippets:
        for cls in classes:
            if snippet.similarity(cls.representative) >= similarity_threshold:
                cls.members.append(snippet)
                break
        else:
            classes.append(HotspotClass(representative=snippet, members=[snippet]))
    classes.sort(key=lambda c: -c.count)
    return classes


class HotspotLibrary:
    """Representative patterns, matchable against new layouts."""

    def __init__(self, classes: Sequence[HotspotClass], radius: float = 400.0,
                 grid: int = 16, similarity_threshold: float = 0.75):
        self.classes = list(classes)
        self.radius = radius
        self.grid = grid
        self.similarity_threshold = similarity_threshold

    @staticmethod
    def from_orc(
        polygons: Sequence[Polygon],
        violations: Sequence[OrcViolation],
        radius: float = 400.0,
        grid: int = 16,
        similarity_threshold: float = 0.75,
    ) -> "HotspotLibrary":
        snippets = extract_snippets(polygons, violations, radius, grid)
        classes = cluster_snippets(snippets, similarity_threshold)
        return HotspotLibrary(classes, radius, grid, similarity_threshold)

    def __len__(self) -> int:
        return len(self.classes)

    def match(
        self, polygons: Sequence[Polygon], sites: Sequence[Point]
    ) -> List[Tuple[Point, int]]:
        """Scan candidate ``sites`` of a layout for known hotspot patterns.

        Returns (site, class index) for every match — the DRC-Plus use
        model: flag known-bad configurations without a litho run.
        """
        pixel = 2 * self.radius / self.grid
        hits: List[Tuple[Point, int]] = []
        for site in sites:
            window = Rect.from_center(site.x, site.y, 2 * self.radius, 2 * self.radius)
            local = [p for p in polygons if p.bbox.overlaps(window, strict=False)]
            if not local:
                continue
            probe = Snippet(center=site, kind="probe",
                            bitmap=rasterize(local, window, pixel).data >= 0.5)
            for index, cls in enumerate(self.classes):
                if probe.similarity(cls.representative) >= self.similarity_threshold:
                    hits.append((site, index))
                    break
        return hits
