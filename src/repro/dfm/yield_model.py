"""Process-window yield estimation.

A layout clip survives an exposure condition if its ORC is free of
catastrophic faults (opens, pinches, bridges).  Sweeping the dose/defocus
plane and weighting each condition by how often the scanner actually lands
there gives a parametric-yield estimate for the clip — the "design-process
correlation" view of the DFM line of work this paper belongs to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.geometry import Polygon
from repro.litho.resist import ProcessCondition
from repro.litho.simulator import LithographySimulator
from repro.opc.orc import OrcLimits, run_orc

CATASTROPHIC = ("open", "pinch", "bridge")


@dataclass(frozen=True)
class ExposureDistribution:
    """Gaussian scanner statistics around the nominal condition."""

    dose_sigma: float = 0.015        # relative dose
    defocus_sigma_nm: float = 60.0

    def weight(self, condition: ProcessCondition) -> float:
        """Unnormalised Gaussian density at a condition."""
        dz = condition.defocus_nm / self.defocus_sigma_nm
        dd = (condition.dose - 1.0) / self.dose_sigma
        return math.exp(-0.5 * (dz * dz + dd * dd))


@dataclass
class YieldResult:
    """Per-condition pass/fail plus the weighted yield."""

    outcomes: Dict[Tuple[float, float], bool] = field(default_factory=dict)
    weighted_yield: float = 0.0

    @property
    def passing_conditions(self) -> List[Tuple[float, float]]:
        return sorted(key for key, ok in self.outcomes.items() if ok)

    @property
    def window_fraction(self) -> float:
        """Unweighted fraction of sampled conditions that pass."""
        if not self.outcomes:
            return 0.0
        return sum(self.outcomes.values()) / len(self.outcomes)


def process_window_yield(
    simulator: LithographySimulator,
    mask_polygons: Sequence[Polygon],
    target_polygons: Sequence[Polygon],
    doses: Sequence[float] = (0.96, 1.0, 1.04),
    defoci: Sequence[float] = (0.0, 150.0, 300.0),
    distribution: ExposureDistribution = ExposureDistribution(),
    limits: OrcLimits = None,
) -> YieldResult:
    """Catastrophic-fault yield of a clip over the dose x defocus grid.

    Focus is sampled one-sided (defocus is symmetric to first order in
    this pupil model); each grid point contributes its Gaussian scanner
    weight.  EPE-only violations do not fail a condition — only opens,
    pinches and bridges kill die.
    """
    limits = limits or OrcLimits()
    result = YieldResult()
    total_weight = 0.0
    passing_weight = 0.0
    for dose in doses:
        for defocus in defoci:
            condition = ProcessCondition(dose=dose, defocus_nm=defocus)
            report = run_orc(
                simulator, mask_polygons, target_polygons,
                limits=limits, condition=condition,
            )
            fatal = [v for v in report.violations if v.kind in CATASTROPHIC]
            ok = not fatal
            result.outcomes[(dose, defocus)] = ok
            weight = distribution.weight(condition)
            total_weight += weight
            if ok:
                passing_weight += weight
    result.weighted_yield = passing_weight / total_weight if total_weight else 0.0
    return result
