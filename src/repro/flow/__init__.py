"""The paper's end-to-end flow: netlist to post-OPC back-annotated timing."""

from repro.flow.postopc import FlowConfig, FlowReport, PostOpcTimingFlow
from repro.flow.export import export_flow_gds

__all__ = ["FlowConfig", "FlowReport", "PostOpcTimingFlow", "export_flow_gds"]
