"""The paper's end-to-end flow: netlist to post-OPC back-annotated timing.

The flow is a stage graph (:mod:`repro.flow.stages`) over a
content-addressed artifact cache (:mod:`repro.flow.context`), with the
tile-parallel inner loops dispatched by :mod:`repro.flow.parallel` and
per-stage observability in :mod:`repro.flow.trace`.  Run durability —
the append-only run journal, resume, and graceful interruption — lives
in :mod:`repro.flow.journal`, with the structured failure taxonomy in
:mod:`repro.flow.errors`.  :class:`PostOpcTimingFlow` assembles the
default graph; :class:`FlowSweep` runs many OPC modes against one shared
context.

Concurrency rides the same graph: :class:`StageScheduler`
(:mod:`repro.flow.scheduler`) executes every dependency-ready stage at
once with single-flight dedup through the shared context, and
:class:`FlowService` (:mod:`repro.flow.service`) fronts it with a
bounded-queue submit/status/result/report job API, in-process or over a
local socket.

Hardening lives in :mod:`repro.flow.chaos` (deterministic seeded fault
injection: :class:`FaultPlan` threaded through the cache, journal, stage,
chunk and socket layers) and the service's deadlines, hung-stage
watchdog, per-design :class:`CircuitBreaker` and orphan-job recovery.
"""

from repro.flow.chaos import ChaosError, FaultPlan, FaultSpec
from repro.flow.context import FlowContext, SettleOutcome, stable_hash
from repro.flow.errors import (
    EXIT_FAILURE,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_QUARANTINE,
    EXIT_VALIDATION,
    FlowError,
    FlowInterrupted,
    GraphValidationError,
    InputValidationError,
    QuarantineExceededError,
    ServiceRejectedError,
    StageError,
)
from repro.flow.journal import InterruptGuard, RunJournal
from repro.flow.parallel import FaultInjection, ParallelExecutor, split_chunks
from repro.flow.postopc import FlowConfig, FlowReport, PostOpcTimingFlow
from repro.flow.scheduler import StageScheduler
from repro.flow.service import CircuitBreaker, FlowService
from repro.flow.stages import (
    FlowStage,
    StageGraph,
    default_stage_graph,
    settle_stage,
    stage_key,
)
from repro.flow.sweep import FlowSweep, SweepResult
from repro.flow.trace import FlowTrace, StageRecord
from repro.flow.export import export_flow_gds

__all__ = [
    "FlowConfig",
    "FlowReport",
    "PostOpcTimingFlow",
    "FlowContext",
    "SettleOutcome",
    "FlowTrace",
    "StageRecord",
    "FlowStage",
    "StageGraph",
    "StageScheduler",
    "FlowService",
    "CircuitBreaker",
    "FaultPlan",
    "FaultSpec",
    "ChaosError",
    "default_stage_graph",
    "stage_key",
    "settle_stage",
    "ParallelExecutor",
    "FaultInjection",
    "split_chunks",
    "FlowSweep",
    "SweepResult",
    "stable_hash",
    "export_flow_gds",
    "FlowError",
    "GraphValidationError",
    "InputValidationError",
    "ServiceRejectedError",
    "StageError",
    "QuarantineExceededError",
    "FlowInterrupted",
    "RunJournal",
    "InterruptGuard",
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_INTERRUPTED",
    "EXIT_VALIDATION",
    "EXIT_QUARANTINE",
]
