"""Deterministic fault injection: every failure mode, reproducible on demand.

A :class:`FaultPlan` is a small, seeded description of *which operations
fail* during a run — one :class:`FaultSpec` per injected fault, matched
by **site** (where in the stack the fault fires) and an optional **key
substring** (which stage / artifact / record it hits).  The plan is
threaded through the layers that can fail in production:

========================= ==================================================
site                      injection point
========================= ==================================================
``disk-read``             :meth:`FlowContext._disk_load` — the payload is
                          corrupted before the sidecar hash check, driving
                          the real corruption-recovery path
``disk-write``            :meth:`FlowContext._disk_store` — raises
                          ``OSError``, exercising write-error degradation
``journal-write``         :meth:`RunJournal.append` — raises ``OSError``
                          (key = the record type being written)
``stage-run``             :func:`~repro.flow.stages.settle_stage` — the
                          stage body raises :class:`ChaosError`
                          (key = the stage name)
``stage-hang``            :func:`~repro.flow.stages.settle_stage` — the
                          stage blocks for ``delay_s`` (interruptible via
                          :meth:`FaultPlan.release`), simulating a wedged
                          worker thread
``chunk``                 :meth:`ParallelExecutor._run_round` — the chunk
                          is marked failed before dispatch (key = chunk
                          index), driving retry/degrade, the in-process
                          stand-in for a killed worker
``socket``                :meth:`FlowService._handle_connection` — the
                          connection is dropped without a response
                          (key = the request op)
========================= ==================================================

Determinism is the point: a plan fires on the first ``times`` *matching*
operations, counted under a lock, so the same plan over the same run
injects the same faults every time — the chaos test suite sweeps
:meth:`FaultPlan.seeded` plans and asserts each fault class reaches its
documented terminal state within a bounded deadline.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.flow.errors import InputValidationError

#: the injectable fault sites, in the round-robin order
#: :meth:`FaultPlan.seeded` walks them
SITES = (
    "disk-read",
    "disk-write",
    "journal-write",
    "stage-run",
    "stage-hang",
    "chunk",
    "socket",
)

#: stage names a seeded plan targets for ``stage-run`` / ``stage-hang``
#: (the default flow graph; an unmatched name simply never fires)
_STAGE_TARGETS = (
    "place",
    "sta_drawn",
    "tag_critical",
    "opc",
    "metrology",
    "back_annotate",
    "sta_post",
    "hold",
    "power",
)


class ChaosError(RuntimeError):
    """An injected failure (never raised by real code paths)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: fire at ``site`` on the first ``times``
    operations whose key contains ``match`` (empty = every operation)."""

    site: str
    match: str = ""
    times: int = 1
    #: stage-hang only: how long the stage blocks (interruptible through
    #: :meth:`FaultPlan.release`)
    delay_s: float = 30.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise InputValidationError(
                "site", f"must be one of {SITES}, got {self.site!r}"
            )
        if self.times < 1:
            raise InputValidationError(
                "times", f"must be >= 1, got {self.times}"
            )
        if self.delay_s <= 0:
            raise InputValidationError(
                "delay_s", f"must be positive, got {self.delay_s}"
            )


class FaultPlan:
    """A thread-safe, deterministic schedule of injected faults.

    Call :meth:`trigger` at an injection site with the operation's key:
    the first matching spec with tokens left fires (consuming one token)
    and is returned; otherwise the operation proceeds untouched.
    :attr:`fired` counts firings per site so tests can assert the fault
    actually happened rather than silently missing its target.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self._remaining: List[int] = [spec.times for spec in self.specs]
        #: site -> number of faults fired (for test assertions)
        self.fired: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._released = threading.Event()

    def __repr__(self) -> str:
        with self._lock:
            parts = ", ".join(
                f"{s.site}[{s.match or '*'}]x{r}"
                for s, r in zip(self.specs, self._remaining)
            )
        return f"FaultPlan({parts})"

    @classmethod
    def seeded(
        cls,
        seed: int,
        site: Optional[str] = None,
        times: int = 1,
        delay_s: float = 30.0,
    ) -> Tuple["FaultPlan", FaultSpec]:
        """A deterministic single-fault plan derived from ``seed``.

        The fault class defaults to ``SITES[seed % len(SITES)]`` (seven
        consecutive seeds cover every class); for stage faults the target
        stage is drawn from ``random.Random(seed)`` so a seed sweep also
        varies *where* the fault lands.  Returns ``(plan, spec)`` so the
        caller knows which terminal state to assert.
        """
        rng = random.Random(seed)
        chosen = site if site is not None else SITES[seed % len(SITES)]
        match = ""
        if chosen in ("stage-run", "stage-hang"):
            match = rng.choice(_STAGE_TARGETS)
        spec = FaultSpec(site=chosen, match=match, times=times,
                         delay_s=delay_s)
        return cls([spec]), spec

    def trigger(self, site: str, key: str = "") -> Optional[FaultSpec]:
        """Consume and return the first matching fault, or None."""
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                if spec.match and spec.match not in key:
                    continue
                if self._remaining[index] <= 0:
                    continue
                self._remaining[index] -= 1
                self.fired[site] = self.fired.get(site, 0) + 1
                return spec
        return None

    def release(self) -> None:
        """Unblock every in-flight (and future) injected hang.

        Lets tests free the leaked worker thread once the watchdog has
        been proven to fire, instead of waiting out ``delay_s``.
        """
        self._released.set()

    def hang(self, spec: FaultSpec) -> None:
        """Block for ``spec.delay_s``, waking early on :meth:`release`."""
        deadline = time.monotonic() + spec.delay_s
        while time.monotonic() < deadline:
            if self._released.wait(timeout=0.05):
                return


def inject_stage_fault(plan: FaultPlan, stage_name: str) -> None:
    """The ``stage-run`` / ``stage-hang`` injection hook.

    Called by :func:`~repro.flow.stages.settle_stage` at the top of the
    compute path (never on a cache hit, so an injected fault is never
    cached).  A hang fires before a crash when both match, mirroring a
    worker that wedges and is then killed.
    """
    spec = plan.trigger("stage-hang", stage_name)
    if spec is not None:
        plan.hang(spec)
    spec = plan.trigger("stage-run", stage_name)
    if spec is not None:
        raise ChaosError(f"injected crash in stage {stage_name!r}")


__all__ = ["SITES", "ChaosError", "FaultSpec", "FaultPlan",
           "inject_stage_fault"]
