"""Content-addressed artifact store shared between flow runs.

Each stage of the flow graph hashes the *slice* of the configuration that
can change its output (plus the keys of its upstream stages, Merkle
style) into an artifact key.  Two runs whose configs agree on a stage's
slice share that stage's artifacts: a ``selective``-mode run re-uses the
placement, drawn-STA and rule-OPC products of an earlier ``rule``-mode
run, and a process-corner sweep re-uses everything upstream of
lithography.

With a ``cache_dir`` the store is additionally **persistent**: every
artifact is pickled to one file under that directory, named by its stable
key, next to a sidecar file carrying the payload's SHA-256.  A later
process (or a later :class:`FlowContext` over the same directory) serves
those artifacts as *disk hits*; loads verify the sidecar hash and treat
corrupt or unreadable entries as misses — the damaged files are deleted
and the stage recomputes, the flow never crashes on a bad cache.  An
optional byte cap evicts the least-recently-used entries.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
from dataclasses import fields, is_dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

#: sentinel distinguishing "no entry" from a stored None
MISSING = object()

#: default reprs embed the object's address — hashing one would make the
#: "stable" key differ between two identical runs.
_ADDRESS_REPR = re.compile(r" at 0x[0-9a-fA-F]+")


def _feed(obj: Any, out: List[str]) -> None:
    """Append a canonical token stream for ``obj`` (order-stable)."""
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        out.append(f"{type(obj).__name__}:{obj!r}")
    elif is_dataclass(obj) and not isinstance(obj, type):
        out.append(f"@{type(obj).__qualname__}(")
        for f in fields(obj):
            out.append(f.name + "=")
            _feed(getattr(obj, f.name), out)
        out.append(")")
    elif isinstance(obj, (tuple, list)):
        out.append("[")
        for item in obj:
            _feed(item, out)
        out.append("]")
    elif isinstance(obj, Mapping):
        out.append("{")
        for key in sorted(obj, key=repr):
            _feed(key, out)
            out.append(":")
            _feed(obj[key], out)
        out.append("}")
    elif isinstance(obj, (set, frozenset)):
        out.append("<")
        for token in sorted(repr(item) for item in obj):
            out.append(token)
        out.append(">")
    else:
        # Fallback: the repr.  Only value-like reprs are trustworthy here;
        # an address-bearing default repr would silently poison every key
        # derived from it (and any persisted cache keyed by it), so it is
        # a hard error rather than a wrong answer.
        text = repr(obj)
        if _ADDRESS_REPR.search(text):
            raise TypeError(
                f"stable_hash: {type(obj).__qualname__} has an address-bearing "
                f"repr ({text[:80]!r}); give it a value-like repr or make it a "
                "dataclass before putting it in a config slice"
            )
        out.append(text)


def stable_hash(obj: Any) -> str:
    """Deterministic content hash of a (nested) config structure.

    Handles scalars, strings, tuples/lists, mappings, sets, and
    dataclasses recursively; stable across processes and sessions (no
    reliance on ``hash()``).  Objects that would fall back to an
    address-bearing default ``repr`` are rejected with :class:`TypeError`.
    """
    tokens: List[str] = []
    _feed(obj, tokens)
    digest = hashlib.sha256("\x1f".join(tokens).encode("utf-8", "replace"))
    return digest.hexdigest()[:20]


class FlowContext:
    """Keyed artifact store with per-stage hit/miss accounting.

    One context can back many runs (and many :class:`PostOpcTimingFlow`
    objects — keys embed the flow's netlist/technology fingerprint, so
    different designs never collide).

    ``cache_dir`` enables the persistent on-disk tier (one pickle + one
    hash sidecar per artifact); ``max_disk_bytes`` caps its total size
    with LRU eviction (file mtime is the recency clock — refreshed on
    every disk hit).
    """

    #: filename suffixes of the payload and its integrity sidecar
    DATA_SUFFIX = ".pkl"
    HASH_SUFFIX = ".sha256"

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_disk_bytes: Optional[int] = None,
    ) -> None:
        self._artifacts: Dict[str, Any] = {}
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.cache_dir = cache_dir
        self.max_disk_bytes = max_disk_bytes
        #: where the most recent successful lookup was served from
        #: ("memory" | "disk" | None)
        self.last_hit_source: Optional[str] = None
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_writes = 0
        self.disk_evictions = 0
        self.disk_corruptions = 0
        self.disk_write_errors = 0
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    def __len__(self) -> int:
        return len(self._artifacts)

    def __contains__(self, key: str) -> bool:
        return key in self._artifacts or (
            self.cache_dir is not None and os.path.exists(self._data_path(key))
        )

    # -- persistent tier -----------------------------------------------------

    def _data_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key + self.DATA_SUFFIX)

    def _hash_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key + self.HASH_SUFFIX)

    def _drop_entry(self, key: str) -> None:
        for path in (self._data_path(key), self._hash_path(key)):
            try:
                os.remove(path)
            except OSError:
                pass

    def _disk_load(self, key: str) -> Any:
        """Load + verify one entry; :data:`MISSING` on absence/corruption."""
        data_path = self._data_path(key)
        try:
            with open(data_path, "rb") as fh:
                payload = fh.read()
        except FileNotFoundError:
            return MISSING
        except OSError:
            self.disk_corruptions += 1
            self._drop_entry(key)
            return MISSING
        try:
            with open(self._hash_path(key), "r") as fh:
                expected = fh.read().strip()
            if hashlib.sha256(payload).hexdigest() != expected:
                raise ValueError("integrity hash mismatch")
            value = pickle.loads(payload)
        # repro-lint: allow[broad-except] cache-corruption tolerance: recompute, never crash
        except Exception:
            # Truncated pickle, missing/garbled sidecar, unpicklable class...
            # all are recoverable: drop the entry and let the stage recompute.
            self.disk_corruptions += 1
            self._drop_entry(key)
            return MISSING
        try:
            os.utime(data_path)  # refresh the LRU clock
        except OSError:
            pass
        return value

    def _disk_store(self, key: str, value: Any) -> None:
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        # repro-lint: allow[broad-except] unpicklable artifact degrades to memory-only, never crashes
        except Exception:
            self.disk_write_errors += 1
            return
        digest = hashlib.sha256(payload).hexdigest()
        data_path = self._data_path(key)
        hash_path = self._hash_path(key)
        try:
            # Write via temp files + rename so a concurrent reader never
            # sees a half-written payload (it would be caught by the hash
            # check anyway, but would count as a spurious corruption).
            tmp = data_path + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, data_path)
            tmp = hash_path + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(digest + "\n")
            os.replace(tmp, hash_path)
        except OSError:
            self.disk_write_errors += 1
            self._drop_entry(key)
            return
        self.disk_writes += 1
        self._enforce_size_cap()

    def _disk_entries(self) -> List[Tuple[float, int, str]]:
        """(mtime, total bytes, key) per persisted entry, oldest first."""
        entries: List[Tuple[float, int, str]] = []
        for name in os.listdir(self.cache_dir):
            if not name.endswith(self.DATA_SUFFIX):
                continue
            key = name[: -len(self.DATA_SUFFIX)]
            try:
                stat = os.stat(self._data_path(key))
                size = stat.st_size
                try:
                    size += os.stat(self._hash_path(key)).st_size
                except OSError:
                    pass
                entries.append((stat.st_mtime, size, key))
            except OSError:
                continue
        entries.sort()
        return entries

    def _enforce_size_cap(self) -> None:
        if self.max_disk_bytes is None:
            return
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        # Evict least-recently-used first; the newest entry always survives
        # (evicting what was just written would make the cache a no-op).
        index = 0
        while total > self.max_disk_bytes and index < len(entries) - 1:
            _, size, key = entries[index]
            self._drop_entry(key)
            self.disk_evictions += 1
            total -= size
            index += 1

    def flush(self) -> None:
        """Make the persistent tier durable before the process exits.

        Stores are write-through (every artifact hits disk at ``store``
        time), so this only fsyncs the cache directory entry — the
        renames of the atomic-write protocol survive power loss.  Called
        by the flow's graceful-interruption path; a no-op without a
        ``cache_dir``.
        """
        if self.cache_dir is None:
            return
        try:
            fd = os.open(self.cache_dir, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        except OSError:
            pass

    def disk_usage(self) -> Tuple[int, int]:
        """(entry count, total bytes) of the persistent tier (0, 0 if off)."""
        if self.cache_dir is None:
            return (0, 0)
        entries = self._disk_entries()
        return (len(entries), sum(size for _, size, _ in entries))

    # -- lookup / store ------------------------------------------------------

    def lookup(self, key: str) -> Any:
        """The stored artifact, or :data:`MISSING`.

        Checks the in-memory tier first, then (when ``cache_dir`` is set)
        the on-disk tier; disk hits are promoted into memory.
        :attr:`last_hit_source` records where the value came from.
        """
        value = self._artifacts.get(key, MISSING)
        if value is not MISSING:
            self.last_hit_source = "memory"
            return value
        if self.cache_dir is not None:
            value = self._disk_load(key)
            if value is not MISSING:
                self.disk_hits += 1
                self._artifacts[key] = value
                self.last_hit_source = "disk"
                return value
            self.disk_misses += 1
        self.last_hit_source = None
        return MISSING

    def store(self, key: str, value: Any) -> None:
        self._artifacts[key] = value
        if self.cache_dir is not None:
            self._disk_store(key, value)

    def count_hit(self, stage: str) -> None:
        self.hits[stage] = self.hits.get(stage, 0) + 1

    def count_miss(self, stage: str) -> None:
        self.misses[stage] = self.misses.get(stage, 0) + 1

    def memo(self, stage: str, key: str, compute: Callable[[], Any]) -> Any:
        """Compute-once helper for intra-stage shared work (e.g. the
        rule-OPC base mask shared by the rule/model/selective modes)."""
        value = self.lookup(key)
        if value is not MISSING:
            self.count_hit(stage)
            return value
        self.count_miss(stage)
        value = compute()
        self.store(key, value)
        return value

    def stats(self) -> Dict[str, object]:
        stages: Set[str] = set(self.hits) | set(self.misses)
        entries, total_bytes = self.disk_usage()
        return {
            "entries": len(self._artifacts),
            "stages": {
                name: {"hits": self.hits.get(name, 0), "misses": self.misses.get(name, 0)}
                for name in sorted(stages)
            },
            "disk": {
                "enabled": self.cache_dir is not None,
                "hits": self.disk_hits,
                "misses": self.disk_misses,
                "writes": self.disk_writes,
                "evictions": self.disk_evictions,
                "corruptions": self.disk_corruptions,
                "write_errors": self.disk_write_errors,
                "entries": entries,
                "bytes": total_bytes,
            },
        }

    def summary(self) -> str:
        parts = []
        for name, counts in self.stats()["stages"].items():
            parts.append(f"{name} {counts['hits']}h/{counts['misses']}m")
        text = f"{len(self._artifacts)} artifacts; " + ", ".join(parts)
        if self.cache_dir is not None:
            entries, total_bytes = self.disk_usage()
            text += (
                f"; disk {self.disk_hits}h/{self.disk_misses}m"
                f" ({entries} files, {total_bytes / 1e6:.1f} MB"
                f", {self.disk_evictions} evicted"
                f", {self.disk_corruptions} corrupt)"
            )
        return text
