"""Content-addressed artifact store shared between flow runs.

Each stage of the flow graph hashes the *slice* of the configuration that
can change its output (plus the keys of its upstream stages, Merkle
style) into an artifact key.  Two runs whose configs agree on a stage's
slice share that stage's artifacts: a ``selective``-mode run re-uses the
placement, drawn-STA and rule-OPC products of an earlier ``rule``-mode
run, and a process-corner sweep re-uses everything upstream of
lithography.

With a ``cache_dir`` the store is additionally **persistent**: every
artifact is pickled to one file under that directory, named by its stable
key, next to a sidecar file carrying the payload's SHA-256.  A later
process (or a later :class:`FlowContext` over the same directory) serves
those artifacts as *disk hits*; loads verify the sidecar hash and treat
corrupt or unreadable entries as misses — the damaged files are deleted
and the stage recomputes, the flow never crashes on a bad cache.  An
optional byte cap evicts the least-recently-used entries.

The context is **safe under concurrent access**: the async stage
scheduler (:mod:`repro.flow.scheduler`) and the flow service settle many
stages against one shared context at once.  One mutex guards the memory
tier and every counter, a second serializes disk mutation against disk
reads (so an eviction can never tear an entry out from under a promote),
and :meth:`settle` gives each artifact key **single-flight** semantics:
concurrent requests for the same key block on a per-key lock and all but
the first are served the first's result — counted on :attr:`deduped`
instead of recomputed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import threading
from contextlib import contextmanager

from repro.flow.chaos import FaultPlan
from dataclasses import dataclass, fields, is_dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

#: sentinel distinguishing "no entry" from a stored None
MISSING = object()

#: default reprs embed the object's address — hashing one would make the
#: "stable" key differ between two identical runs.
_ADDRESS_REPR = re.compile(r" at 0x[0-9a-fA-F]+")


def _feed(obj: Any, out: List[str]) -> None:
    """Append a canonical token stream for ``obj`` (order-stable)."""
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        out.append(f"{type(obj).__name__}:{obj!r}")
    elif is_dataclass(obj) and not isinstance(obj, type):
        out.append(f"@{type(obj).__qualname__}(")
        for f in fields(obj):
            out.append(f.name + "=")
            _feed(getattr(obj, f.name), out)
        out.append(")")
    elif isinstance(obj, (tuple, list)):
        out.append("[")
        for item in obj:
            _feed(item, out)
        out.append("]")
    elif isinstance(obj, Mapping):
        out.append("{")
        for key in sorted(obj, key=repr):
            _feed(key, out)
            out.append(":")
            _feed(obj[key], out)
        out.append("}")
    elif isinstance(obj, (set, frozenset)):
        out.append("<")
        for token in sorted(repr(item) for item in obj):
            out.append(token)
        out.append(">")
    else:
        # Fallback: the repr.  Only value-like reprs are trustworthy here;
        # an address-bearing default repr would silently poison every key
        # derived from it (and any persisted cache keyed by it), so it is
        # a hard error rather than a wrong answer.
        text = repr(obj)
        if _ADDRESS_REPR.search(text):
            raise TypeError(
                f"stable_hash: {type(obj).__qualname__} has an address-bearing "
                f"repr ({text[:80]!r}); give it a value-like repr or make it a "
                "dataclass before putting it in a config slice"
            )
        out.append(text)


def stable_hash(obj: Any) -> str:
    """Deterministic content hash of a (nested) config structure.

    Handles scalars, strings, tuples/lists, mappings, sets, and
    dataclasses recursively; stable across processes and sessions (no
    reliance on ``hash()``).  Objects that would fall back to an
    address-bearing default ``repr`` are rejected with :class:`TypeError`.
    """
    tokens: List[str] = []
    _feed(obj, tokens)
    digest = hashlib.sha256("\x1f".join(tokens).encode("utf-8", "replace"))
    return digest.hexdigest()[:20]


@dataclass(frozen=True)
class SettleOutcome:
    """How one :meth:`FlowContext.settle` request was satisfied.

    ``deduped`` is True when this request blocked on another request's
    in-flight computation of the same key and was then served its result
    — the single-flight path that turns N concurrent identical requests
    into one computation.
    """

    value: Any
    cache_hit: bool
    source: Optional[str]
    deduped: bool


class FlowContext:
    """Keyed artifact store with per-stage hit/miss accounting.

    One context can back many runs (and many :class:`PostOpcTimingFlow`
    objects — keys embed the flow's netlist/technology fingerprint, so
    different designs never collide), including *concurrent* runs: all
    tiers and counters are lock-protected, and :meth:`settle` provides
    single-flight per-key computation.

    ``cache_dir`` enables the persistent on-disk tier (one pickle + one
    hash sidecar per artifact); ``max_disk_bytes`` caps its total size
    with LRU eviction (file mtime is the recency clock — refreshed on
    every disk hit).
    """

    #: filename suffixes of the payload and its integrity sidecar
    DATA_SUFFIX = ".pkl"
    HASH_SUFFIX = ".sha256"

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_disk_bytes: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        #: deterministic fault injection for the chaos harness
        #: (:mod:`repro.flow.chaos`); None in production
        self.fault_plan = fault_plan
        self._artifacts: Dict[str, Any] = {}
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}
        self.cache_dir = cache_dir
        self.max_disk_bytes = max_disk_bytes
        #: where the most recent successful lookup was served from
        #: ("memory" | "disk" | None) — kept for single-threaded callers;
        #: concurrent callers must use :meth:`fetch`, which returns the
        #: source alongside the value instead of racing on this attribute.
        self.last_hit_source: Optional[str] = None
        #: memory-tier accounting (every fetch consults memory first)
        self.mem_lookups = 0
        self.mem_hits = 0
        self.mem_misses = 0
        #: disk-tier accounting
        self.disk_lookups = 0
        self.disk_hits = 0
        self.disk_misses = 0
        self.disk_writes = 0
        self.disk_evictions = 0
        self.disk_corruptions = 0
        self.disk_write_errors = 0
        #: single-flight accounting: requests served by another request's
        #: in-flight computation instead of recomputing
        self.deduped = 0
        #: guards the memory tier, every counter, and the key-lock table
        self._lock = threading.RLock()
        #: serializes disk mutation (store/evict/drop) against disk loads,
        #: so eviction can never tear an entry out from under a reader
        self._disk_lock = threading.RLock()
        #: per-key single-flight locks with reference counts
        self._key_locks: Dict[str, Tuple[threading.Lock, List[int]]] = {}
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._artifacts)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._artifacts:
                return True
        return self.cache_dir is not None and os.path.exists(self._data_path(key))

    # -- persistent tier -----------------------------------------------------

    def _data_path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, key + self.DATA_SUFFIX)

    def _hash_path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, key + self.HASH_SUFFIX)

    def _drop_entry(self, key: str) -> None:
        with self._disk_lock:
            for path in (self._data_path(key), self._hash_path(key)):
                try:
                    os.remove(path)
                except OSError:
                    pass

    def _disk_load(self, key: str) -> Any:
        """Load + verify one entry; :data:`MISSING` on absence/corruption.

        Holds the disk lock for the whole read-verify sequence, so a
        concurrent eviction or re-write can never produce a torn
        payload/sidecar pair (which would count as a spurious corruption).
        """
        with self._disk_lock:
            data_path = self._data_path(key)
            try:
                with open(data_path, "rb") as fh:
                    payload = fh.read()
            except FileNotFoundError:
                return MISSING
            except OSError:
                self._count("disk_corruptions")
                self._drop_entry(key)
                return MISSING
            if (self.fault_plan is not None
                    and self.fault_plan.trigger("disk-read", key) is not None):
                # Chaos: flip bytes so the sidecar check below catches it —
                # the real corruption path, not a shortcut around it.
                payload = b"\x00chaos" + payload
            try:
                with open(self._hash_path(key), "r") as fh:
                    expected = fh.read().strip()
                if hashlib.sha256(payload).hexdigest() != expected:
                    raise ValueError("integrity hash mismatch")
                value = pickle.loads(payload)
            # repro-lint: allow[broad-except] cache-corruption tolerance: recompute, never crash
            except Exception:
                # Truncated pickle, missing/garbled sidecar, unpicklable
                # class... all are recoverable: drop the entry and let the
                # stage recompute.
                self._count("disk_corruptions")
                self._drop_entry(key)
                return MISSING
            try:
                os.utime(data_path)  # refresh the LRU clock
            except OSError:
                pass
            return value

    def _disk_store(self, key: str, value: Any) -> None:
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        # repro-lint: allow[broad-except] unpicklable artifact degrades to memory-only, never crashes
        except Exception:
            self._count("disk_write_errors")
            return
        digest = hashlib.sha256(payload).hexdigest()
        with self._disk_lock:
            data_path = self._data_path(key)
            hash_path = self._hash_path(key)
            try:
                if (self.fault_plan is not None
                        and self.fault_plan.trigger("disk-write", key)
                        is not None):
                    raise OSError("chaos: injected disk write failure")
                # Write via temp files + rename so a concurrent reader never
                # sees a half-written payload (it would be caught by the hash
                # check anyway, but would count as a spurious corruption).
                tmp = data_path + ".tmp"
                with open(tmp, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, data_path)
                tmp = hash_path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(digest + "\n")
                os.replace(tmp, hash_path)
            except OSError:
                self._count("disk_write_errors")
                self._drop_entry(key)
                return
            self._count("disk_writes")
            self._enforce_size_cap()

    def _disk_entries(self) -> List[Tuple[float, int, str]]:
        """(mtime, total bytes, key) per persisted entry, oldest first."""
        assert self.cache_dir is not None
        entries: List[Tuple[float, int, str]] = []
        for name in os.listdir(self.cache_dir):
            if not name.endswith(self.DATA_SUFFIX):
                continue
            key = name[: -len(self.DATA_SUFFIX)]
            try:
                stat = os.stat(self._data_path(key))
                size = stat.st_size
                try:
                    size += os.stat(self._hash_path(key)).st_size
                except OSError:
                    pass
                entries.append((stat.st_mtime, size, key))
            except OSError:
                continue
        entries.sort()
        return entries

    def _enforce_size_cap(self) -> None:
        if self.max_disk_bytes is None:
            return
        with self._disk_lock:
            entries = self._disk_entries()
            total = sum(size for _, size, _ in entries)
            # Evict least-recently-used first; the newest entry always
            # survives (evicting what was just written would make the
            # cache a no-op).
            index = 0
            while total > self.max_disk_bytes and index < len(entries) - 1:
                _, size, key = entries[index]
                self._drop_entry(key)
                self._count("disk_evictions")
                total -= size
                index += 1

    def flush(self) -> None:
        """Make the persistent tier durable before the process exits.

        Stores are write-through (every artifact hits disk at ``store``
        time), so this only fsyncs the cache directory entry — the
        renames of the atomic-write protocol survive power loss.  Called
        by the flow's graceful-interruption path; a no-op without a
        ``cache_dir``.
        """
        if self.cache_dir is None:
            return
        try:
            fd = os.open(self.cache_dir, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        except OSError:
            pass

    def disk_usage(self) -> Tuple[int, int]:
        """(entry count, total bytes) of the persistent tier (0, 0 if off)."""
        if self.cache_dir is None:
            return (0, 0)
        with self._disk_lock:
            entries = self._disk_entries()
        return (len(entries), sum(size for _, size, _ in entries))

    # -- lookup / store ------------------------------------------------------

    def _count(self, counter: str, amount: int = 1) -> None:
        """Locked increment of one integer counter attribute."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def fetch(self, key: str) -> Tuple[Any, Optional[str]]:
        """(artifact, source tier) — (:data:`MISSING`, None) on a miss.

        The concurrency-safe primitive behind :meth:`lookup`: the tier
        the value came from is returned instead of being parked on the
        shared :attr:`last_hit_source` attribute.  Disk hits are promoted
        into memory atomically — a racing :meth:`store` of the same key
        wins and the promote keeps its value.
        """
        with self._lock:
            self.mem_lookups += 1
            if key in self._artifacts:
                self.mem_hits += 1
                self.last_hit_source = "memory"
                return self._artifacts[key], "memory"
            self.mem_misses += 1
        if self.cache_dir is not None:
            self._count("disk_lookups")
            value = self._disk_load(key)
            if value is not MISSING:
                with self._lock:
                    self.disk_hits += 1
                    # Atomic promote: never clobber a concurrent store.
                    value = self._artifacts.setdefault(key, value)
                    self.last_hit_source = "disk"
                return value, "disk"
            self._count("disk_misses")
        with self._lock:
            self.last_hit_source = None
        return MISSING, None

    def lookup(self, key: str) -> Any:
        """The stored artifact, or :data:`MISSING`.

        Checks the in-memory tier first, then (when ``cache_dir`` is set)
        the on-disk tier; disk hits are promoted into memory.
        :attr:`last_hit_source` records where the value came from — under
        concurrency prefer :meth:`fetch`, which returns the source.
        """
        value, _ = self.fetch(key)
        return value

    def store(self, key: str, value: Any) -> None:
        with self._lock:
            self._artifacts[key] = value
        if self.cache_dir is not None:
            self._disk_store(key, value)

    def count_hit(self, stage: str) -> None:
        with self._lock:
            self.hits[stage] = self.hits.get(stage, 0) + 1

    def count_miss(self, stage: str) -> None:
        with self._lock:
            self.misses[stage] = self.misses.get(stage, 0) + 1

    # -- single-flight -------------------------------------------------------

    def _acquire_key_ref(self, key: str) -> threading.Lock:
        with self._lock:
            entry = self._key_locks.get(key)
            if entry is None:
                entry = (threading.Lock(), [0])
                self._key_locks[key] = entry
            entry[1][0] += 1
            return entry[0]

    def _release_key_ref(self, key: str) -> None:
        with self._lock:
            entry = self._key_locks[key]
            entry[1][0] -= 1
            if entry[1][0] == 0:
                del self._key_locks[key]

    @contextmanager
    def single_flight(self, key: str) -> Iterator[bool]:
        """Hold ``key``'s per-key lock; yields True when the lock was
        contended (another request was in flight for the same key when
        this one arrived — the caller is about to be served its result).
        """
        lock = self._acquire_key_ref(key)
        contended = not lock.acquire(blocking=False)
        if contended:
            lock.acquire()
        try:
            yield contended
        finally:
            lock.release()
            self._release_key_ref(key)

    def settle(self, stage: str, key: str, compute: Callable[[], Any]) -> SettleOutcome:
        """Serve ``key`` from cache or compute-and-store it, exactly once.

        Concurrent ``settle`` calls for the same key form a single-flight
        group: one computes, the rest block on the per-key lock and are
        then served the cached result (``deduped=True``, counted on
        :attr:`deduped`).  Hit/miss accounting lands on ``stage`` exactly
        as the serial path records it.  If ``compute`` raises, nothing is
        stored and the next waiter gets its own chance to compute.
        """
        with self.single_flight(key) as contended:
            value, source = self.fetch(key)
            if value is not MISSING:
                self.count_hit(stage)
                if contended:
                    self._count("deduped")
                return SettleOutcome(value, True, source, contended)
            self.count_miss(stage)
            value = compute()
            self.store(key, value)
            return SettleOutcome(value, False, None, False)

    def memo(self, stage: str, key: str, compute: Callable[[], Any]) -> Any:
        """Compute-once helper for intra-stage shared work (e.g. the
        rule-OPC base mask shared by the rule/model/selective modes).
        Single-flight under concurrency: the rule base is computed once
        even when the rule, model and selective OPC stages run at the
        same time."""
        return self.settle(stage, key, compute).value

    # -- accounting ----------------------------------------------------------

    def consistency(self) -> List[str]:
        """Violated counter invariants (empty when the books balance).

        Meaningful at quiescence (no settle in flight): every lookup is
        either a memory hit or a memory miss, every memory miss consults
        the disk tier when one is configured, and every disk consult is
        either a hit or a miss.  A non-empty result means an unlocked
        increment raced — the accounting can no longer prove dedup/hit
        claims.
        """
        problems: List[str] = []
        with self._lock:
            if self.mem_lookups != self.mem_hits + self.mem_misses:
                problems.append(
                    f"memory tier: {self.mem_lookups} lookups != "
                    f"{self.mem_hits} hits + {self.mem_misses} misses"
                )
            if self.disk_lookups != self.disk_hits + self.disk_misses:
                problems.append(
                    f"disk tier: {self.disk_lookups} lookups != "
                    f"{self.disk_hits} hits + {self.disk_misses} misses"
                )
            if self.cache_dir is not None and self.disk_lookups != self.mem_misses:
                problems.append(
                    f"tier chain: {self.mem_misses} memory misses != "
                    f"{self.disk_lookups} disk lookups"
                )
        return problems

    def stats(self) -> Dict[str, object]:
        with self._lock:
            stages: Set[str] = set(self.hits) | set(self.misses)
            stage_stats = {
                name: {
                    "hits": self.hits.get(name, 0),
                    "misses": self.misses.get(name, 0),
                }
                for name in sorted(stages)
            }
            memory = {
                "lookups": self.mem_lookups,
                "hits": self.mem_hits,
                "misses": self.mem_misses,
                "entries": len(self._artifacts),
            }
            disk = {
                "enabled": self.cache_dir is not None,
                "lookups": self.disk_lookups,
                "hits": self.disk_hits,
                "misses": self.disk_misses,
                "writes": self.disk_writes,
                "evictions": self.disk_evictions,
                "corruptions": self.disk_corruptions,
                "write_errors": self.disk_write_errors,
            }
            deduped = self.deduped
        entries, total_bytes = self.disk_usage()
        disk["entries"] = entries
        disk["bytes"] = total_bytes
        return {
            "entries": memory["entries"],
            "stages": stage_stats,
            "memory": memory,
            "disk": disk,
            "deduped": deduped,
            "consistent": not self.consistency(),
        }

    def summary(self) -> str:
        parts = []
        stats = self.stats()
        stage_stats = stats["stages"]
        assert isinstance(stage_stats, dict)
        for name, counts in stage_stats.items():
            parts.append(f"{name} {counts['hits']}h/{counts['misses']}m")
        text = f"{stats['entries']} artifacts; " + ", ".join(parts)
        if stats["deduped"]:
            text += f"; {stats['deduped']} deduped in flight"
        if self.cache_dir is not None:
            disk = stats["disk"]
            assert isinstance(disk, dict)
            text += (
                f"; disk {disk['hits']}h/{disk['misses']}m"
                f" ({disk['entries']} files, {disk['bytes'] / 1e6:.1f} MB"
                f", {disk['evictions']} evicted"
                f", {disk['corruptions']} corrupt)"
            )
        return text
