"""Content-addressed artifact store shared between flow runs.

Each stage of the flow graph hashes the *slice* of the configuration that
can change its output (plus the keys of its upstream stages, Merkle
style) into an artifact key.  Two runs whose configs agree on a stage's
slice share that stage's artifacts: a ``selective``-mode run re-uses the
placement, drawn-STA and rule-OPC products of an earlier ``rule``-mode
run, and a process-corner sweep re-uses everything upstream of
lithography.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from typing import Any, Callable, Dict, List, Mapping, Set, Tuple

#: sentinel distinguishing "no entry" from a stored None
MISSING = object()


def _feed(obj: Any, out: List[str]) -> None:
    """Append a canonical token stream for ``obj`` (order-stable)."""
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        out.append(f"{type(obj).__name__}:{obj!r}")
    elif is_dataclass(obj) and not isinstance(obj, type):
        out.append(f"@{type(obj).__qualname__}(")
        for f in fields(obj):
            out.append(f.name + "=")
            _feed(getattr(obj, f.name), out)
        out.append(")")
    elif isinstance(obj, (tuple, list)):
        out.append("[")
        for item in obj:
            _feed(item, out)
        out.append("]")
    elif isinstance(obj, Mapping):
        out.append("{")
        for key in sorted(obj, key=repr):
            _feed(key, out)
            out.append(":")
            _feed(obj[key], out)
        out.append("}")
    elif isinstance(obj, (set, frozenset)):
        out.append("<")
        for token in sorted(repr(item) for item in obj):
            out.append(token)
        out.append(">")
    else:
        # Fallback: the repr.  Fine for value-like objects; objects with
        # default (address-bearing) reprs should not appear in config slices.
        out.append(repr(obj))


def stable_hash(obj: Any) -> str:
    """Deterministic content hash of a (nested) config structure.

    Handles scalars, strings, tuples/lists, mappings, sets, and
    dataclasses recursively; stable across processes and sessions (no
    reliance on ``hash()``).
    """
    tokens: List[str] = []
    _feed(obj, tokens)
    digest = hashlib.sha256("\x1f".join(tokens).encode("utf-8", "replace"))
    return digest.hexdigest()[:20]


class FlowContext:
    """Keyed artifact store with per-stage hit/miss accounting.

    One context can back many runs (and many :class:`PostOpcTimingFlow`
    objects — keys embed the flow's netlist/technology fingerprint, so
    different designs never collide).
    """

    def __init__(self):
        self._artifacts: Dict[str, Any] = {}
        self.hits: Dict[str, int] = {}
        self.misses: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._artifacts)

    def __contains__(self, key: str) -> bool:
        return key in self._artifacts

    def lookup(self, key: str) -> Any:
        """The stored artifact, or :data:`MISSING`."""
        return self._artifacts.get(key, MISSING)

    def store(self, key: str, value: Any) -> None:
        self._artifacts[key] = value

    def count_hit(self, stage: str) -> None:
        self.hits[stage] = self.hits.get(stage, 0) + 1

    def count_miss(self, stage: str) -> None:
        self.misses[stage] = self.misses.get(stage, 0) + 1

    def memo(self, stage: str, key: str, compute: Callable[[], Any]) -> Any:
        """Compute-once helper for intra-stage shared work (e.g. the
        rule-OPC base mask shared by the rule/model/selective modes)."""
        value = self.lookup(key)
        if value is not MISSING:
            self.count_hit(stage)
            return value
        self.count_miss(stage)
        value = compute()
        self.store(key, value)
        return value

    def stats(self) -> Dict[str, object]:
        stages: Set[str] = set(self.hits) | set(self.misses)
        return {
            "entries": len(self._artifacts),
            "stages": {
                name: {"hits": self.hits.get(name, 0), "misses": self.misses.get(name, 0)}
                for name in sorted(stages)
            },
        }

    def summary(self) -> str:
        parts = []
        for name, counts in self.stats()["stages"].items():
            parts.append(f"{name} {counts['hits']}h/{counts['misses']}m")
        return f"{len(self._artifacts)} artifacts; " + ", ".join(parts)
