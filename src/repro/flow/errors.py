"""Structured error taxonomy for the flow.

Every failure mode the run layer distinguishes gets its own class, with a
process exit code the CLI maps one-to-one (the exit-code contract of the
``flow``/``sweep`` commands):

* ``0`` — run completed;
* ``2`` — :class:`FlowInterrupted`: SIGINT/SIGTERM, in-flight stage
  settled, cache flushed, journal carries an ``interrupted`` record;
* ``3`` — :class:`InputValidationError`: a config/design input was
  rejected up front (the offending field is named);
* ``4`` — :class:`QuarantineExceededError`: so many gates fell back to
  drawn CDs that the timing numbers no longer rest on real extraction;
* ``1`` — any other :class:`FlowError` (notably :class:`StageError`).

:class:`InputValidationError` also subclasses :class:`ValueError` so
callers that predate the taxonomy (``pytest.raises(ValueError)``) keep
working.
"""

from __future__ import annotations

from typing import Iterable, Optional

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_INTERRUPTED = 2
EXIT_VALIDATION = 3
EXIT_QUARANTINE = 4


class FlowError(Exception):
    """Base of every structured flow failure."""

    exit_code = EXIT_FAILURE


class InputValidationError(FlowError, ValueError):
    """A config or design input was rejected before any stage ran.

    ``field`` names the offending knob (``"netlist"``, ``"opc_mode"``,
    ``"n_critical_paths"``...) so callers and tests can pin which check
    fired.
    """

    exit_code = EXIT_VALIDATION

    def __init__(self, field: str, message: str) -> None:
        super().__init__(f"{field}: {message}")
        self.field = field


class GraphValidationError(InputValidationError):
    """The stage graph is not a well-formed DAG.

    Raised by :meth:`~repro.flow.stages.StageGraph.validate` before any
    stage runs.  ``kind`` pins the defect class so callers and tests can
    assert which invariant broke:

    * ``"missing-producer"`` — a stage ``requires()`` a stage name that
      no member of the graph carries;
    * ``"duplicate-producer"`` — two stages ``provides()`` the same
      artifact name, so the merged artifact dict would be
      schedule-dependent;
    * ``"cycle"`` — the ``requires()`` edges contain a dependency cycle.

    Subclasses :class:`InputValidationError` (exit code 3): a malformed
    graph is a rejected input, not a mid-run stage failure.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__("graph", f"[{kind}] {message}")
        self.kind = kind


class ServiceRejectedError(FlowError):
    """The flow service refused a request before it became a job.

    Backpressure (a full bounded queue), an unknown design, or a
    malformed config all reject at submit time — the request never
    consumes scheduler capacity.  ``reason`` is machine-readable
    (``"queue-full"``, ``"unknown-design"``, ``"bad-config"``,
    ``"stopped"``, ``"unknown-job"``, ``"failed-job"``,
    ``"circuit-open"``, ``"deadline"``, ``"timeout"``).
    ``retry_after`` (seconds) is set when the rejection is transient —
    today only ``circuit-open`` — so clients can back off precisely
    instead of hammering the breaker.
    """

    def __init__(self, reason: str, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"[{reason}] {message}")
        self.reason = reason
        self.retry_after = retry_after


class StageError(FlowError):
    """A stage of the graph failed; wraps the original exception.

    Carries the stage name and its artifact key so an operator can tell
    exactly which node of which run died — and which cache entry (if any)
    to inspect.  The original exception is both chained (``__cause__``)
    and kept as :attr:`cause`.
    """

    def __init__(self, stage: str, key: Optional[str], cause: BaseException) -> None:
        super().__init__(
            f"stage {stage!r} failed"
            + (f" (artifact {key})" if key else "")
            + f": {type(cause).__name__}: {cause}"
        )
        self.stage = stage
        self.key = key
        self.cause = cause


class QuarantineExceededError(FlowError):
    """Too many gates were quarantined for the timing to be trusted."""

    exit_code = EXIT_QUARANTINE

    def __init__(
        self, fraction: float, threshold: float, quarantined: Iterable[str]
    ) -> None:
        quarantined = sorted(quarantined)
        preview = ", ".join(quarantined[:8])
        if len(quarantined) > 8:
            preview += ", ..."
        super().__init__(
            f"quarantined fraction {fraction:.1%} exceeds threshold "
            f"{threshold:.1%} ({len(quarantined)} gates: {preview})"
        )
        self.fraction = fraction
        self.threshold = threshold
        self.quarantined = quarantined


class FlowInterrupted(FlowError):
    """The run was stopped by SIGINT/SIGTERM between stages.

    The in-flight stage was allowed to settle (its artifacts are cached
    and journaled); ``next_stage`` is the stage that would have run next.
    """

    exit_code = EXIT_INTERRUPTED

    def __init__(self, signal_name: str, next_stage: Optional[str] = None) -> None:
        where = f" before stage {next_stage!r}" if next_stage else ""
        super().__init__(f"interrupted by {signal_name}{where}")
        self.signal_name = signal_name
        self.next_stage = next_stage
