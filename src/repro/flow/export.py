"""GDSII export of flow artifacts.

Writes one stream file carrying the design-intent poly, the OPC mask, and
(optionally) simulated printed contours for a clip region — the layers a
DFM engineer loads side by side to review a hotspot.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.flow.postopc import FlowReport, PostOpcTimingFlow
from repro.gds import Layout, write_gds
from repro.geometry import Rect
from repro.pdk import Layers


def export_flow_gds(
    flow: PostOpcTimingFlow,
    report: FlowReport,
    path: str,
    contour_region: Optional[Rect] = None,
) -> Layout:
    """Write drawn + mask (+ printed contours) layers to ``path``.

    ``contour_region``: if given, printed resist contours are simulated for
    that clip and stored on the POLY printed-variant layer.  Returns the
    in-memory layout (also written to disk).
    """
    # 0.1 nm database unit keeps the smooth simulated contours faithful.
    layout = Layout(
        name=f"{report.netlist_name.upper()}_{report.opc_mode.upper()}", unit_nm=0.1
    )
    top = layout.new_cell("FLOW")

    for _, poly in flow.owned_polygons:
        top.add_polygon(Layers.POLY, poly)
    for poly in report.mask_polygons:
        top.add_polygon(Layers.POLY_OPC, poly)

    if contour_region is not None:
        contours = flow.simulator.printed_contours(
            report.mask_polygons, contour_region
        )
        for contour in contours:
            # Contours are smooth polylines; snap to the 0.1 nm output grid
            # so the int32 stream coordinates stay faithful.
            top.add_polygon(Layers.POLY_PRINTED, contour.snapped(0.1))

    # Annotate measured gates: a marker box per failed (unprintable) gate.
    # Index the rects by owning instance once; rescanning the full rect map
    # per failed gate is O(failed x rects) on a bad-litho full chip.
    rects_by_owner: Dict[str, List[Rect]] = {}
    for (owner, _), rect in flow.gate_rects.items():
        rects_by_owner.setdefault(owner, []).append(rect)
    for gate_name in report.failed_gates:
        for rect in rects_by_owner.get(gate_name, ()):
            top.add_rect(Layers.BOUNDARY, rect)

    write_gds(layout, path)
    return layout
