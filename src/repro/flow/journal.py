"""Run durability: the append-only run journal and graceful interruption.

A :class:`RunJournal` lives in a *run directory* (``--run-dir``) and
records the run as an append-only ``journal.jsonl``: a ``manifest`` line
(run id, flow fingerprint, config hash), one ``stage`` line per settled
stage (artifact key, wall time, cache tier, counters), per-mode lines for
sweeps, and a terminal ``complete`` / ``interrupted`` / ``failed`` line.
Every line is flushed and fsynced, so even a SIGKILLed process leaves a
consistent prefix on disk; a torn final line (the process died mid-write)
is tolerated on read.

Resume (``--resume``) replays the journal: the manifest is checked
against the current flow fingerprint and config hash (a mismatched resume
is an :class:`~repro.flow.errors.InputValidationError`, not a silently
wrong run), and the run directory's artifact cache serves every journaled
stage, so only post-interrupt work is computed.

:class:`InterruptGuard` implements the graceful-stop contract: the first
SIGINT/SIGTERM sets a flag that the stage graph checks *between* stages —
the in-flight stage settles, its artifacts are persisted, and the run
exits with :class:`~repro.flow.errors.FlowInterrupted` (exit code 2).  A
second signal aborts immediately via :class:`KeyboardInterrupt`.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import uuid
from types import FrameType
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    TextIO,
)

if TYPE_CHECKING:
    from repro.flow.chaos import FaultPlan
    from repro.flow.trace import StageRecord

from repro.flow.errors import FlowInterrupted, InputValidationError

#: schema version stamped on every manifest (bump on incompatible change)
JOURNAL_VERSION = 1


class RunJournal:
    """Append-only journal of one (possibly multi-session) run.

    Open with :meth:`create` for a fresh run directory or :meth:`resume`
    to continue an interrupted one; ``cache_subdir`` names the artifact
    cache that makes the replay cheap.
    """

    FILENAME = "journal.jsonl"
    CACHE_SUBDIR = "cache"

    def __init__(self, run_dir: str,
                 fault_plan: Optional["FaultPlan"] = None) -> None:
        self.run_dir = run_dir
        self.path = os.path.join(run_dir, self.FILENAME)
        self._fh: Optional[TextIO] = None
        #: deterministic write-fault injection (chaos harness); None in
        #: production
        self.fault_plan = fault_plan
        #: callbacks invoked with each successfully appended record — the
        #: flow service hangs its hung-stage heartbeat off these
        self._listeners: List[Callable[[Dict[str, Any]], None]] = []
        #: appends may come from scheduler worker threads concurrently;
        #: the lock keeps each JSON line whole
        self._write_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, run_dir: str, manifest: Dict[str, Any],
               fault_plan: Optional["FaultPlan"] = None) -> "RunJournal":
        """Start a fresh journal; refuses a directory that already has one
        (pass ``--resume`` or pick a new directory instead of silently
        clobbering an earlier run's history)."""
        journal = cls(run_dir, fault_plan=fault_plan)
        if journal.exists():
            raise InputValidationError(
                "run_dir",
                f"{run_dir} already contains a journal; "
                "pass --resume to continue it or choose a fresh directory",
            )
        os.makedirs(run_dir, exist_ok=True)
        journal.append("manifest", run_id=uuid.uuid4().hex[:12],
                       version=JOURNAL_VERSION, **manifest)
        return journal

    @classmethod
    def resume(cls, run_dir: str, manifest: Dict[str, Any],
               fault_plan: Optional["FaultPlan"] = None) -> "RunJournal":
        """Reopen an interrupted run, verifying it is the *same* run.

        The journaled fingerprint and config hash must match the current
        invocation — resuming with a different design or config would
        serve artifacts that do not belong to it.
        """
        journal = cls(run_dir, fault_plan=fault_plan)
        if not journal.exists():
            raise InputValidationError(
                "run_dir", f"{run_dir} has no journal to resume"
            )
        recorded = journal.manifest()
        if recorded is None:
            raise InputValidationError(
                "run_dir", f"{journal.path} has no readable manifest record"
            )
        for field in ("fingerprint", "config_hash"):
            want, got = manifest.get(field), recorded.get(field)
            if want is not None and got is not None and want != got:
                raise InputValidationError(
                    "run_dir",
                    f"journal {field} {got} does not match this invocation "
                    f"({want}); --resume must replay the same design+config",
                )
        journal.append("resumed", run_id=recorded.get("run_id"))
        return journal

    def exists(self) -> bool:
        return os.path.exists(self.path) and os.path.getsize(self.path) > 0

    @property
    def cache_dir(self) -> str:
        """The run directory's artifact cache (what makes resume cheap)."""
        return os.path.join(self.run_dir, self.CACHE_SUBDIR)

    def close(self) -> None:
        with self._write_lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- writing -------------------------------------------------------------

    def add_listener(self, listener: Callable[[Dict[str, Any]], None]) -> None:
        """Register a callback fired (outside the write lock) after each
        successful append — the service's hung-stage watchdog listens here
        for scheduler heartbeats.  Listener errors are swallowed: telemetry
        must never fail the run."""
        with self._write_lock:
            self._listeners.append(listener)

    def append(self, record_type: str, **payload: Any) -> Dict[str, Any]:
        """Append one record; flushed and fsynced so a kill -9 an instant
        later still finds it on disk."""
        if (self.fault_plan is not None
                and self.fault_plan.trigger("journal-write", record_type)
                is not None):
            raise OSError("chaos: injected journal write failure")
        record = {"type": record_type, **payload}
        with self._write_lock:
            if self._fh is None:
                os.makedirs(self.run_dir, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(record)
            # repro-lint: allow[broad-except] observability hook: a bad listener must not fail the journaled run
            except Exception:
                pass
        return record

    def record_stage(self, record: "StageRecord", key: str,
                     quarantined: int = 0) -> None:
        """Journal one settled stage (live or cache-served)."""
        self.append(
            "stage",
            name=record.name,
            key=key,
            wall_s=round(record.wall_s, 6),
            cache_hit=record.cache_hit,
            cache_source=record.cache_source,
            counters=dict(record.counters),
            quarantined_gates=quarantined,
        )

    def record_mode(self, mode: str, status: str, detail: str = "") -> None:
        """Journal one sweep mode's outcome (``ok`` / ``failed``)."""
        self.append("mode", mode=mode, status=status, detail=detail)

    def record_event(self, event: str, stage: str, key: str = "",
                     **extra: Any) -> None:
        """Journal one scheduler event (``ready``/``start``/``done``/
        ``deduped``).

        Pure bookkeeping for observability and post-mortems: the resume
        path replays only ``stage`` records, and readers that predate the
        scheduler skip the unknown type (the torn-line-tolerant contract
        of :meth:`records`).  No timestamps on purpose — wall-clock facts
        live in the ``stage`` records' telemetry.
        """
        self.append("scheduler", event=event, stage=stage, key=key, **extra)

    def record_interrupted(self, signal_name: str,
                           next_stage: Optional[str] = None) -> None:
        self.append("interrupted", signal=signal_name, next_stage=next_stage)

    def record_complete(self, **summary: Any) -> None:
        self.append("complete", **summary)

    def record_failed(self, error: BaseException) -> None:
        self.append("failed", error=f"{type(error).__name__}: {error}")

    # -- reading -------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Every parseable record, oldest first.

        A torn final line (the writer was killed mid-append) or stray
        garbage is skipped rather than raised — the journal must be
        readable after any crash.
        """
        if not os.path.exists(self.path):
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and "type" in record:
                    out.append(record)
        return out

    def manifest(self) -> Optional[Dict[str, Any]]:
        for record in self.records():
            if record["type"] == "manifest":
                return record
        return None

    def stage_records(self) -> List[Dict[str, Any]]:
        return [r for r in self.records() if r["type"] == "stage"]

    def completed_stage_keys(self) -> Dict[str, str]:
        """Stage name -> artifact key of its most recent settled record."""
        keys: Dict[str, str] = {}
        for record in self.stage_records():
            keys[record["name"]] = record["key"]
        return keys

    def was_interrupted(self) -> bool:
        records = self.records()
        terminal = [r for r in records
                    if r["type"] in ("interrupted", "complete", "failed")]
        return bool(terminal) and terminal[-1]["type"] == "interrupted"

    def terminal_state(self) -> Optional[str]:
        """``"complete"``/``"failed"`` if the run settled, else None.

        A journal with no terminal record belongs to a run whose process
        died (or is still running) — the service's orphan scan re-enqueues
        those on startup.  ``interrupted`` is deliberately *not* terminal:
        an interrupted run is resumable by contract.
        """
        state: Optional[str] = None
        for record in self.records():
            if record["type"] in ("complete", "failed"):
                state = record["type"]
        return state


class InterruptGuard:
    """Scoped SIGINT/SIGTERM handler implementing graceful interruption.

    Inside the ``with`` block the first signal only sets
    :attr:`interrupted`; the stage graph polls :meth:`checkpoint` between
    stages, so the in-flight stage settles (and is cached + journaled)
    before :class:`FlowInterrupted` unwinds the run.  A second signal
    raises :class:`KeyboardInterrupt` immediately — the operator insisting
    beats graceful.  Handlers are restored on exit.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.interrupted: Optional[str] = None
        self._previous: Dict[int, Any] = {}

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        name = signal.Signals(signum).name
        if self.interrupted is not None:
            raise KeyboardInterrupt(name)
        self.interrupted = name

    def __enter__(self) -> "InterruptGuard":
        for sig in self.SIGNALS:
            try:
                self._previous[sig] = signal.signal(sig, self._handle)
            except ValueError:
                # Not the main thread: polling still works via .interrupted
                # set by the owner; signals stay with the default handler.
                pass
        return self

    def __exit__(self, *exc: object) -> None:
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)
        self._previous.clear()

    def checkpoint(self, next_stage: Optional[str] = None) -> None:
        """Raise :class:`FlowInterrupted` if a stop was requested."""
        if self.interrupted is not None:
            raise FlowInterrupted(self.interrupted, next_stage=next_stage)
