"""Work distribution for the flow's embarrassingly-parallel inner loops.

The two hot loops — model-OPC tile correction and per-tile gate
metrology — are expressed as work-lists of picklable tasks and dispatched
through a :class:`ParallelExecutor`.  Backends:

* ``serial``  — plain loop in the calling process (the default, and the
  reference the others must match bit-for-bit);
* ``thread``  — a thread pool; shares the caller's simulator (and its
  SOCS kernel cache) without pickling;
* ``process`` — a process pool; tasks are chunked so each worker unpickles
  the simulator once and builds its SOCS kernel cache once, then streams
  through its whole chunk.

Results are returned in task order regardless of backend, so parallel
runs are numerically identical to serial ones.  Consumers below the flow
layer (metrology, OPC) accept an executor by duck type only — they never
import this module, preserving the bottom-up layering.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, List, Sequence, Tuple

BACKENDS = ("serial", "thread", "process")


def split_chunks(items: Sequence[Any], n: int) -> List[List[Any]]:
    """Split ``items`` into at most ``n`` contiguous, balanced chunks."""
    items = list(items)
    n = max(1, min(n, len(items)))
    base, extra = divmod(len(items), n)
    chunks: List[List[Any]] = []
    start = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return [c for c in chunks if c]


class ParallelExecutor:
    """Maps a chunk worker over a task list with a configurable backend."""

    def __init__(self, backend: str = "serial", jobs: int = 1):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.backend = backend
        self.jobs = jobs

    @staticmethod
    def from_jobs(jobs: int) -> "ParallelExecutor":
        """The natural executor for a ``--jobs N`` knob."""
        if jobs <= 1:
            return ParallelExecutor("serial", 1)
        return ParallelExecutor("process", jobs)

    def __repr__(self):
        return f"ParallelExecutor(backend={self.backend!r}, jobs={self.jobs})"

    # -- dispatch -----------------------------------------------------------

    def map_chunks(
        self,
        worker: Callable[[Tuple[Any, List[Any]]], List[Any]],
        shared: Any,
        tasks: Sequence[Any],
    ) -> List[Any]:
        """Run ``worker((shared, chunk))`` over chunks of ``tasks``.

        ``worker`` must be a module-level (picklable) callable returning one
        result per task, in order; ``shared`` is the per-chunk payload
        (typically the simulator) shipped once per worker.  The flattened,
        task-ordered result list is returned.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self.backend == "serial" or self.jobs == 1 or len(tasks) == 1:
            return list(worker((shared, tasks)))

        chunks = split_chunks(tasks, self.jobs)
        payloads = [(shared, chunk) for chunk in chunks]
        if self.backend == "thread":
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
                chunk_results = list(pool.map(worker, payloads))
        else:
            from concurrent.futures import ProcessPoolExecutor

            context = None
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(
                max_workers=len(chunks), mp_context=context
            ) as pool:
                chunk_results = list(pool.map(worker, payloads))
        return [result for chunk in chunk_results for result in chunk]
