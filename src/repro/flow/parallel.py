"""Work distribution for the flow's embarrassingly-parallel inner loops.

The two hot loops — model-OPC tile correction and per-tile gate
metrology — are expressed as work-lists of picklable tasks and dispatched
through a :class:`ParallelExecutor`.  Backends:

* ``serial``  — plain loop in the calling process (the default, and the
  reference the others must match bit-for-bit);
* ``thread``  — a thread pool; shares the caller's simulator (and its
  SOCS kernel cache) without pickling;
* ``process`` — a process pool; tasks are chunked so each worker unpickles
  the simulator once and builds its SOCS kernel cache once, then streams
  through its whole chunk.

Results are returned in task order regardless of backend, so parallel
runs are numerically identical to serial ones.  Consumers below the flow
layer (metrology, OPC) accept an executor by duck type only — they never
import this module, preserving the bottom-up layering.

Fault tolerance: a chunk that raises, times out (``chunk_timeout``), or
loses its worker process (``BrokenProcessPool``) is retried up to
``retries`` times in a fresh pool, then degraded to serial in-process
execution as a last resort.  Because chunk boundaries and the worker are
deterministic, results stay bit-identical to serial whatever failed.
Every failure/retry/degradation is counted on :attr:`ParallelExecutor.stats`
and (when the caller passes a ``counters`` dict) on the stage's trace
record.  :class:`FaultInjection` is the deterministic test hook: it makes
the first K worker calls fail, machine-wide, via atomically-claimed
marker files.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.flow.chaos import FaultPlan
from repro.flow.errors import InputValidationError

BACKENDS = ("serial", "thread", "process")

#: fault kinds the injection hook supports: raise an exception inside the
#: worker call, or hard-kill the worker process (-> BrokenProcessPool)
FAULT_KINDS = ("raise", "exit")


def split_chunks(items: Sequence[Any], n: int) -> List[List[Any]]:
    """Split ``items`` into at most ``n`` contiguous, balanced chunks."""
    items = list(items)
    n = max(1, min(n, len(items)))
    base, extra = divmod(len(items), n)
    chunks: List[List[Any]] = []
    start = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return [c for c in chunks if c]


@dataclass(frozen=True)
class FaultInjection:
    """Deterministic worker-fault test hook.

    The first ``fail_first`` worker calls — counted across *all* worker
    processes via exclusive-create marker files under ``marker_dir`` —
    fail; every later call (including the retry of a failed chunk) runs
    normally.  ``kind="raise"`` raises inside the call; ``kind="exit"``
    kills the worker process outright, breaking the whole pool.
    """

    marker_dir: str
    fail_first: int = 1
    kind: str = "raise"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InputValidationError(
                "kind", f"must be one of {FAULT_KINDS}, got {self.kind!r}"
            )

    def claim_token(self) -> Optional[int]:
        """Atomically claim one remaining failure token (None if spent)."""
        for index in range(self.fail_first):
            path = os.path.join(self.marker_dir, f"fault-{index}")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return index
        return None


def _fault_injected_chunk(payload: Tuple[Any, List[Any]]) -> List[Any]:
    """Module-level (picklable) wrapper applying a :class:`FaultInjection`."""
    (worker, injection, shared), chunk = payload
    token = injection.claim_token()
    if token is not None:
        if injection.kind == "exit":
            os._exit(43)
        raise RuntimeError(f"injected worker fault #{token}")
    return worker((shared, chunk))


class ParallelExecutor:
    """Maps a chunk worker over a task list with a configurable backend."""

    def __init__(
        self,
        backend: str = "serial",
        jobs: int = 1,
        retries: int = 0,
        chunk_timeout: Optional[float] = None,
        fault_injection: Optional[FaultInjection] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        # InputValidationError subclasses ValueError: pre-taxonomy callers
        # catching ValueError keep working, the CLI maps it to exit code 3.
        if backend not in BACKENDS:
            raise InputValidationError(
                "backend", f"must be one of {BACKENDS}, got {backend!r}"
            )
        if jobs < 1:
            raise InputValidationError("jobs", f"must be >= 1, got {jobs}")
        if retries < 0:
            raise InputValidationError("retries", f"must be >= 0, got {retries}")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise InputValidationError(
                "chunk_timeout", "must be positive (or None)"
            )
        self.backend = backend
        self.jobs = jobs
        self.retries = retries
        self.chunk_timeout = chunk_timeout
        self.fault_injection = fault_injection
        #: chaos-harness fault plan; ``chunk`` faults are consumed in the
        #: dispatching process *before* pool submit (a FaultPlan holds a
        #: lock and cannot be pickled into workers), so they only apply to
        #: the pooled path, not the serial fast path
        self.fault_plan = fault_plan
        #: cumulative fault-tolerance accounting across all map_chunks calls
        #: (an executor may be shared by concurrently-scheduled stages, so
        #: increments go through :attr:`_stats_lock`)
        self.stats: Dict[str, int] = {
            "chunk_failures": 0,
            "retries": 0,
            "degraded_chunks": 0,
            "abandoned": 0,
        }
        self._stats_lock = threading.Lock()

    @staticmethod
    def from_jobs(
        jobs: int,
        retries: int = 0,
        chunk_timeout: Optional[float] = None,
    ) -> "ParallelExecutor":
        """The natural executor for a ``--jobs N`` knob."""
        if jobs <= 1:
            return ParallelExecutor("serial", 1, retries=retries,
                                    chunk_timeout=chunk_timeout)
        return ParallelExecutor("process", jobs, retries=retries,
                                chunk_timeout=chunk_timeout)

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(backend={self.backend!r}, jobs={self.jobs}, "
            f"retries={self.retries})"
        )

    def stats_snapshot(self) -> Dict[str, int]:
        """Point-in-time copy of :attr:`stats`, taken under the stats
        lock so a concurrent :meth:`map_chunks` merge can't be observed
        half-applied."""
        with self._stats_lock:
            return dict(self.stats)

    # -- dispatch -----------------------------------------------------------

    def _make_pool(self, workers: int) -> Any:
        if self.backend == "thread":
            from concurrent.futures import ThreadPoolExecutor

            return ThreadPoolExecutor(max_workers=workers)
        from concurrent.futures import ProcessPoolExecutor

        context = None
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)

    def _run_round(
        self,
        worker: Callable[[Tuple[Any, List[Any]]], List[Any]],
        payloads: List[Tuple[Any, List[Any]]],
        indices: List[int],
    ) -> Tuple[Dict[int, List[Any]], List[int], int]:
        """One pool pass over ``indices``; returns
        ``(successes, failures, abandoned)``.

        Any per-chunk exception, timeout, or pool breakage marks that
        chunk failed and never propagates out of the round.  ``abandoned``
        counts failed futures that were still running when this round gave
        up on them (a timed-out thread keeps holding its thread; a broken
        pool's workers are gone) — the observable leaked-worker pressure.
        """
        successes: Dict[int, List[Any]] = {}
        failures: List[int] = []
        abandoned = 0
        to_submit: List[int] = []
        for idx in indices:
            if (self.fault_plan is not None
                    and self.fault_plan.trigger("chunk", str(idx)) is not None):
                # Injected worker kill: the chunk never reaches the pool,
                # exactly as if its worker died before reporting back.
                failures.append(idx)
            else:
                to_submit.append(idx)
        if not to_submit:
            return successes, failures, abandoned
        pool = self._make_pool(len(to_submit))
        clean_shutdown = True
        try:
            futures = [(idx, pool.submit(worker, payloads[idx]))
                       for idx in to_submit]
            for idx, future in futures:
                try:
                    successes[idx] = future.result(timeout=self.chunk_timeout)
                # repro-lint: allow[broad-except] fault tolerance: failed chunks are retried, then degraded to serial
                except Exception:
                    # Chunk exception, TimeoutError, or BrokenProcessPool
                    # (which also fails every later future of this pool).
                    failures.append(idx)
                    clean_shutdown = False
                    if not future.done():
                        abandoned += 1
        finally:
            # After a timeout or broken pool, waiting for stragglers could
            # block forever; abandon them and let the retry use a new pool.
            pool.shutdown(wait=clean_shutdown, cancel_futures=not clean_shutdown)
        return successes, failures, abandoned

    def map_chunks(
        self,
        worker: Callable[[Tuple[Any, List[Any]]], List[Any]],
        shared: Any,
        tasks: Sequence[Any],
        counters: Optional[Dict[str, float]] = None,
    ) -> List[Any]:
        """Run ``worker((shared, chunk))`` over chunks of ``tasks``.

        ``worker`` must be a module-level (picklable) callable returning one
        result per task, in order; ``shared`` is the per-chunk payload
        (typically the simulator) shipped once per worker.  The flattened,
        task-ordered result list is returned.

        Failed chunks are retried up to :attr:`retries` times, then run
        serially in-process; ``counters`` (a stage's trace counters dict)
        receives ``worker_failures`` / ``worker_retries`` /
        ``worker_degraded`` when provided.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self.fault_injection is not None:
            shared = (worker, self.fault_injection, shared)
            worker = _fault_injected_chunk
        if self.backend == "serial" or self.jobs == 1 or len(tasks) == 1:
            return list(worker((shared, tasks)))

        chunks = split_chunks(tasks, self.jobs)
        payloads = [(shared, chunk) for chunk in chunks]
        results: Dict[int, List[Any]] = {}
        pending = list(range(len(chunks)))
        failures = retried = degraded = abandoned = 0

        successes, failed, left_running = self._run_round(worker, payloads, pending)
        results.update(successes)
        failures += len(failed)
        abandoned += left_running
        for _ in range(self.retries):
            if not failed:
                break
            retried += len(failed)
            successes, failed, left_running = self._run_round(worker, payloads, failed)
            results.update(successes)
            failures += len(failed)
            abandoned += left_running

        # Last resort: the failed chunks run serially in this process, in
        # chunk order, preserving the task-ordered output exactly.
        for idx in sorted(failed):
            degraded += 1
            results[idx] = list(worker(payloads[idx]))

        with self._stats_lock:
            self.stats["chunk_failures"] += failures
            self.stats["retries"] += retried
            self.stats["degraded_chunks"] += degraded
            self.stats["abandoned"] += abandoned
        if counters is not None:
            counters["worker_failures"] = counters.get("worker_failures", 0) + failures
            counters["worker_retries"] = counters.get("worker_retries", 0) + retried
            counters["worker_degraded"] = counters.get("worker_degraded", 0) + degraded
            counters["worker_abandoned"] = counters.get("worker_abandoned", 0) + abandoned
        return [result for idx in range(len(chunks)) for result in results[idx]]
