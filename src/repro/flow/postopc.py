"""The post-OPC timing flow of the paper.

Pipeline (Yang/Capodieci/Sylvester, DAC 2005):

1. place the netlist and assemble the poly-layer layout,
2. run drawn-CD STA and **tag the critical gates** (top-K speed paths),
3. apply OPC — none / rule-based / full model-based / **selective**
   (model-based only on tagged critical gates, rule-based elsewhere),
4. simulate lithography and **extract printed CDs** at every transistor,
5. convert each printed gate to equivalent lengths and **back-annotate**
   per-instance derates,
6. re-run STA and compare: speed-path reordering, worst-slack change,
   leakage change.

:class:`PostOpcTimingFlow` is a facade over the stage graph in
:mod:`repro.flow.stages`: stages are cached in a
:class:`~repro.flow.context.FlowContext` (re-running with a different OPC
mode re-uses placement, drawn STA and the rule-OPC base), the tile loops
parallelize through a :class:`~repro.flow.parallel.ParallelExecutor`, and
every run carries a :class:`~repro.flow.trace.FlowTrace`.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    cast,
)

if TYPE_CHECKING:
    from repro.flow.journal import InterruptGuard, RunJournal
    from repro.flow.scheduler import StageScheduler

from repro.analysis import RankComparison, compare_rankings
from repro.cells import CellLibrary, build_library
from repro.circuits import Netlist
from repro.device import AlphaPowerModel
from repro.flow.context import FlowContext, stable_hash
from repro.flow.errors import (
    FlowInterrupted,
    InputValidationError,
    QuarantineExceededError,
)
from repro.flow.parallel import ParallelExecutor
from repro.flow.stages import StageGraph, default_stage_graph
from repro.flow.trace import FlowTrace
from repro.geometry import Polygon, Rect
from repro.litho.resist import NOMINAL, ProcessCondition
from repro.litho.simulator import LithographySimulator
from repro.metrology import CdStatistics, summarize_cds
from repro.metrology.gate_cd import GateCdMeasurement
from repro.opc import ModelOpcRecipe, OpcTileTask, RuleOpcRecipe, apply_rule_opc
from repro.opc.model_based import correct_tile_chunk
from repro.pdk import Layers, Technology
from repro.place import Placement, instance_gate_rects, place_rows
from repro.place.assembler import GateRectMap
from repro.timing import (
    InstanceDerate,
    StaEngine,
    StaResult,
    TimingConstraints,
    TimingPath,
    characterize_library,
    top_paths,
)
from repro.timing.incremental import retime as retime_sta
from repro.variation import DoseDefocusMap

OPC_MODES = ("none", "rule", "model", "selective")

#: auto-derived clock periods get this margin on the drawn critical delay
AUTO_PERIOD_MARGIN = 1.05


@dataclass(frozen=True)
class FlowConfig:
    """Knobs of one flow run."""

    opc_mode: str = "model"
    #: None derives the period from the drawn STA (margin on critical delay)
    clock_period_ps: Optional[float] = 1000.0
    n_critical_paths: int = 5
    n_slices: int = 5
    condition: ProcessCondition = NOMINAL
    #: optional across-chip dose/defocus map (overrides `condition` per tile)
    process_map: Optional[DoseDefocusMap] = None
    #: route the design and use realised wirelengths instead of HPWL
    use_routing: bool = False
    model_recipe: ModelOpcRecipe = field(default_factory=ModelOpcRecipe)
    #: None selects the node-fitted recipe (RuleOpcRecipe.for_tech)
    rule_recipe: Optional[RuleOpcRecipe] = None
    #: abort (exit code 4) when more than this fraction of gates had to be
    #: quarantined back to drawn CDs; below it the run completes with a
    #: degraded coverage fraction stamped on the report
    max_quarantine_fraction: float = 0.5
    #: 0 keeps the classic 512-px metrology tile path; >= 1 shards the
    #: layout into at least that many large halo-amortized windows (the
    #: scale path — measurements differ slightly from the tile path
    #: because the FFT window geometry differs, so this is a cache key)
    litho_shards: int = 0
    #: re-time the post-OPC STA incrementally from the drawn STA
    #: (cone-limited, bit-identical to a full run); False forces the
    #: full engine run
    incremental_sta: bool = True
    #: wall-clock budget for a service job running this config; the
    #: service watchdog fails the job (exit code 2, reason ``deadline``)
    #: when exceeded.  None = no per-config deadline (the service default
    #: or submit-time override may still apply).  Ignored by direct CLI
    #: ``flow`` runs — deadlines are a service-scheduling concern.
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        # InputValidationError subclasses ValueError, so pre-taxonomy
        # callers catching ValueError keep working.
        if self.opc_mode not in OPC_MODES:
            raise InputValidationError(
                "opc_mode", f"must be one of {OPC_MODES}, got {self.opc_mode!r}"
            )
        if self.clock_period_ps is not None and self.clock_period_ps <= 0:
            raise InputValidationError(
                "clock_period_ps", "must be positive (or None for auto)"
            )
        if self.n_critical_paths < 1:
            raise InputValidationError(
                "n_critical_paths", f"must be >= 1, got {self.n_critical_paths}"
            )
        if self.n_slices < 1:
            raise InputValidationError(
                "n_slices", f"must be >= 1, got {self.n_slices}"
            )
        if not (0.0 <= self.max_quarantine_fraction <= 1.0):
            raise InputValidationError(
                "max_quarantine_fraction",
                f"must be in [0, 1], got {self.max_quarantine_fraction}",
            )
        if self.litho_shards < 0:
            raise InputValidationError(
                "litho_shards",
                f"must be >= 0 (0 = tile path), got {self.litho_shards}",
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise InputValidationError(
                "deadline_s", "must be positive (or None for no deadline)"
            )


@dataclass
class FlowReport:
    """Everything the flow learned about one design."""

    netlist_name: str
    opc_mode: str
    drawn_sta: StaResult
    post_sta: StaResult
    drawn_paths: List[TimingPath]
    post_paths: List[TimingPath]
    rank: RankComparison
    cd_stats: CdStatistics
    measurements: Dict[Tuple[str, str], GateCdMeasurement]
    critical_gates: Set[str]
    mask_polygons: List[Polygon]
    model_corrected_polygons: int
    leakage_drawn: float
    leakage_post: float
    failed_gates: List[str]
    #: worst register hold slack before/after back-annotation (inf if no regs)
    hold_drawn: float = float("inf")
    hold_post: float = float("inf")
    #: per-stage wall time, cache hits and counters for this run
    trace: FlowTrace = field(default_factory=FlowTrace)
    #: gate instances whose extraction was quarantined (fell back to drawn
    #: CDs), with the first fault reason per gate
    quarantined_gates: List[str] = field(default_factory=list)
    quarantine_reasons: Dict[str, str] = field(default_factory=dict)
    #: fraction of gate instances whose timing rests on real extraction
    coverage: float = 1.0

    @property
    def runtimes(self) -> Dict[str, float]:
        """Stage name -> wall seconds (compatibility view of the trace)."""
        return self.trace.runtimes()

    @property
    def wns_drawn(self) -> float:
        return self.drawn_sta.wns

    @property
    def wns_post(self) -> float:
        return self.post_sta.wns

    @property
    def wns_change_percent(self) -> float:
        """Relative worst-slack change, drawn -> post-OPC (the paper's
        headline metric: they observed a 36.4% increase)."""
        if self.wns_drawn == 0:
            return float("inf")
        return (self.wns_post - self.wns_drawn) / abs(self.wns_drawn) * 100.0

    @property
    def leakage_change_percent(self) -> float:
        if self.leakage_drawn == 0:
            return float("inf")
        return (self.leakage_post - self.leakage_drawn) / self.leakage_drawn * 100.0

    def summary(self) -> str:
        lines = [
            f"design {self.netlist_name} [opc={self.opc_mode}]",
            f"  CD error: {self.cd_stats}",
            f"  WNS drawn {self.wns_drawn:+.1f} ps -> post {self.wns_post:+.1f} ps "
            f"({self.wns_change_percent:+.1f}%)",
            f"  leakage {self.leakage_drawn * 1e9:.2f} nA -> "
            f"{self.leakage_post * 1e9:.2f} nA ({self.leakage_change_percent:+.1f}%)",
            f"  path ranking: tau={self.rank.tau:.3f}, moved={self.rank.moved}, "
            f"new top path: {self.rank.new_top}",
        ]
        if self.quarantined_gates:
            lines.append(
                f"  extraction coverage {self.coverage:.1%} "
                f"({len(self.quarantined_gates)} gates quarantined to drawn CD: "
                f"{sorted(self.quarantined_gates)})"
            )
        if self.failed_gates:
            lines.append(f"  PRINTABILITY FAILURES: {sorted(self.failed_gates)}")
        return "\n".join(lines)


class PostOpcTimingFlow:
    """Reusable flow bound to one netlist + technology.

    Construction performs the technology-setup work once (library build,
    characterization, litho calibration); :meth:`run` executes the stage
    graph, re-using artifacts from :attr:`context` wherever a stage's
    config slice and upstream inputs are unchanged.  ``jobs > 1`` (or an
    explicit ``executor``) parallelizes the OPC and metrology tile loops.
    """

    def __init__(
        self,
        netlist: Netlist,
        tech: Technology,
        cells: Optional[CellLibrary] = None,
        simulator: Optional[LithographySimulator] = None,
        jobs: int = 1,
        executor: Optional[ParallelExecutor] = None,
        context: Optional[FlowContext] = None,
        graph: Optional[StageGraph] = None,
    ) -> None:
        self.netlist = netlist
        self.tech = tech
        self.cells = cells or build_library(tech)
        self.model = AlphaPowerModel(tech.device)
        self.liberty = characterize_library(self.cells, self.model)
        self.simulator = simulator or LithographySimulator.for_tech(tech)
        self.simulator.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
        self.executor = executor or ParallelExecutor.from_jobs(jobs)
        # Not `context or ...`: FlowContext has __len__, so an *empty*
        # (e.g. freshly-opened persistent) context is falsy.
        self.context = context if context is not None else FlowContext()
        self.graph = graph or default_stage_graph()
        self.fingerprint = self._fingerprint()
        self._placement: Optional[Placement] = None
        self._gate_rects: Optional[GateRectMap] = None
        self._owned_polygons: Optional[List[Tuple[str, Polygon]]] = None
        self._engine: Optional[StaEngine] = None
        self._routed_engine: Optional[StaEngine] = None
        #: guards the lazily-built shared state above — concurrent stages
        #: (the async scheduler, or one flow shared by sweep modes) must
        #: never double-build the layout or an STA engine.  The engines
        #: themselves are read-only after construction, so concurrent
        #: ``StaEngine.run`` calls need no lock.
        self._state_lock = threading.RLock()

    def _fingerprint(self) -> str:
        """Content hash of everything that defines this flow's artifacts:
        the netlist structure, the technology, and the calibrated
        simulator setup.  Embedded in every cache key, so one shared
        :class:`FlowContext` can serve many designs without collisions."""
        gates = tuple(sorted(
            (g.name, g.cell_name, tuple(sorted(g.connections.items())))
            for g in self.netlist.gates.values()
        ))
        return stable_hash((
            self.netlist.name,
            tuple(self.netlist.inputs),
            tuple(self.netlist.outputs),
            gates,
            self.tech,
            self.simulator.settings,
            self.simulator.resist,
            self.simulator.ambit,
            self.simulator.max_tile_px,
        ))

    # -- layout artifacts (computed by PlaceStage, cached on the flow) ------

    def _build_layout(self) -> Dict[str, object]:
        with self._state_lock:
            if self._placement is None:
                placement = place_rows(self.netlist, self.cells)
                self._gate_rects = instance_gate_rects(
                    self.netlist, self.cells, placement
                )
                self._owned_polygons = self._collect_poly_layer(placement)
                self._placement = placement
            return {
                "placement": self._placement,
                "gate_rects": self._gate_rects,
                "owned_polygons": self._owned_polygons,
            }

    def _install_layout(self, outputs: Dict[str, object]) -> None:
        with self._state_lock:
            if self._placement is None:
                self._gate_rects = cast(GateRectMap, outputs["gate_rects"])
                self._owned_polygons = cast(
                    List[Tuple[str, Polygon]], outputs["owned_polygons"]
                )
                self._placement = cast(Placement, outputs["placement"])

    @property
    def placement(self) -> Placement:
        self._build_layout()
        assert self._placement is not None
        return self._placement

    @property
    def gate_rects(self) -> GateRectMap:
        self._build_layout()
        assert self._gate_rects is not None
        return self._gate_rects

    @property
    def owned_polygons(self) -> List[Tuple[str, Polygon]]:
        self._build_layout()
        assert self._owned_polygons is not None
        return self._owned_polygons

    @property
    def engine(self) -> StaEngine:
        with self._state_lock:
            if self._engine is None:
                self._engine = StaEngine(
                    self.netlist, self.cells, self.liberty, self.placement
                )
            return self._engine

    def _engine_for(self, config: "FlowConfig") -> StaEngine:
        if not config.use_routing:
            return self.engine
        with self._state_lock:
            if self._routed_engine is None:
                from repro.route import route_design

                routing = route_design(self.netlist, self.cells, self.placement)
                self._routed_engine = StaEngine(
                    self.netlist, self.cells, self.liberty, self.placement,
                    net_lengths=routing.net_lengths(),
                )
            return self._routed_engine

    def _collect_poly_layer(self, placement: Placement) -> List[Tuple[str, Polygon]]:
        """Flat poly shapes, tagged with the owning gate instance."""
        owned: List[Tuple[str, Polygon]] = []
        for gate_name in sorted(placement.gates):
            placed = placement.gates[gate_name]
            cell = self.cells[placed.cell_name]
            for poly in cell.layout.polygons_on(Layers.POLY):
                owned.append((gate_name, placed.transform.apply_polygon(poly)))
        return owned

    # -- preflight validation ------------------------------------------------

    def preflight(self, config: FlowConfig) -> None:
        """Validate the design and config before any stage runs.

        A malformed input should be rejected here, naming the offending
        field, not hours later from deep inside a stage.  (The pure
        config-field checks already ran in ``FlowConfig.__post_init__``;
        this adds the checks that need the design or simulator.)
        """
        if not self.netlist.gates:
            raise InputValidationError(
                "netlist", f"design {self.netlist.name!r} has no gates"
            )
        if self.simulator.max_tile_px <= 0:
            raise InputValidationError(
                "max_tile_px",
                f"simulator tile size must be positive, got {self.simulator.max_tile_px}",
            )
        if self.simulator.settings.pixel_nm <= 0:
            raise InputValidationError(
                "pixel_nm",
                f"simulator pixel must be positive, got {self.simulator.settings.pixel_nm}",
            )
        if config.opc_mode in ("model", "selective"):
            try:
                self.simulator.tile_span
            except ValueError as exc:
                raise InputValidationError("max_tile_px", str(exc)) from exc

    # -- pipeline stages ----------------------------------------------------

    def tag_critical_gates(self, sta: StaResult, k: int) -> Set[str]:
        """Gates on the top-``k`` speed paths — the paper's design-intent
        hand-off to the OPC engineers."""
        critical: Set[str] = set()
        for path in top_paths(sta, k):
            critical.update(path.gates)
        return critical

    def apply_opc(
        self,
        config: FlowConfig,
        critical_gates: Set[str],
        counters: Optional[Dict[str, float]] = None,
        context: Optional[FlowContext] = None,
    ) -> Tuple[List[Polygon], int]:
        """Mask synthesis per the configured mode.

        Returns (mask polygons, count of model-corrected polygons).  The
        rule-OPC base mask is memoized in the context, so the rule, model
        and selective modes all share one rule-OPC pass.
        """
        context = context if context is not None else self.context
        owners = [owner for owner, _ in self.owned_polygons]
        drawn = [poly for _, poly in self.owned_polygons]
        if counters is not None:
            counters["polygons"] = len(drawn)
        if config.opc_mode == "none":
            return list(drawn), 0
        rule_recipe = config.rule_recipe or RuleOpcRecipe.for_tech(self.tech)
        base_key = stable_hash((self.fingerprint, "opc.rule_base", rule_recipe))
        base = context.memo(
            "opc.rule_base", base_key, lambda: apply_rule_opc(drawn, rule_recipe)
        )
        if config.opc_mode == "rule":
            return list(base), 0
        if config.opc_mode == "model":
            selected = set(owners)
        else:  # selective
            selected = critical_gates
        indices = [i for i, owner in enumerate(owners) if owner in selected]
        corrected = self._model_opc_tiled(drawn, list(base), indices, config,
                                          counters=counters)
        return corrected, len(indices)

    def _model_opc_tiled(
        self,
        drawn: Sequence[Polygon],
        mask: List[Polygon],
        target_indices: Sequence[int],
        config: FlowConfig,
        counters: Optional[Dict[str, float]] = None,
    ) -> List[Polygon]:
        """Model-OPC the selected polygons tile by tile.

        Tiles follow the simulator's tiling of the die; each tile corrects
        the targets whose center falls in its interior.  All tiles see the
        same fixed context — the ``mask`` snapshot handed in (rule-OPC
        output for everything not being corrected here) — so tiles are
        independent and serial/parallel execution is bit-identical.
        """
        if not target_indices:
            return mask
        die = self.placement.die.expanded(self.tech.rules.poly_endcap)
        try:
            tile_span = self.simulator.tile_span
        except ValueError:
            raise ValueError("simulator tiling too small for model OPC")
        base = list(mask)
        pending = set(target_indices)
        nx = max(1, int(-(-die.width // tile_span)))
        ny = max(1, int(-(-die.height // tile_span)))
        tasks: List[OpcTileTask] = []
        tile_targets: List[List[int]] = []
        for j in range(ny):
            for i in range(nx):
                interior = Rect(
                    die.x0 + i * tile_span,
                    die.y0 + j * tile_span,
                    min(die.x0 + (i + 1) * tile_span, die.x1),
                    min(die.y0 + (j + 1) * tile_span, die.y1),
                )
                local = sorted(
                    idx for idx in pending
                    if interior.contains_point(base[idx].bbox.center)
                )
                if not local:
                    continue
                window = interior.expanded(self.simulator.ambit)
                local_set = set(local)
                # Targets are the DRAWN shapes (design intent); the rule-OPC
                # snapshot only serves as context for everything else.
                tasks.append(OpcTileTask(
                    targets=tuple(drawn[idx] for idx in local),
                    context=tuple(
                        poly for k, poly in enumerate(base)
                        if k not in local_set
                        and poly.bbox.overlaps(window, strict=False)
                    ),
                    recipe=config.model_recipe,
                    condition=config.condition,
                ))
                tile_targets.append(local)
                pending.difference_update(local)
        results = self.executor.map_chunks(correct_tile_chunk, self.simulator, tasks,
                                           counters=counters)
        out = list(base)
        for local, corrected in zip(tile_targets, results):
            for idx, poly in zip(local, corrected):
                out[idx] = poly
        if counters is not None:
            counters["opc_tiles"] = len(tasks)
        return out

    # -- incremental re-timing ------------------------------------------------

    def retime(
        self,
        previous: StaResult,
        old_derates: Mapping[str, InstanceDerate],
        new_derates: Mapping[str, InstanceDerate],
        config: Optional[FlowConfig] = None,
    ) -> StaResult:
        """Cone-limited re-timing of a what-if derate change.

        Updates ``previous`` (an STA computed under ``old_derates``) for
        ``new_derates``, re-propagating only the fan-out cones of the
        instances whose derate actually changed — bit-identical to a full
        :meth:`StaEngine.run` at ``previous.clock_period_ps``, typically
        orders of magnitude faster when few gates changed.  ``config``
        only selects the engine (``use_routing``); the constraints are
        inherited from ``previous``.
        """
        config = config or FlowConfig()
        engine = self._engine_for(config)
        constraints = TimingConstraints(clock_period_ps=previous.clock_period_ps)
        return retime_sta(engine, previous, old_derates, new_derates, constraints)

    # -- the full pipeline ----------------------------------------------------

    def run(
        self,
        config: Optional[FlowConfig] = None,
        *,
        context: Optional[FlowContext] = None,
        trace: Optional[FlowTrace] = None,
        journal: Optional["RunJournal"] = None,
        interrupt: Optional["InterruptGuard"] = None,
        scheduler: Optional["StageScheduler"] = None,
    ) -> FlowReport:
        """Execute the stage graph and assemble the report.

        ``journal`` (:class:`~repro.flow.journal.RunJournal`) records
        every settled stage; ``interrupt``
        (:class:`~repro.flow.journal.InterruptGuard`) enables graceful
        SIGINT/SIGTERM stops between stages — the cache is flushed and an
        ``interrupted`` record journaled before
        :class:`~repro.flow.errors.FlowInterrupted` propagates.  Raises
        :class:`~repro.flow.errors.QuarantineExceededError` when more
        than ``config.max_quarantine_fraction`` of the gates had to fall
        back to drawn CDs.  ``scheduler`` (a
        :class:`~repro.flow.scheduler.StageScheduler`) routes the run
        through the async DAG path — bit-identical results, independent
        stages overlapped — and needs no running event loop here.
        """
        if scheduler is not None:
            return asyncio.run(self.run_async(
                config, scheduler, context=context, trace=trace,
                journal=journal, interrupt=interrupt,
            ))
        config = config or FlowConfig()
        context = context if context is not None else self.context
        trace = trace if trace is not None else FlowTrace()
        self.preflight(config)

        try:
            artifacts = self.graph.execute(
                self, config, context, trace, journal=journal, interrupt=interrupt
            )
        except FlowInterrupted as exc:
            context.flush()
            if journal is not None:
                journal.record_interrupted(exc.signal_name, exc.next_stage)
            raise

        return self._assemble_report(config, artifacts, trace)

    async def run_async(
        self,
        config: Optional[FlowConfig],
        scheduler: "StageScheduler",
        *,
        context: Optional[FlowContext] = None,
        trace: Optional[FlowTrace] = None,
        journal: Optional["RunJournal"] = None,
        interrupt: Optional["InterruptGuard"] = None,
    ) -> FlowReport:
        """Async counterpart of :meth:`run`, driven by a
        :class:`~repro.flow.scheduler.StageScheduler` on the caller's
        event loop.

        Identical contract and (bit-identical) results; independent
        stages run concurrently, and runs sharing this flow's context —
        other modes of a sweep, other service jobs — dedup in-flight
        work via the context's single-flight settle.
        """
        config = config or FlowConfig()
        context = context if context is not None else self.context
        trace = trace if trace is not None else FlowTrace()
        self.preflight(config)

        try:
            artifacts = await scheduler.execute(
                self, config, context, trace, journal=journal, interrupt=interrupt
            )
        except FlowInterrupted as exc:
            # repro-lint: allow[blocking-in-async] signal unwind: the loop is about to stop, so persist the cache and the stop record without yielding
            context.flush()
            if journal is not None:
                # repro-lint: allow[blocking-in-async] same unwind: a yielded append could lose the record a resume replays from
                journal.record_interrupted(exc.signal_name, exc.next_stage)
            raise

        return self._assemble_report(config, artifacts, trace)

    def _assemble_report(
        self,
        config: FlowConfig,
        artifacts: Dict[str, Any],
        trace: FlowTrace,
    ) -> FlowReport:
        """Turn the settled artifacts into a :class:`FlowReport` (pure
        post-processing — shared verbatim by the serial and async paths,
        so the two cannot drift)."""
        # Degraded-coverage accounting: gates quarantined by metrology
        # (bad CD extraction) or back-annotation (non-physical derate)
        # run on drawn CDs; past the threshold the number is meaningless.
        reasons: Dict[str, str] = {}
        for key, why in artifacts.get("cd_quarantine", {}).items():
            reasons.setdefault(key[0], why)
        for gate, why in artifacts.get("derate_quarantine", {}).items():
            reasons.setdefault(gate, why)
        quarantined = sorted(reasons)
        total_gates = len(self.netlist.gates)
        fraction = len(quarantined) / total_gates if total_gates else 0.0
        if fraction > config.max_quarantine_fraction:
            raise QuarantineExceededError(
                fraction, config.max_quarantine_fraction, quarantined
            )

        drawn_base: StaResult = artifacts["drawn_sta"]
        post_base: StaResult = artifacts["post_sta"]
        period = config.clock_period_ps
        if period is None:
            period = AUTO_PERIOD_MARGIN * drawn_base.critical_delay
        drawn_sta = drawn_base.with_clock_period(period)
        post_sta = post_base.with_clock_period(period)
        drawn_paths = top_paths(drawn_sta, config.n_critical_paths)
        post_paths = top_paths(post_sta, config.n_critical_paths)

        measurements = artifacts["measurements"]
        derates = artifacts["derates"]
        failed = [gate for gate, derate in derates.items() if derate.failed]

        return FlowReport(
            netlist_name=self.netlist.name,
            opc_mode=config.opc_mode,
            drawn_sta=drawn_sta,
            post_sta=post_sta,
            drawn_paths=drawn_paths,
            post_paths=post_paths,
            rank=compare_rankings(drawn_paths, post_paths),
            cd_stats=summarize_cds(measurements),
            measurements=measurements,
            critical_gates=artifacts["critical_gates"],
            mask_polygons=artifacts["mask_polygons"],
            model_corrected_polygons=artifacts["model_corrected_polygons"],
            leakage_drawn=artifacts["leakage_drawn"],
            leakage_post=artifacts["leakage_post"],
            failed_gates=failed,
            hold_drawn=artifacts["hold_drawn"],
            hold_post=artifacts["hold_post"],
            trace=trace,
            quarantined_gates=quarantined,
            quarantine_reasons=reasons,
            coverage=1.0 - fraction,
        )
