"""The post-OPC timing flow of the paper.

Pipeline (Yang/Capodieci/Sylvester, DAC 2005):

1. place the netlist and assemble the poly-layer layout,
2. run drawn-CD STA and **tag the critical gates** (top-K speed paths),
3. apply OPC — none / rule-based / full model-based / **selective**
   (model-based only on tagged critical gates, rule-based elsewhere),
4. simulate lithography and **extract printed CDs** at every transistor,
5. convert each printed gate to equivalent lengths and **back-annotate**
   per-instance derates,
6. re-run STA and compare: speed-path reordering, worst-slack change,
   leakage change.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import RankComparison, compare_rankings
from repro.cells import CellLibrary, build_library
from repro.circuits import Netlist
from repro.device import AlphaPowerModel
from repro.geometry import Polygon, Rect
from repro.litho.resist import NOMINAL, ProcessCondition
from repro.litho.simulator import LithographySimulator
from repro.metrology import CdStatistics, measure_layout_gate_cds, summarize_cds
from repro.metrology.gate_cd import GateCdMeasurement
from repro.opc import ModelOpcRecipe, RuleOpcRecipe, apply_model_opc, apply_rule_opc
from repro.pdk import Layers, Technology
from repro.place import Placement, instance_gate_rects, place_rows
from repro.timing import (
    InstanceDerate,
    StaEngine,
    StaResult,
    TimingConstraints,
    TimingPath,
    characterize_library,
    derates_from_measurements,
    instance_leakage,
    run_hold,
    top_paths,
)
from repro.variation import DoseDefocusMap

OPC_MODES = ("none", "rule", "model", "selective")


@dataclass(frozen=True)
class FlowConfig:
    """Knobs of one flow run."""

    opc_mode: str = "model"
    clock_period_ps: float = 1000.0
    n_critical_paths: int = 5
    n_slices: int = 5
    condition: ProcessCondition = NOMINAL
    #: optional across-chip dose/defocus map (overrides `condition` per tile)
    process_map: Optional[DoseDefocusMap] = None
    #: route the design and use realised wirelengths instead of HPWL
    use_routing: bool = False
    model_recipe: ModelOpcRecipe = field(default_factory=ModelOpcRecipe)
    #: None selects the node-fitted recipe (RuleOpcRecipe.for_tech)
    rule_recipe: Optional[RuleOpcRecipe] = None

    def __post_init__(self):
        if self.opc_mode not in OPC_MODES:
            raise ValueError(f"opc_mode must be one of {OPC_MODES}")


@dataclass
class FlowReport:
    """Everything the flow learned about one design."""

    netlist_name: str
    opc_mode: str
    drawn_sta: StaResult
    post_sta: StaResult
    drawn_paths: List[TimingPath]
    post_paths: List[TimingPath]
    rank: RankComparison
    cd_stats: CdStatistics
    measurements: Dict[Tuple[str, str], GateCdMeasurement]
    critical_gates: Set[str]
    mask_polygons: List[Polygon]
    model_corrected_polygons: int
    leakage_drawn: float
    leakage_post: float
    failed_gates: List[str]
    #: worst register hold slack before/after back-annotation (inf if no regs)
    hold_drawn: float = float("inf")
    hold_post: float = float("inf")
    runtimes: Dict[str, float] = field(default_factory=dict)

    @property
    def wns_drawn(self) -> float:
        return self.drawn_sta.wns

    @property
    def wns_post(self) -> float:
        return self.post_sta.wns

    @property
    def wns_change_percent(self) -> float:
        """Relative worst-slack change, drawn -> post-OPC (the paper's
        headline metric: they observed a 36.4% increase)."""
        if self.wns_drawn == 0:
            return float("inf")
        return (self.wns_post - self.wns_drawn) / abs(self.wns_drawn) * 100.0

    @property
    def leakage_change_percent(self) -> float:
        if self.leakage_drawn == 0:
            return float("inf")
        return (self.leakage_post - self.leakage_drawn) / self.leakage_drawn * 100.0

    def summary(self) -> str:
        lines = [
            f"design {self.netlist_name} [opc={self.opc_mode}]",
            f"  CD error: {self.cd_stats}",
            f"  WNS drawn {self.wns_drawn:+.1f} ps -> post {self.wns_post:+.1f} ps "
            f"({self.wns_change_percent:+.1f}%)",
            f"  leakage {self.leakage_drawn * 1e9:.2f} nA -> "
            f"{self.leakage_post * 1e9:.2f} nA ({self.leakage_change_percent:+.1f}%)",
            f"  path ranking: tau={self.rank.tau:.3f}, moved={self.rank.moved}, "
            f"new top path: {self.rank.new_top}",
        ]
        if self.failed_gates:
            lines.append(f"  PRINTABILITY FAILURES: {sorted(self.failed_gates)}")
        return "\n".join(lines)


class PostOpcTimingFlow:
    """Reusable flow bound to one netlist + technology.

    Construction performs the technology-setup work once (library build,
    characterization, litho calibration, placement); :meth:`run` executes
    the per-configuration pipeline.
    """

    def __init__(
        self,
        netlist: Netlist,
        tech: Technology,
        cells: Optional[CellLibrary] = None,
        simulator: Optional[LithographySimulator] = None,
    ):
        self.netlist = netlist
        self.tech = tech
        self.cells = cells or build_library(tech)
        self.model = AlphaPowerModel(tech.device)
        self.liberty = characterize_library(self.cells, self.model)
        self.simulator = simulator or LithographySimulator.for_tech(tech)
        self.simulator.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
        self.placement: Placement = place_rows(netlist, self.cells)
        self.engine = StaEngine(netlist, self.cells, self.liberty, self.placement)
        self.gate_rects = instance_gate_rects(netlist, self.cells, self.placement)
        self.owned_polygons = self._collect_poly_layer()
        self._routed_engine: Optional[StaEngine] = None

    def _engine_for(self, config: "FlowConfig") -> StaEngine:
        if not config.use_routing:
            return self.engine
        if self._routed_engine is None:
            from repro.route import route_design

            routing = route_design(self.netlist, self.cells, self.placement)
            self._routed_engine = StaEngine(
                self.netlist, self.cells, self.liberty, self.placement,
                net_lengths=routing.net_lengths(),
            )
        return self._routed_engine

    def _collect_poly_layer(self) -> List[Tuple[str, Polygon]]:
        """Flat poly shapes, tagged with the owning gate instance."""
        owned: List[Tuple[str, Polygon]] = []
        for gate_name in sorted(self.placement.gates):
            placed = self.placement.gates[gate_name]
            cell = self.cells[placed.cell_name]
            for poly in cell.layout.polygons_on(Layers.POLY):
                owned.append((gate_name, placed.transform.apply_polygon(poly)))
        return owned

    # -- pipeline stages ----------------------------------------------------

    def tag_critical_gates(self, sta: StaResult, k: int) -> Set[str]:
        """Gates on the top-``k`` speed paths — the paper's design-intent
        hand-off to the OPC engineers."""
        critical: Set[str] = set()
        for path in top_paths(sta, k):
            critical.update(path.gates)
        return critical

    def apply_opc(
        self, config: FlowConfig, critical_gates: Set[str]
    ) -> Tuple[List[Polygon], int]:
        """Mask synthesis per the configured mode.

        Returns (mask polygons, count of model-corrected polygons).
        """
        owners = [owner for owner, _ in self.owned_polygons]
        drawn = [poly for _, poly in self.owned_polygons]
        rule_recipe = config.rule_recipe or RuleOpcRecipe.for_tech(self.tech)
        if config.opc_mode == "none":
            return list(drawn), 0
        if config.opc_mode == "rule":
            return apply_rule_opc(drawn, rule_recipe), 0
        if config.opc_mode == "model":
            selected = set(owners)
        else:  # selective
            selected = critical_gates
        base = apply_rule_opc(drawn, rule_recipe)
        mask = list(base)
        indices = [i for i, owner in enumerate(owners) if owner in selected]
        corrected = self._model_opc_tiled(drawn, mask, indices, config)
        return corrected, len(indices)

    def _model_opc_tiled(
        self,
        drawn: Sequence[Polygon],
        mask: List[Polygon],
        target_indices: Sequence[int],
        config: FlowConfig,
    ) -> List[Polygon]:
        """Model-OPC the selected polygons tile by tile.

        Tiles follow the simulator's tiling of the die; each tile corrects
        the targets whose center falls in its interior, with everything
        else in the window as fixed context.
        """
        if not target_indices:
            return mask
        die = self.placement.die.expanded(self.tech.rules.poly_endcap)
        pending = set(target_indices)
        tile_span = (
            self.simulator.max_tile_px * self.simulator.settings.pixel_nm
            - 2 * self.simulator.ambit
        )
        if tile_span <= 0:
            raise ValueError("simulator tiling too small for model OPC")
        nx = max(1, int(-(-die.width // tile_span)))
        ny = max(1, int(-(-die.height // tile_span)))
        for j in range(ny):
            for i in range(nx):
                interior = Rect(
                    die.x0 + i * tile_span,
                    die.y0 + j * tile_span,
                    min(die.x0 + (i + 1) * tile_span, die.x1),
                    min(die.y0 + (j + 1) * tile_span, die.y1),
                )
                local = [
                    idx for idx in pending
                    if interior.contains_point(mask[idx].bbox.center)
                ]
                if not local:
                    continue
                window = interior.expanded(self.simulator.ambit)
                local_set = set(local)
                context = [
                    poly for k, poly in enumerate(mask)
                    if k not in local_set and poly.bbox.overlaps(window, strict=False)
                ]
                # Targets are the DRAWN shapes (design intent); the rule-OPC
                # output only serves as context for not-yet-corrected shapes.
                result = apply_model_opc(
                    self.simulator,
                    [drawn[idx] for idx in local],
                    context=context,
                    recipe=config.model_recipe,
                    condition=config.condition,
                )
                for idx, corrected in zip(local, result.polygons):
                    mask[idx] = corrected
                pending.difference_update(local)
        return mask

    # -- the full pipeline ----------------------------------------------------

    def run(self, config: Optional[FlowConfig] = None) -> FlowReport:
        config = config or FlowConfig()
        runtimes: Dict[str, float] = {}
        constraints = TimingConstraints(clock_period_ps=config.clock_period_ps)

        engine = self._engine_for(config)
        clock = time.perf_counter()
        drawn_sta = engine.run(constraints)
        drawn_paths = top_paths(drawn_sta, config.n_critical_paths)
        critical = self.tag_critical_gates(drawn_sta, config.n_critical_paths)
        runtimes["sta_drawn"] = time.perf_counter() - clock

        clock = time.perf_counter()
        mask, n_model = self.apply_opc(config, critical)
        runtimes["opc"] = time.perf_counter() - clock

        clock = time.perf_counter()
        condition_fn = None
        if config.process_map is not None:
            process_map = config.process_map
            condition_fn = lambda interior: process_map.condition_at(
                *interior.center.as_tuple()
            )
        measurements = measure_layout_gate_cds(
            self.simulator,
            mask,
            self.gate_rects,
            condition=config.condition,
            n_slices=config.n_slices,
            condition_fn=condition_fn,
        )
        runtimes["metrology"] = time.perf_counter() - clock

        clock = time.perf_counter()
        derates = derates_from_measurements(
            self.netlist, self.cells, measurements, self.model
        )
        post_sta = engine.run(constraints, derates)
        post_paths = top_paths(post_sta, config.n_critical_paths)
        hold_drawn = run_hold(engine, constraints).worst_hold_slack
        hold_post = run_hold(engine, constraints, derates).worst_hold_slack
        runtimes["sta_post"] = time.perf_counter() - clock

        leak_drawn = sum(
            instance_leakage(self.netlist, self.cells, {}, self.model).values()
        )
        leak_post = sum(
            instance_leakage(self.netlist, self.cells, measurements, self.model).values()
        )
        failed = [
            gate for gate, derate in derates.items() if derate.failed
        ]

        return FlowReport(
            netlist_name=self.netlist.name,
            opc_mode=config.opc_mode,
            drawn_sta=drawn_sta,
            post_sta=post_sta,
            drawn_paths=drawn_paths,
            post_paths=post_paths,
            rank=compare_rankings(drawn_paths, post_paths),
            cd_stats=summarize_cds(measurements),
            measurements=measurements,
            critical_gates=critical,
            mask_polygons=mask,
            model_corrected_polygons=n_model,
            leakage_drawn=leak_drawn,
            leakage_post=leak_post,
            failed_gates=failed,
            hold_drawn=hold_drawn,
            hold_post=hold_post,
            runtimes=runtimes,
        )
