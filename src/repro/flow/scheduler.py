"""Async stage-level DAG scheduler.

The serial :meth:`~repro.flow.stages.StageGraph.execute` loop walks the
flow one stage at a time, so independent branches — post-STA vs. hold
vs. power, or the four OPC modes of a sweep — wait on each other for no
reason.  :class:`StageScheduler` runs the same graph dependency-driven:
every stage whose parents have settled is launched concurrently (each on
a worker thread via :func:`asyncio.to_thread`; the CPU-heavy tile work
inside a stage still fans out through the flow's
:class:`~repro.flow.parallel.ParallelExecutor`), and all stages settle
through the same :func:`~repro.flow.stages.settle_stage` path as the
serial loop — results are **bit-identical by construction**, only the
order and overlap of execution change.

Cross-run sharing comes from the context's single-flight settle: when two
concurrent runs (two modes of a sweep, two service jobs) want the same
Merkle artifact key, one computes and the other blocks on the per-key
lock and is served the result — counted as ``deduped`` in its trace
record and journaled as a ``deduped`` scheduler event.

Each stage record carries its execution window (``t_start``/``t_end``),
so :attr:`FlowTrace.concurrent_stages` can *prove* overlap rather than
assert it; the scheduler also annotates the trace with
``cache_consistent`` from :meth:`FlowContext.consistency`.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.flow.context import FlowContext, SettleOutcome
from repro.flow.errors import FlowInterrupted
from repro.flow.stages import FlowStage, StageGraph, settle_stage, stage_key
from repro.flow.trace import FlowTrace

if TYPE_CHECKING:
    from repro.flow.journal import InterruptGuard, RunJournal
    from repro.flow.postopc import FlowConfig, PostOpcTimingFlow


@dataclass
class SettledStage:
    """One stage settled by the scheduler: its products plus telemetry."""

    name: str
    key: str
    outputs: Dict[str, Any]
    counters: Dict[str, float]
    outcome: SettleOutcome
    t_start: float
    t_end: float


def _settle_sync(
    flow: "PostOpcTimingFlow",
    stage: FlowStage,
    config: "FlowConfig",
    key: str,
    inputs: Dict[str, Any],
    context: FlowContext,
    journal: Optional["RunJournal"],
) -> SettledStage:
    """Worker-thread body: time and settle one stage.

    ``inputs`` holds the merged outputs of the stage's *declared* parents
    only — exactly the artifacts the serial loop guarantees exist when
    the stage runs, and (enforced by the ``cache-undeclared-input`` lint
    gate) the only ones ``run()`` may read, so the narrower dict cannot
    change behavior.
    """
    if journal is not None:
        journal.record_event("start", stage.name, key)
    t_start = time.perf_counter()
    outputs, counters, outcome = settle_stage(
        flow, stage, config, key, inputs, context
    )
    t_end = time.perf_counter()
    if outcome.deduped:
        # Request-specific fact, never part of the cached counters.
        counters["deduped"] = 1.0
        if journal is not None:
            journal.record_event("deduped", stage.name, key)
    return SettledStage(stage.name, key, outputs, counters, outcome,
                        t_start, t_end)


class StageScheduler:
    """Dependency-driven concurrent executor for a :class:`StageGraph`.

    Stateless across runs (safe to share between service jobs):
    ``max_concurrent_stages`` caps how many stages of *one run* are in
    flight at once (None = the graph's natural width).  All scheduling
    happens on the caller's event loop; stage bodies run on worker
    threads.
    """

    def __init__(self, max_concurrent_stages: Optional[int] = None) -> None:
        if max_concurrent_stages is not None and max_concurrent_stages < 1:
            raise ValueError(
                f"max_concurrent_stages must be >= 1, got {max_concurrent_stages}"
            )
        self.max_concurrent_stages = max_concurrent_stages

    async def execute(
        self,
        flow: "PostOpcTimingFlow",
        config: "FlowConfig",
        context: FlowContext,
        trace: FlowTrace,
        journal: Optional["RunJournal"] = None,
        interrupt: Optional["InterruptGuard"] = None,
    ) -> Dict[str, Any]:
        """Run every stage of ``flow.graph`` as soon as its parents settle.

        Same contract as the serial ``StageGraph.execute`` — returns the
        merged artifacts, journals one ``stage`` record per settle, wraps
        stage failures in :class:`~repro.flow.errors.StageError` — plus
        scheduler ``ready``/``start``/``done``/``deduped`` journal events.
        An interrupt is honored *between* launches: in-flight stages
        settle (cached and journaled) before
        :class:`~repro.flow.errors.FlowInterrupted` unwinds the run.  On
        a stage failure the remaining in-flight stages settle, then the
        failure earliest in topological order is raised (deterministic
        regardless of completion timing).
        """
        graph: StageGraph = flow.graph
        order = graph.validate(config)
        rank = {stage.name: i for i, stage in enumerate(order)}

        artifacts: Dict[str, Any] = {}
        outputs_by_stage: Dict[str, Dict[str, Any]] = {}
        keys: Dict[str, str] = {}
        done: Set[str] = set()
        announced: Set[str] = set()
        running: Dict["asyncio.Task[SettledStage]", str] = {}
        failures: List[Tuple[int, BaseException]] = []

        def _launch_ready() -> None:
            in_flight = set(running.values())
            for stage in graph.ready_set(config, done):
                if stage.name in in_flight:
                    continue
                if (self.max_concurrent_stages is not None
                        and len(running) >= self.max_concurrent_stages):
                    break
                parents = stage.requires(config)
                key = stage_key(
                    flow, stage, config, tuple(keys[p] for p in parents)
                )
                keys[stage.name] = key
                if journal is not None and stage.name not in announced:
                    # repro-lint: allow[blocking-in-async] one fsynced line; must land in launch order, a thread hop could reorder it past the stage's own records
                    journal.record_event("ready", stage.name, key)
                announced.add(stage.name)
                inputs: Dict[str, Any] = {}
                for parent in parents:
                    inputs.update(outputs_by_stage[parent])
                task = asyncio.create_task(
                    asyncio.to_thread(
                        _settle_sync, flow, stage, config, key, inputs,
                        context, journal,
                    ),
                    name=f"stage:{stage.name}",
                )
                running[task] = stage.name
                in_flight.add(stage.name)

        async def _drain(tasks: Set["asyncio.Task[SettledStage]"]) -> None:
            for task in tasks:
                name = running.pop(task)
                try:
                    settled = await task
                except FlowInterrupted:
                    raise
                # repro-lint: allow[broad-except] failure is re-raised after siblings settle (deterministic first-in-topo-order)
                except Exception as exc:
                    done.add(name)
                    failures.append((rank[name], exc))
                    continue
                done.add(name)
                outputs_by_stage[name] = settled.outputs
                artifacts.update(settled.outputs)
                record = trace.add(
                    settled.name, settled.t_end - settled.t_start,
                    cache_hit=settled.outcome.cache_hit,
                    counters=settled.counters,
                    cache_source=settled.outcome.source,
                    t_start=settled.t_start, t_end=settled.t_end,
                )
                if journal is not None:
                    # repro-lint: allow[blocking-in-async] _drain also runs on the cancellation path: an await here could drop the terminal record a resume needs
                    journal.record_event("done", name, settled.key)
                    # repro-lint: allow[entropy-taint,blocking-in-async] wall-time is telemetry: resume replays keys, never durations; append must not yield mid-unwind
                    journal.record_stage(
                        record, key=settled.key,
                        quarantined=int(
                            record.counters.get("quarantined_gates", 0)
                        ),
                    )

        try:
            while len(done) < len(order):
                stopping = (interrupt is not None
                            and interrupt.interrupted is not None)
                if not failures and not stopping:
                    _launch_ready()
                if not running:
                    break
                finished, _ = await asyncio.wait(
                    set(running), return_when=asyncio.FIRST_COMPLETED
                )
                await _drain(finished)
        finally:
            if running:
                # Let every in-flight stage settle (their artifacts are
                # cached and journaled) before unwinding.
                leftover, _ = await asyncio.wait(set(running))
                await _drain(leftover)
            # repro-lint: allow[blocking-in-async] uncontended in-memory RLock read after every stage settled; a to_thread hop costs more than the hold
            trace.annotations["cache_consistent"] = not context.consistency()

        if failures:
            failures.sort(key=lambda item: item[0])
            raise failures[0][1]
        if interrupt is not None:
            pending = [s.name for s in order if s.name not in done]
            interrupt.checkpoint(next_stage=pending[0] if pending else None)
        return artifacts
