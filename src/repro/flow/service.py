"""Flow-as-a-service front-end over the async scheduler.

:class:`FlowService` turns a set of pre-built flows (one per design) into
an asyncio job server: ``submit`` enqueues a flow or sweep request onto a
**bounded** queue (a full queue rejects with
:class:`~repro.flow.errors.ServiceRejectedError` — backpressure, not
unbounded buffering), a fixed pool of workers drains it through one
shared :class:`~repro.flow.scheduler.StageScheduler` and the flows'
shared :class:`~repro.flow.context.FlowContext`, and
``status``/``result``/``report`` expose each job's lifecycle.

Because every worker settles stages against the same context, two
concurrent identical submissions compute each artifact key **exactly
once**: the second job's stages either block on the first's in-flight
settle (counted ``deduped`` in its trace) or serve finished artifacts as
cache hits.  Each request carries its own quarantine budget
(``FlowConfig.max_quarantine_fraction``) and, under a ``run_root``, its
own run journal — so a service job is exactly as durable and resumable
as a CLI run.

Job exit codes follow the CLI contract
(:mod:`repro.flow.errors`): 0 ok, 1 stage failure, 2 interrupted,
3 rejected input, 4 quarantine exceeded.

The same operations are exposed over a local socket (UNIX or TCP) as a
JSON-lines protocol — one request object per line, one response object
per line — see :meth:`FlowService.serve_unix` / :meth:`serve_tcp`.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.flow.context import stable_hash
from repro.flow.errors import EXIT_FAILURE, FlowError, ServiceRejectedError
from repro.flow.journal import RunJournal
from repro.flow.postopc import FlowConfig, FlowReport, PostOpcTimingFlow
from repro.flow.scheduler import StageScheduler
from repro.flow.sweep import FlowSweep, SweepResult

#: FlowConfig fields settable through the socket protocol (simple JSON
#: scalars only — recipe/condition objects need the in-process API)
_WIRE_CONFIG_FIELDS = (
    "opc_mode",
    "clock_period_ps",
    "n_critical_paths",
    "n_slices",
    "use_routing",
    "max_quarantine_fraction",
    "litho_shards",
    "incremental_sta",
)


@dataclass
class Job:
    """One submitted request and everything learned about it."""

    id: str
    design: str
    op: str  # "flow" | "sweep"
    config: FlowConfig
    state: str = "queued"  # queued | running | done | failed
    exit_code: Optional[int] = None
    error: str = ""
    #: JSON-able digest filled when the job settles (see _summarize_*)
    summary: Dict[str, Any] = field(default_factory=dict)
    #: the Python result object, for in-process callers
    result: Optional[Union[FlowReport, SweepResult]] = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    def status(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.id,
            "design": self.design,
            "op": self.op,
            "opc_mode": self.config.opc_mode,
            "state": self.state,
        }
        if self.exit_code is not None:
            payload["exit_code"] = self.exit_code
        if self.error:
            payload["error"] = self.error
        return payload


def _summarize_report(report: FlowReport) -> Dict[str, Any]:
    trace = report.trace
    return {
        "opc_mode": report.opc_mode,
        "wns_drawn": report.wns_drawn,
        "wns_post": report.wns_post,
        "leakage_drawn": report.leakage_drawn,
        "leakage_post": report.leakage_post,
        "coverage": report.coverage,
        "quarantined_gates": len(report.quarantined_gates),
        "stages": len(trace),
        "cache_hits": trace.cache_hits,
        "cache_misses": trace.cache_misses,
        "deduped": trace.deduped,
        "concurrent_stages": trace.concurrent_stages,
    }


def _summarize_sweep(result: SweepResult) -> Dict[str, Any]:
    modes = {
        mode: _summarize_report(report)
        for mode, report in result.reports.items()
    }
    return {
        "modes": modes,
        "failures": dict(result.failures),
        "stages": sum(m["stages"] for m in modes.values()),
        "cache_hits": sum(m["cache_hits"] for m in modes.values()),
        "cache_misses": sum(m["cache_misses"] for m in modes.values()),
        "deduped": sum(m["deduped"] for m in modes.values()),
        "table": result.table(),
    }


class FlowService:
    """Bounded-queue job service over a set of named flows.

    ``flows`` maps design names to pre-built
    :class:`~repro.flow.postopc.PostOpcTimingFlow` objects — typically
    all sharing one :class:`~repro.flow.context.FlowContext` so requests
    dedup against each other.  ``max_queue`` bounds the number of
    *queued* (not yet running) jobs; ``workers`` fixes how many jobs run
    concurrently; ``run_root`` (optional) gives every job a journaled run
    directory ``<run_root>/<job_id>/``.

    Use as an async context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        flows: Mapping[str, PostOpcTimingFlow],
        *,
        max_queue: int = 16,
        workers: int = 2,
        run_root: Optional[str] = None,
        max_concurrent_stages: Optional[int] = None,
    ) -> None:
        if not flows:
            raise ValueError("FlowService needs at least one design")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.flows: Dict[str, PostOpcTimingFlow] = dict(flows)
        self.max_queue = max_queue
        self.n_workers = workers
        self.run_root = run_root
        self.scheduler = StageScheduler(max_concurrent_stages)
        self.jobs: Dict[str, Job] = {}
        self._queue: Optional["asyncio.Queue[Job]"] = None
        self._workers: List["asyncio.Task[None]"] = []
        self._servers: List[asyncio.AbstractServer] = []
        self._counter = 0
        self._stopped = True

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start the worker pool (idempotent)."""
        if not self._stopped:
            return
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._stopped = False
        self._workers = [
            asyncio.create_task(self._worker(), name=f"flow-service-worker-{i}")
            for i in range(self.n_workers)
        ]

    async def stop(self) -> None:
        """Stop accepting work, let running jobs finish, shut servers down.

        Jobs still queued (never started) are marked failed with a
        ``service stopped`` error rather than silently dropped.
        """
        if self._stopped:
            return
        self._stopped = True
        assert self._queue is not None
        while True:
            try:
                queued = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if queued is not None:
                queued.state = "failed"
                queued.exit_code = EXIT_FAILURE
                queued.error = "service stopped before the job started"
                queued.done_event.set()
            self._queue.task_done()
        for _ in self._workers:
            await self._queue.put(None)  # type: ignore[arg-type]
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers = []

    async def __aenter__(self) -> "FlowService":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -- operations ----------------------------------------------------------

    def submit(
        self,
        design: str,
        op: str = "flow",
        config: Optional[FlowConfig] = None,
    ) -> str:
        """Enqueue one job; returns its id.

        Rejects with :class:`~repro.flow.errors.ServiceRejectedError`
        (never queues) when the service is stopped (``stopped``), the
        design is unknown (``unknown-design``), the op is unknown
        (``bad-config``), or the bounded queue is full (``queue-full``).
        """
        if self._stopped or self._queue is None:
            raise ServiceRejectedError("stopped", "service is not running")
        if design not in self.flows:
            known = ", ".join(sorted(self.flows))
            raise ServiceRejectedError(
                "unknown-design", f"no design {design!r} (have: {known})"
            )
        if op not in ("flow", "sweep"):
            raise ServiceRejectedError(
                "bad-config", f"op must be 'flow' or 'sweep', got {op!r}"
            )
        self._counter += 1
        job = Job(
            id=f"job-{self._counter:04d}",
            design=design,
            op=op,
            config=config if config is not None else FlowConfig(),
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            raise ServiceRejectedError(
                "queue-full",
                f"bounded queue ({self.max_queue}) is full; retry later",
            ) from None
        self.jobs[job.id] = job
        return job.id

    def _job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceRejectedError("unknown-job", f"no job {job_id!r}")
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's lifecycle state (queued/running/done/failed)."""
        return self._job(job_id).status()

    async def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Union[FlowReport, SweepResult]:
        """Await the job and return its Python result object.

        A failed job re-raises nothing — inspect :meth:`status` — but a
        missing result (failed job) raises
        :class:`~repro.flow.errors.ServiceRejectedError` naming the
        failure.
        """
        job = self._job(job_id)
        await asyncio.wait_for(job.done_event.wait(), timeout)
        if job.result is None:
            raise ServiceRejectedError(
                "failed-job", f"{job_id} failed: {job.error}"
            )
        return job.result

    async def report(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Await the job and return its JSON-able summary + status."""
        job = self._job(job_id)
        await asyncio.wait_for(job.done_event.wait(), timeout)
        return {**job.status(), "summary": job.summary}

    # -- execution -----------------------------------------------------------

    def _open_journal(self, job: Job) -> Optional[RunJournal]:
        if self.run_root is None:
            return None
        run_dir = os.path.join(self.run_root, job.id)
        flow = self.flows[job.design]
        return RunJournal.create(run_dir, manifest={
            "design": job.design,
            "op": job.op,
            "fingerprint": flow.fingerprint,
            "config_hash": stable_hash(job.config),
        })

    async def _run_job(self, job: Job) -> None:
        flow = self.flows[job.design]
        journal = self._open_journal(job)
        try:
            if job.op == "flow":
                report = await flow.run_async(
                    job.config, self.scheduler, journal=journal
                )
                job.result = report
                job.summary = _summarize_report(report)
            else:
                sweep_result = await FlowSweep(flow).run_async(
                    job.config, scheduler=self.scheduler, journal=journal
                )
                job.result = sweep_result
                job.summary = _summarize_sweep(sweep_result)
            job.state = "done"
            job.exit_code = 0
            if journal is not None:
                journal.record_complete(job_id=job.id)
        except FlowError as exc:
            job.state = "failed"
            job.exit_code = exc.exit_code
            job.error = f"{type(exc).__name__}: {exc}"
            if journal is not None:
                journal.record_failed(exc)
        # repro-lint: allow[broad-except] service isolation: one bad job must not kill the worker pool
        except Exception as exc:
            job.state = "failed"
            job.exit_code = 1
            job.error = f"{type(exc).__name__}: {exc}"
            if journal is not None:
                journal.record_failed(exc)
        finally:
            if journal is not None:
                journal.close()
            job.done_event.set()

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            if job is None:  # stop sentinel
                self._queue.task_done()
                return
            job.state = "running"
            await self._run_job(job)
            self._queue.task_done()

    # -- socket front-end ----------------------------------------------------

    def _config_from_wire(self, payload: Dict[str, Any]) -> FlowConfig:
        unknown = sorted(set(payload) - set(_WIRE_CONFIG_FIELDS))
        if unknown:
            raise ServiceRejectedError(
                "bad-config", f"unknown config fields: {unknown}"
            )
        try:
            return FlowConfig(**payload)
        except (TypeError, ValueError) as exc:
            raise ServiceRejectedError("bad-config", str(exc)) from exc

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "designs": sorted(self.flows),
                    "jobs": len(self.jobs)}
        if op == "submit":
            config = self._config_from_wire(dict(request.get("config") or {}))
            job_id = self.submit(
                str(request.get("design", "")),
                str(request.get("kind", "flow")),
                config,
            )
            return {"ok": True, "id": job_id}
        if op == "status":
            return {"ok": True, **self.status(str(request.get("id", "")))}
        if op in ("result", "report"):
            payload = await self.report(
                str(request.get("id", "")), timeout=request.get("timeout")
            )
            return {"ok": True, **payload}
        raise ServiceRejectedError("bad-config", f"unknown op {op!r}")

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                    response = await self._dispatch(request)
                except ServiceRejectedError as exc:
                    response = {"ok": False, "reason": exc.reason,
                                "error": str(exc)}
                except (ValueError, asyncio.TimeoutError) as exc:
                    response = {"ok": False, "reason": "bad-request",
                                "error": f"{type(exc).__name__}: {exc}"}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def serve_unix(self, path: str) -> asyncio.AbstractServer:
        """Expose the JSON-lines protocol on a UNIX socket at ``path``."""
        server = await asyncio.start_unix_server(self._handle_connection, path)
        self._servers.append(server)
        return server

    async def serve_tcp(self, host: str, port: int) -> asyncio.AbstractServer:
        """Expose the JSON-lines protocol on a local TCP socket."""
        server = await asyncio.start_server(self._handle_connection, host, port)
        self._servers.append(server)
        return server
