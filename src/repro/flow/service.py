"""Flow-as-a-service front-end over the async scheduler.

:class:`FlowService` turns a set of pre-built flows (one per design) into
an asyncio job server: ``submit`` enqueues a flow or sweep request onto a
**bounded** queue (a full queue rejects with
:class:`~repro.flow.errors.ServiceRejectedError` — backpressure, not
unbounded buffering), a fixed pool of workers drains it through one
shared :class:`~repro.flow.scheduler.StageScheduler` and the flows'
shared :class:`~repro.flow.context.FlowContext`, and
``status``/``result``/``report`` expose each job's lifecycle.

Because every worker settles stages against the same context, two
concurrent identical submissions compute each artifact key **exactly
once**: the second job's stages either block on the first's in-flight
settle (counted ``deduped`` in its trace) or serve finished artifacts as
cache hits.  Each request carries its own quarantine budget
(``FlowConfig.max_quarantine_fraction``) and, under a ``run_root``, its
own run journal — so a service job is exactly as durable and resumable
as a CLI run.

Hardening — every job terminates in bounded time with a correct exit
code, and the service survives ``kill -9`` with no lost work:

* **Deadlines + hung-stage watchdog.**  A job's wall budget is the
  submit-time ``deadline_s`` override, else ``FlowConfig.deadline_s``,
  else the service default.  Every journal append is a heartbeat; a
  single watchdog task cancels jobs past their deadline (reason
  ``deadline``) or silent longer than ``stage_timeout_s`` (reason
  ``hung-stage``) — both surface as exit code 2 and the worker moves on
  to the next job instead of staying pinned.
* **Per-design circuit breakers.**  ``breaker_threshold`` consecutive
  failures (exit codes 1/2; validation and quarantine are the caller's
  fault, not the design's) open the breaker: submits reject with
  ``circuit-open`` and a ``retry_after``; after ``breaker_cooldown_s``
  one probe job is admitted half-open — success closes the breaker,
  failure re-opens it.
* **Orphan recovery.**  :meth:`start` scans ``run_root`` for journals
  with no terminal record (the previous process died mid-job) and
  re-enqueues them through the fingerprint + config-hash validated
  resume path; pre-crash stages replay from the shared artifact cache.
* **Bounded stop.**  :meth:`stop` drains for at most ``drain_timeout``,
  then cancels stuck jobs (reason ``stopped``) and finally the workers
  themselves — it never gathers forever.

Job exit codes follow the CLI contract
(:mod:`repro.flow.errors`): 0 ok, 1 stage failure, 2 interrupted /
deadline / hung stage, 3 rejected input, 4 quarantine exceeded.

The same operations are exposed over a local socket (UNIX or TCP) as a
JSON-lines protocol — one request object per line, one response object
per line — see :meth:`FlowService.serve_unix` / :meth:`serve_tcp`.  The
``health`` op reports queue depth, worker occupancy, breaker states and
cache/executor telemetry.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.flow.chaos import FaultPlan
from repro.flow.context import FlowContext, stable_hash
from repro.flow.errors import (
    EXIT_FAILURE,
    EXIT_INTERRUPTED,
    FlowError,
    ServiceRejectedError,
)
from repro.flow.journal import RunJournal
from repro.flow.parallel import ParallelExecutor
from repro.flow.postopc import FlowConfig, FlowReport, PostOpcTimingFlow
from repro.flow.scheduler import StageScheduler
from repro.flow.sweep import FlowSweep, SweepResult

#: FlowConfig fields settable through the socket protocol (simple JSON
#: scalars only — recipe/condition objects need the in-process API)
_WIRE_CONFIG_FIELDS = (
    "opc_mode",
    "clock_period_ps",
    "n_critical_paths",
    "n_slices",
    "use_routing",
    "max_quarantine_fraction",
    "litho_shards",
    "incremental_sta",
    "deadline_s",
)

#: service job directories under ``run_root`` (the orphan-scan pattern)
_JOB_DIR = re.compile(r"^job-(\d+)$")


class CircuitBreaker:
    """Consecutive-failure breaker for one design.

    State machine: ``closed`` (normal) → ``open`` after ``threshold``
    consecutive failures → ``half-open`` once ``cooldown_s`` has elapsed
    (one probe admitted; the rest keep rejecting) → ``closed`` on probe
    success or back to ``open`` on probe failure.  A wedged probe cannot
    jam the breaker: the half-open window itself expires after another
    cooldown and the next submit probes again.

    ``time_fn`` is injectable so tests drive the clock deterministically.
    """

    def __init__(
        self,
        threshold: int,
        cooldown_s: float,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be positive, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._time = time_fn
        self.state = "closed"  # closed | open | half-open
        self.failures = 0
        #: last open/half-open transition time (the cooldown clock)
        self.opened_at = 0.0

    def admit(self) -> Optional[float]:
        """None admits the submit; a float rejects with that retry-after.

        An ``open`` breaker whose cooldown elapsed flips to ``half-open``
        and admits exactly this call as the probe; while the probe is in
        flight further submits are rejected until the window expires.
        """
        if self.state == "closed":
            return None
        elapsed = self._time() - self.opened_at
        if elapsed >= self.cooldown_s:
            self.state = "half-open"
            self.opened_at = self._time()
            return None
        return max(0.0, self.cooldown_s - elapsed)

    def record(self, ok: bool) -> None:
        """Feed one settled job's outcome into the state machine."""
        if ok:
            self.state = "closed"
            self.failures = 0
            return
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.threshold:
            self.state = "open"
            self.opened_at = self._time()

    def snapshot(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "consecutive_failures": self.failures,
            "threshold": self.threshold,
        }


@dataclass
class Job:
    """One submitted request and everything learned about it."""

    id: str
    design: str
    op: str  # "flow" | "sweep"
    config: FlowConfig
    state: str = "queued"  # queued | running | done | failed
    exit_code: Optional[int] = None
    error: str = ""
    #: JSON-able digest filled when the job settles (see _summarize_*)
    summary: Dict[str, Any] = field(default_factory=dict)
    #: the Python result object, for in-process callers
    result: Optional[Union[FlowReport, SweepResult]] = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event)
    #: effective wall budget (submit override > config > service default)
    deadline_s: Optional[float] = None
    #: True for an orphan re-enqueued from a pre-crash journal
    resumed: bool = False
    #: watchdog bookkeeping (service time_fn clock)
    started_at: Optional[float] = None
    last_beat: Optional[float] = None
    #: why the watchdog/stop cancelled the job ("deadline" |
    #: "hung-stage" | "stopped"); None for a job that ran to settlement
    cancel_reason: Optional[str] = None
    #: the asyncio task running the job (None until a worker picks it up)
    task: Optional["asyncio.Task[None]"] = None

    def status(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": self.id,
            "design": self.design,
            "op": self.op,
            "opc_mode": self.config.opc_mode,
            "state": self.state,
        }
        if self.exit_code is not None:
            payload["exit_code"] = self.exit_code
        if self.error:
            payload["error"] = self.error
        if self.cancel_reason is not None:
            payload["reason"] = self.cancel_reason
        if self.resumed:
            payload["resumed"] = True
        return payload


def _summarize_report(report: FlowReport) -> Dict[str, Any]:
    trace = report.trace
    return {
        "opc_mode": report.opc_mode,
        "wns_drawn": report.wns_drawn,
        "wns_post": report.wns_post,
        "leakage_drawn": report.leakage_drawn,
        "leakage_post": report.leakage_post,
        "coverage": report.coverage,
        "quarantined_gates": len(report.quarantined_gates),
        "stages": len(trace),
        "cache_hits": trace.cache_hits,
        "cache_misses": trace.cache_misses,
        "deduped": trace.deduped,
        "concurrent_stages": trace.concurrent_stages,
    }


def _summarize_sweep(result: SweepResult) -> Dict[str, Any]:
    modes = {
        mode: _summarize_report(report)
        for mode, report in result.reports.items()
    }
    return {
        "modes": modes,
        "failures": dict(result.failures),
        "stages": sum(m["stages"] for m in modes.values()),
        "cache_hits": sum(m["cache_hits"] for m in modes.values()),
        "cache_misses": sum(m["cache_misses"] for m in modes.values()),
        "deduped": sum(m["deduped"] for m in modes.values()),
        "table": result.table(),
    }


class FlowService:
    """Bounded-queue job service over a set of named flows.

    ``flows`` maps design names to pre-built
    :class:`~repro.flow.postopc.PostOpcTimingFlow` objects — typically
    all sharing one :class:`~repro.flow.context.FlowContext` so requests
    dedup against each other.  ``max_queue`` bounds the number of
    *queued* (not yet running) jobs; ``workers`` fixes how many jobs run
    concurrently; ``run_root`` (optional) gives every job a journaled run
    directory ``<run_root>/<job_id>/`` and enables orphan recovery on
    :meth:`start`.

    Hardening knobs (all keyword-only):

    * ``deadline_s`` — default per-job wall budget (submit-time and
      config overrides win);
    * ``stage_timeout_s`` — hung-stage watchdog: max silence between
      journal heartbeats (requires ``run_root``, where the heartbeats
      come from);
    * ``watchdog_poll_s`` — watchdog poll interval;
    * ``breaker_threshold`` / ``breaker_cooldown_s`` — per-design
      circuit breaker;
    * ``drain_timeout_s`` — default bound on :meth:`stop`;
    * ``fault_plan`` — chaos harness: injected journal-write and
      socket-drop faults (thread the same plan through the shared
      context / executor to cover the other sites);
    * ``time_fn`` — the watchdog/breaker clock, injectable for tests.

    Use as an async context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        flows: Mapping[str, PostOpcTimingFlow],
        *,
        max_queue: int = 16,
        workers: int = 2,
        run_root: Optional[str] = None,
        max_concurrent_stages: Optional[int] = None,
        deadline_s: Optional[float] = None,
        stage_timeout_s: Optional[float] = None,
        watchdog_poll_s: float = 0.1,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 30.0,
        drain_timeout_s: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        time_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        if not flows:
            raise ValueError("FlowService needs at least one design")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        if stage_timeout_s is not None and stage_timeout_s <= 0:
            raise ValueError(
                f"stage_timeout_s must be positive, got {stage_timeout_s}"
            )
        if stage_timeout_s is not None and run_root is None:
            raise ValueError(
                "stage_timeout_s needs run_root: heartbeats are journal "
                "appends, and only journaled jobs have a journal"
            )
        if watchdog_poll_s <= 0:
            raise ValueError(
                f"watchdog_poll_s must be positive, got {watchdog_poll_s}"
            )
        if drain_timeout_s is not None and drain_timeout_s <= 0:
            raise ValueError(
                f"drain_timeout_s must be positive, got {drain_timeout_s}"
            )
        self.flows: Dict[str, PostOpcTimingFlow] = dict(flows)
        self.max_queue = max_queue
        self.n_workers = workers
        self.run_root = run_root
        self.scheduler = StageScheduler(max_concurrent_stages)
        self.deadline_s = deadline_s
        self.stage_timeout_s = stage_timeout_s
        self.watchdog_poll_s = watchdog_poll_s
        self.drain_timeout_s = drain_timeout_s
        self.fault_plan = fault_plan
        self._time = time_fn
        self.jobs: Dict[str, Job] = {}
        self._breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(breaker_threshold, breaker_cooldown_s,
                                 time_fn=time_fn)
            for name in self.flows
        }
        self._queue: Optional["asyncio.Queue[Optional[Job]]"] = None
        self._workers: List["asyncio.Task[None]"] = []
        self._watchdog_task: Optional["asyncio.Task[None]"] = None
        #: worker index -> the job it is currently running (watchdog view)
        self._active: List[Optional[Job]] = []
        self._servers: List[asyncio.AbstractServer] = []
        self._counter = 0
        self._stopped = True

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start the worker pool + watchdog, re-enqueuing any orphans
        (journaled jobs with no terminal record) found under ``run_root``
        (idempotent)."""
        if not self._stopped:
            return
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._stopped = False
        self._active = [None] * self.n_workers
        if self.run_root is not None:
            # repro-lint: allow[blocking-in-async] startup-only scan before any job runs; it feeds put_nowait on the loop's queue, so it must stay on the loop
            self._recover_orphans()
        self._workers = [
            asyncio.create_task(self._worker(i),
                                name=f"flow-service-worker-{i}")
            for i in range(self.n_workers)
        ]
        self._watchdog_task = asyncio.create_task(
            self._watchdog(), name="flow-service-watchdog"
        )

    async def stop(self, drain_timeout: Optional[float] = None) -> None:
        """Stop accepting work; drain for a bounded time, then cancel.

        Jobs still queued (never started) are marked failed rather than
        silently dropped.  Running jobs get ``drain_timeout`` seconds
        (default :attr:`drain_timeout_s`; None = wait forever) to finish;
        past that they are cancelled with reason ``stopped`` (exit code
        2) and, as a last resort, the worker tasks themselves are
        cancelled — ``stop`` never gathers a wedged pool forever.
        """
        if self._stopped:
            return
        self._stopped = True
        timeout = drain_timeout if drain_timeout is not None \
            else self.drain_timeout_s
        assert self._queue is not None
        while True:
            try:
                queued = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if queued is not None:
                queued.state = "failed"
                queued.exit_code = EXIT_FAILURE
                queued.error = "service stopped before the job started"
                queued.done_event.set()
            self._queue.task_done()
        for _ in self._workers:
            await self._queue.put(None)
        if self._workers:
            # Not gather(): cancelling a timed-out gather would cancel the
            # workers before the stuck *jobs* were dealt with.
            _, pending = await asyncio.wait(set(self._workers),
                                            timeout=timeout)
            if pending:
                for job in self._active:
                    if (job is not None and job.task is not None
                            and not job.task.done()):
                        if job.cancel_reason is None:
                            job.cancel_reason = "stopped"
                        job.task.cancel()
                _, pending = await asyncio.wait(pending, timeout=1.0)
                for worker in pending:
                    worker.cancel()
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            await asyncio.gather(self._watchdog_task, return_exceptions=True)
            self._watchdog_task = None
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers = []

    async def __aenter__(self) -> "FlowService":
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    # -- orphan recovery -----------------------------------------------------

    def _recover_orphans(self) -> None:
        """Re-enqueue journaled jobs the previous process never finished.

        Also advances the id counter past every recovered directory so
        new submissions cannot collide with pre-crash job ids.
        """
        assert self.run_root is not None and self._queue is not None
        if not os.path.isdir(self.run_root):
            return
        for name in sorted(os.listdir(self.run_root)):
            match = _JOB_DIR.match(name)
            run_dir = os.path.join(self.run_root, name)
            if match is None or not os.path.isdir(run_dir):
                continue
            self._counter = max(self._counter, int(match.group(1)))
            probe = RunJournal(run_dir)
            if not probe.exists() or probe.terminal_state() is not None:
                continue
            job = self._rebuild_orphan(name, probe)
            self.jobs[job.id] = job
            if job.state != "queued":
                continue
            try:
                self._queue.put_nowait(job)
            except asyncio.QueueFull:
                self._fail_orphan(
                    job, "orphan not resumable: recovery queue overflow"
                )

    def _rebuild_orphan(self, job_id: str, probe: RunJournal) -> Job:
        """One orphan journal -> a queued (or failed) Job.

        The manifest must round-trip: known design, wire-expressible
        config, and fingerprint + config hash matching what *this*
        process would compute — the same validation ``--resume`` applies,
        so recovery can never replay artifacts that don't belong to the
        current code or config.
        """
        manifest = probe.manifest() or {}
        design = str(manifest.get("design", ""))
        job = Job(id=job_id, design=design,
                  op=str(manifest.get("op", "flow")),
                  config=FlowConfig(), resumed=True)
        flow = self.flows.get(design)
        if flow is None:
            return self._fail_orphan(
                job, f"orphan not resumable: unknown design {design!r}"
            )
        if job.op not in ("flow", "sweep"):
            return self._fail_orphan(
                job, f"orphan not resumable: unknown op {job.op!r}"
            )
        wire = manifest.get("config_wire")
        if not isinstance(wire, dict):
            return self._fail_orphan(
                job, "orphan not resumable: manifest has no config_wire"
            )
        try:
            config = self._config_from_wire(dict(wire))
        except ServiceRejectedError as exc:
            return self._fail_orphan(job, f"orphan not resumable: {exc}")
        if manifest.get("fingerprint") != flow.fingerprint:
            return self._fail_orphan(
                job, "orphan not resumable: flow fingerprint changed"
            )
        if manifest.get("config_hash") != stable_hash(config):
            return self._fail_orphan(
                job, "orphan not resumable: config hash mismatch"
            )
        job.config = config
        job.deadline_s = config.deadline_s \
            if config.deadline_s is not None else self.deadline_s
        return job

    def _fail_orphan(self, job: Job, message: str) -> Job:
        """Settle an unrecoverable orphan: failed job + journaled verdict
        (so the next restart's scan skips it as terminal)."""
        job.state = "failed"
        job.exit_code = EXIT_FAILURE
        job.error = message
        job.done_event.set()
        assert self.run_root is not None
        try:
            with RunJournal(os.path.join(self.run_root, job.id)) as journal:
                journal.append("failed", error=message)
        except OSError:
            pass
        return job

    # -- operations ----------------------------------------------------------

    def submit(
        self,
        design: str,
        op: str = "flow",
        config: Optional[FlowConfig] = None,
        deadline_s: Optional[float] = None,
    ) -> str:
        """Enqueue one job; returns its id.

        Rejects with :class:`~repro.flow.errors.ServiceRejectedError`
        (never queues) when the service is stopped (``stopped``), the
        design is unknown (``unknown-design``), the op or deadline is
        malformed (``bad-config``), the design's circuit breaker is open
        (``circuit-open``, carrying ``retry_after``), or the bounded
        queue is full (``queue-full``).

        ``deadline_s`` overrides both ``config.deadline_s`` and the
        service default for this job only.
        """
        if self._stopped or self._queue is None:
            raise ServiceRejectedError("stopped", "service is not running")
        if design not in self.flows:
            known = ", ".join(sorted(self.flows))
            raise ServiceRejectedError(
                "unknown-design", f"no design {design!r} (have: {known})"
            )
        if op not in ("flow", "sweep"):
            raise ServiceRejectedError(
                "bad-config", f"op must be 'flow' or 'sweep', got {op!r}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ServiceRejectedError(
                "bad-config", f"deadline_s must be positive, got {deadline_s}"
            )
        retry_after = self._breakers[design].admit()
        if retry_after is not None:
            raise ServiceRejectedError(
                "circuit-open",
                f"design {design!r} breaker is open after repeated "
                f"failures; retry in {retry_after:.1f}s",
                retry_after=retry_after,
            )
        config = config if config is not None else FlowConfig()
        if deadline_s is not None:
            effective: Optional[float] = deadline_s
        elif config.deadline_s is not None:
            effective = config.deadline_s
        else:
            effective = self.deadline_s
        job = Job(id="", design=design, op=op, config=config,
                  deadline_s=effective)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            raise ServiceRejectedError(
                "queue-full",
                f"bounded queue ({self.max_queue}) is full; retry later",
            ) from None
        # The id is allocated only after a successful enqueue, so rejected
        # submits never burn numbers.  Safe: no await between the put and
        # the registration, so no worker can observe the blank id.
        self._counter += 1
        job.id = f"job-{self._counter:04d}"
        self.jobs[job.id] = job
        return job.id

    def _job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceRejectedError("unknown-job", f"no job {job_id!r}")
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's lifecycle state (queued/running/done/failed)."""
        return self._job(job_id).status()

    def health(self) -> Dict[str, Any]:
        """Operational snapshot: queue, workers, breakers, cache stats.

        Context and executor telemetry is deduplicated by object
        identity, so flows sharing one context are not double-counted.
        """
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        workers = [
            {"index": index, "job": None if job is None else job.id}
            for index, job in enumerate(self._active)
        ]
        contexts: Dict[int, FlowContext] = {}
        executors: Dict[int, ParallelExecutor] = {}
        for flow in self.flows.values():
            contexts.setdefault(id(flow.context), flow.context)
            executors.setdefault(id(flow.executor), flow.executor)
        cache = {
            "mem_hits": 0, "mem_misses": 0,
            "disk_hits": 0, "disk_misses": 0, "disk_writes": 0,
            "disk_write_errors": 0, "disk_corruptions": 0,
            "deduped": 0,
        }
        for context in contexts.values():
            for stat in cache:
                cache[stat] += int(getattr(context, stat))
        executor_stats = {
            "chunk_failures": 0, "retries": 0,
            "degraded_chunks": 0, "abandoned": 0,
        }
        for executor in executors.values():
            snapshot = executor.stats_snapshot()
            for stat in executor_stats:
                executor_stats[stat] += int(snapshot.get(stat, 0))
        return {
            "running": not self._stopped,
            "queue_depth": 0 if self._queue is None else self._queue.qsize(),
            "workers": workers,
            "jobs": states,
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in sorted(self._breakers.items())
            },
            "cache": cache,
            "executor": executor_stats,
        }

    async def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Union[FlowReport, SweepResult]:
        """Await the job and return its Python result object.

        A failed job raises :class:`~repro.flow.errors.ServiceRejectedError`
        naming the failure — reason ``deadline`` when the watchdog killed
        it (deadline or hung stage), ``failed-job`` otherwise.
        """
        job = self._job(job_id)
        await asyncio.wait_for(job.done_event.wait(), timeout)
        if job.result is None:
            reason = "deadline" \
                if job.cancel_reason in ("deadline", "hung-stage") \
                else "failed-job"
            raise ServiceRejectedError(
                reason, f"{job_id} failed: {job.error}"
            )
        return job.result

    async def report(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Await the job and return its JSON-able summary + status."""
        job = self._job(job_id)
        await asyncio.wait_for(job.done_event.wait(), timeout)
        return {**job.status(), "summary": job.summary}

    # -- execution -----------------------------------------------------------

    def _open_journal(self, job: Job) -> Optional[RunJournal]:
        if self.run_root is None:
            return None
        run_dir = os.path.join(self.run_root, job.id)
        flow = self.flows[job.design]
        manifest = {
            "design": job.design,
            "op": job.op,
            "fingerprint": flow.fingerprint,
            "config_hash": stable_hash(job.config),
            # Wire-expressible config copy: what makes the journal
            # self-describing enough for orphan recovery to rebuild and
            # re-validate the job after a crash.
            "config_wire": {
                name: getattr(job.config, name)
                for name in _WIRE_CONFIG_FIELDS
            },
        }
        if job.resumed:
            return RunJournal.resume(run_dir, manifest,
                                     fault_plan=self.fault_plan)
        return RunJournal.create(run_dir, manifest,
                                 fault_plan=self.fault_plan)

    def _beat(self, job: Job) -> None:
        """Journal-append heartbeat: the job's scheduler is alive."""
        job.last_beat = self._time()

    async def _run_job(self, job: Job) -> None:
        flow = self.flows[job.design]
        journal: Optional[RunJournal] = None
        try:
            journal = await asyncio.to_thread(self._open_journal, job)
            if journal is not None:
                journal.add_listener(lambda record: self._beat(job))
            if job.op == "flow":
                report = await flow.run_async(
                    job.config, self.scheduler, journal=journal
                )
                job.result = report
                job.summary = _summarize_report(report)
            else:
                sweep_result = await FlowSweep(flow).run_async(
                    job.config, scheduler=self.scheduler, journal=journal
                )
                job.result = sweep_result
                job.summary = _summarize_sweep(sweep_result)
            job.state = "done"
            job.exit_code = 0
            if journal is not None:
                journal.record_complete(job_id=job.id)
        except asyncio.CancelledError:
            # Watchdog (deadline / hung stage) or bounded stop.  The
            # deadline contract reuses the interrupted exit code: the run
            # was stopped by the service, not broken by the design.
            job.state = "failed"
            job.exit_code = EXIT_INTERRUPTED
            job.result = None
            job.summary = {}
            reason = job.cancel_reason or "cancelled"
            if reason == "deadline":
                job.error = (
                    f"deadline exceeded "
                    f"({job.deadline_s or 0.0:.3g}s wall budget)"
                )
            elif reason == "hung-stage":
                job.error = (
                    f"hung stage: no scheduler heartbeat for "
                    f"{self.stage_timeout_s or 0.0:.3g}s"
                )
            else:
                job.error = "service stopped before the job finished"
            if journal is not None:
                try:
                    journal.append("failed", error=job.error, reason=reason,
                                   exit_code=EXIT_INTERRUPTED)
                except OSError:
                    pass
            raise
        except FlowError as exc:
            job.state = "failed"
            job.exit_code = exc.exit_code
            job.error = f"{type(exc).__name__}: {exc}"
            job.result = None
            job.summary = {}
            if journal is not None:
                try:
                    journal.record_failed(exc)
                except OSError:
                    pass
        # repro-lint: allow[broad-except] service isolation: one bad job must not kill the worker pool
        except Exception as exc:
            job.state = "failed"
            job.exit_code = EXIT_FAILURE
            job.error = f"{type(exc).__name__}: {exc}"
            job.result = None
            job.summary = {}
            if journal is not None:
                try:
                    journal.record_failed(exc)
                except OSError:
                    pass
        finally:
            if journal is not None:
                try:
                    journal.close()
                except OSError:
                    pass
            job.done_event.set()

    def _breaker_record(self, job: Job) -> None:
        """Feed the job's outcome into its design's breaker.

        Exit codes 1 (stage failure) and 2 (deadline / hung stage) count
        as design failures; 3/4 (validation, quarantine budget) are the
        request's fault and stay neutral.  Jobs killed by ``stop`` say
        nothing about the design either.
        """
        if job.cancel_reason == "stopped" or self._stopped:
            return
        breaker = self._breakers.get(job.design)
        if breaker is None:
            return
        if job.exit_code == 0:
            breaker.record(True)
        elif job.exit_code in (EXIT_FAILURE, EXIT_INTERRUPTED):
            breaker.record(False)

    async def _worker(self, index: int) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            if job is None:  # stop sentinel
                self._queue.task_done()
                return
            job.state = "running"
            job.started_at = self._time()
            job.last_beat = job.started_at
            self._active[index] = job
            task = asyncio.create_task(
                self._run_job(job), name=f"flow-service-{job.id}"
            )
            job.task = task
            try:
                await task
            except asyncio.CancelledError:
                if not task.cancelled():
                    # The CancelledError is the *worker's* own
                    # cancellation (forced stop), not the job's.
                    raise
                # Watchdog/stop killed the job: the worker is recycled
                # and picks up the next queued job.
            finally:
                self._active[index] = None
                self._queue.task_done()
            self._breaker_record(job)

    async def _watchdog(self) -> None:
        """Cancel jobs past their deadline or silent past stage_timeout.

        Re-cancels every poll until the job task actually dies: the first
        CancelledError can land while the scheduler is settling in-flight
        stages, and a *hung* stage would otherwise keep the unwind (and
        the worker) pinned indefinitely.
        """
        while not self._stopped:
            now = self._time()
            for job in list(self._active):
                if job is None or job.task is None or job.task.done():
                    continue
                if job.cancel_reason is None:
                    if (job.deadline_s is not None
                            and job.started_at is not None
                            and now - job.started_at > job.deadline_s):
                        job.cancel_reason = "deadline"
                    elif (self.stage_timeout_s is not None
                            and job.last_beat is not None
                            and now - job.last_beat > self.stage_timeout_s):
                        job.cancel_reason = "hung-stage"
                    else:
                        continue
                job.task.cancel()
            await asyncio.sleep(self.watchdog_poll_s)

    # -- socket front-end ----------------------------------------------------

    def _config_from_wire(self, payload: Dict[str, Any]) -> FlowConfig:
        unknown = sorted(set(payload) - set(_WIRE_CONFIG_FIELDS))
        if unknown:
            raise ServiceRejectedError(
                "bad-config", f"unknown config fields: {unknown}"
            )
        try:
            return FlowConfig(**payload)
        except (TypeError, ValueError) as exc:
            raise ServiceRejectedError("bad-config", str(exc)) from exc

    @staticmethod
    def _wire_number(value: Any, name: str) -> Optional[float]:
        """Validate an optional numeric wire field (timeout, deadline)."""
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ServiceRejectedError(
                "bad-config", f"{name} must be a number, got {value!r}"
            )
        number = float(value)
        if number < 0:
            raise ServiceRejectedError(
                "bad-config", f"{name} must be >= 0, got {number}"
            )
        return number

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "designs": sorted(self.flows),
                    "jobs": len(self.jobs)}
        if op == "health":
            return {"ok": True, **self.health()}
        if op == "submit":
            config = self._config_from_wire(dict(request.get("config") or {}))
            deadline = self._wire_number(
                request.get("deadline_s"), "deadline_s"
            )
            job_id = self.submit(
                str(request.get("design", "")),
                str(request.get("kind", "flow")),
                config,
                deadline_s=deadline,
            )
            return {"ok": True, "id": job_id}
        if op == "status":
            return {"ok": True, **self.status(str(request.get("id", "")))}
        if op in ("result", "report"):
            timeout = self._wire_number(request.get("timeout"), "timeout")
            job_id = str(request.get("id", ""))
            try:
                payload = await self.report(job_id, timeout=timeout)
            except asyncio.TimeoutError:
                return {
                    "ok": False, "id": job_id, "reason": "timeout",
                    "error": f"job {job_id!r} not settled after {timeout}s",
                }
            return {"ok": True, **payload}
        raise ServiceRejectedError("bad-config", f"unknown op {op!r}")

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                op_key = ""
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                    op_key = str(request.get("op", ""))
                    response = await self._dispatch(request)
                except ServiceRejectedError as exc:
                    response = {"ok": False, "reason": exc.reason,
                                "error": str(exc)}
                    if exc.retry_after is not None:
                        response["retry_after"] = exc.retry_after
                except (ValueError, asyncio.TimeoutError) as exc:
                    response = {"ok": False, "reason": "bad-request",
                                "error": f"{type(exc).__name__}: {exc}"}
                if (self.fault_plan is not None
                        and self.fault_plan.trigger("socket", op_key)
                        is not None):
                    # Injected connection drop: the request was processed
                    # but the response never makes it out — clients must
                    # survive an EOF and re-query.
                    return
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def serve_unix(self, path: str) -> asyncio.AbstractServer:
        """Expose the JSON-lines protocol on a UNIX socket at ``path``."""
        server = await asyncio.start_unix_server(self._handle_connection, path)
        self._servers.append(server)
        return server

    async def serve_tcp(self, host: str, port: int) -> asyncio.AbstractServer:
        """Expose the JSON-lines protocol on a local TCP socket."""
        server = await asyncio.start_server(self._handle_connection, host, port)
        self._servers.append(server)
        return server
