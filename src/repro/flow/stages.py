"""The flow as a stage graph.

Each :class:`FlowStage` declares which upstream stages it consumes and
which *slice* of the :class:`~repro.flow.postopc.FlowConfig` can change
its output.  The :class:`StageGraph` hashes (flow fingerprint, config
slice, upstream keys) into a Merkle-style artifact key per stage, so the
:class:`~repro.flow.context.FlowContext` serves any stage whose inputs
are unchanged from an earlier run: a ``selective``-mode run re-uses the
placement, drawn STA and rule-OPC base of a ``rule``-mode run, and a
dose-corner sweep re-uses everything upstream of lithography.

STA stages run at a canonical clock period and are re-based (a pure
endpoint-required-time shift) to the requested period at report assembly,
so the timing cache is period-independent — deriving the period *from*
the drawn STA costs nothing extra.
"""

from __future__ import annotations

import time
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.flow.chaos import inject_stage_fault
from repro.flow.context import FlowContext, SettleOutcome, stable_hash
from repro.flow.errors import FlowError, GraphValidationError, StageError
from repro.flow.trace import FlowTrace
from repro.metrology.gate_cd import (
    measure_tile_chunk,
    plan_metrology_tiles,
    quarantine_measurements,
)
from repro.metrology.shard import plan_metrology_shards
from repro.opc import RuleOpcRecipe
from repro.timing import (
    TimingConstraints,
    derates_from_measurements,
    diff_derates,
    instance_leakage,
    quarantine_derates,
    run_hold,
    run_incremental,
)

if TYPE_CHECKING:
    from repro.flow.journal import InterruptGuard, RunJournal
    from repro.flow.postopc import FlowConfig, PostOpcTimingFlow
    from repro.geometry import Rect
    from repro.litho.resist import ProcessCondition

#: STA artifacts are computed at this period and re-based on demand.
CANONICAL_PERIOD_PS = 1000.0


class FlowStage:
    """One node of the flow graph.

    Subclasses set :attr:`name`, override :meth:`run`, and declare their
    dependencies via :meth:`requires` and their config sensitivity via
    :meth:`config_slice`.  ``run`` returns the stage's artifacts as a dict
    and may fill ``counters`` (numbers only) for the trace.
    """

    name: str = ""
    #: bump when the stage's output semantics change — the version is part
    #: of the artifact key, so a persistent cache written by older code is
    #: recomputed instead of served with stale semantics
    version: int = 1

    def requires(self, config: "FlowConfig") -> Tuple[str, ...]:
        """Names of the stages whose artifacts this stage consumes (may
        depend on the config, e.g. selective OPC needs critical gates)."""
        return ()

    def provides(self) -> Tuple[str, ...]:
        """Names of the artifacts this stage's :meth:`run` returns.

        Explicit edge data: :meth:`StageGraph.validate` rejects graphs
        where two stages provide the same artifact (the merged artifact
        dict would be schedule-dependent), and the ``stage-edge-contract``
        lint rule cross-checks these declarations against what ``run``
        actually returns.
        """
        return ()

    def config_slice(self, flow: "PostOpcTimingFlow", config: "FlowConfig") -> Any:
        """The part of the config that can change this stage's output."""
        return ()

    def install(self, flow: "PostOpcTimingFlow", outputs: Dict[str, Any]) -> None:
        """Hook for cache hits: re-attach artifacts to the flow object."""

    def run(
        self,
        flow: "PostOpcTimingFlow",
        config: "FlowConfig",
        artifacts: Dict[str, Any],
        counters: Dict[str, float],
        context: FlowContext,
    ) -> Dict[str, Any]:
        raise NotImplementedError


class PlaceStage(FlowStage):
    """Row placement, per-instance gate rects, and the flat poly layer."""

    name = "place"
    version = 1

    def provides(self) -> Tuple[str, ...]:
        return ("placement", "gate_rects", "owned_polygons")

    def install(self, flow: "PostOpcTimingFlow", outputs: Dict[str, Any]) -> None:
        flow._install_layout(outputs)

    def run(
        self,
        flow: "PostOpcTimingFlow",
        config: "FlowConfig",
        artifacts: Dict[str, Any],
        counters: Dict[str, float],
        context: FlowContext,
    ) -> Dict[str, Any]:
        outputs = flow._build_layout()
        counters["gates"] = len(outputs["placement"].gates)
        counters["polygons"] = len(outputs["owned_polygons"])
        return outputs


class DrawnStaStage(FlowStage):
    """Drawn-CD STA at the canonical period (re-based downstream)."""

    name = "sta_drawn"
    version = 1

    def requires(self, config: "FlowConfig") -> Tuple[str, ...]:
        return ("place",)

    def provides(self) -> Tuple[str, ...]:
        return ("drawn_sta",)

    def config_slice(self, flow: "PostOpcTimingFlow", config: "FlowConfig") -> Any:
        return (config.use_routing,)

    def run(
        self,
        flow: "PostOpcTimingFlow",
        config: "FlowConfig",
        artifacts: Dict[str, Any],
        counters: Dict[str, float],
        context: FlowContext,
    ) -> Dict[str, Any]:
        engine = flow._engine_for(config)
        sta = engine.run(TimingConstraints(clock_period_ps=CANONICAL_PERIOD_PS))
        counters["endpoints"] = len(sta.endpoints)
        return {"drawn_sta": sta}


class TagCriticalStage(FlowStage):
    """Tag the gates on the top-K drawn speed paths (OPC hand-off)."""

    name = "tag_critical"
    version = 1

    def requires(self, config: "FlowConfig") -> Tuple[str, ...]:
        return ("sta_drawn",)

    def provides(self) -> Tuple[str, ...]:
        return ("critical_gates",)

    def config_slice(self, flow: "PostOpcTimingFlow", config: "FlowConfig") -> Any:
        return (config.n_critical_paths,)

    def run(
        self,
        flow: "PostOpcTimingFlow",
        config: "FlowConfig",
        artifacts: Dict[str, Any],
        counters: Dict[str, float],
        context: FlowContext,
    ) -> Dict[str, Any]:
        critical = flow.tag_critical_gates(
            artifacts["drawn_sta"], config.n_critical_paths
        )
        counters["critical_gates"] = len(critical)
        return {"critical_gates": critical}


class OpcStage(FlowStage):
    """Mask synthesis: none / rule / model / selective."""

    name = "opc"
    version = 1

    def requires(self, config: "FlowConfig") -> Tuple[str, ...]:
        if config.opc_mode == "selective":
            return ("place", "tag_critical")
        return ("place",)

    def provides(self) -> Tuple[str, ...]:
        return ("mask_polygons", "model_corrected_polygons")

    def config_slice(self, flow: "PostOpcTimingFlow", config: "FlowConfig") -> Any:
        mode = config.opc_mode
        if mode == "none":
            return ("none",)
        rule_recipe = config.rule_recipe or RuleOpcRecipe.for_tech(flow.tech)
        if mode == "rule":
            return ("rule", rule_recipe)
        # model and selective share the slice shape; selective additionally
        # depends on the tagged gates via the tag_critical parent key.
        return (mode, rule_recipe, config.model_recipe, config.condition)

    def run(
        self,
        flow: "PostOpcTimingFlow",
        config: "FlowConfig",
        artifacts: Dict[str, Any],
        counters: Dict[str, float],
        context: FlowContext,
    ) -> Dict[str, Any]:
        mask, n_model = flow.apply_opc(
            config,
            artifacts.get("critical_gates", set()),
            counters=counters,
            context=context,
        )
        counters["model_corrected"] = n_model
        return {"mask_polygons": mask, "model_corrected_polygons": n_model}


class MetrologyStage(FlowStage):
    """Litho simulation + per-transistor printed-CD extraction.

    Two window plans: the classic 512-px tile decomposition, or — when
    ``config.litho_shards`` is set — large halo-amortized shard windows
    (:mod:`repro.metrology.shard`), which image the same layout with far
    less redundant ambit work.  Either plan fans out through the flow's
    executor; serial and parallel dispatch of one plan are bit-identical.
    The two plans measure slightly different CD values (different FFT
    window geometry), which is why the shard count is in the config slice.
    """

    name = "metrology"
    # v2: quarantines unsound measurements, emits cd_quarantine
    version = 3  # v3: optional shard-planned windows (config.litho_shards)

    def requires(self, config: "FlowConfig") -> Tuple[str, ...]:
        return ("place", "opc")

    def provides(self) -> Tuple[str, ...]:
        return ("measurements", "cd_quarantine")

    def config_slice(self, flow: "PostOpcTimingFlow", config: "FlowConfig") -> Any:
        return (config.condition, config.n_slices, config.process_map,
                config.litho_shards)

    def run(
        self,
        flow: "PostOpcTimingFlow",
        config: "FlowConfig",
        artifacts: Dict[str, Any],
        counters: Dict[str, float],
        context: FlowContext,
    ) -> Dict[str, Any]:
        condition_fn: Optional[Callable[["Rect"], "ProcessCondition"]] = None
        if config.process_map is not None:
            process_map = config.process_map

            def _map_condition(interior: "Rect") -> "ProcessCondition":
                return process_map.condition_at(*interior.center.as_tuple())

            condition_fn = _map_condition
        if config.litho_shards:
            tasks = plan_metrology_shards(
                flow.simulator,
                artifacts["mask_polygons"],
                flow.gate_rects,
                shards=config.litho_shards,
                condition=config.condition,
                n_slices=config.n_slices,
                condition_fn=condition_fn,
            )
            counters["litho_shards"] = len(tasks)
        else:
            tasks = plan_metrology_tiles(
                flow.simulator,
                artifacts["mask_polygons"],
                flow.gate_rects,
                condition=config.condition,
                n_slices=config.n_slices,
                condition_fn=condition_fn,
            )
        tile_results = flow.executor.map_chunks(
            measure_tile_chunk, flow.simulator, tasks, counters=counters
        )
        measurements: Dict[Any, Any] = {}
        for measured in tile_results:
            measurements.update(measured)
        # Degraded-coverage guard: untrustworthy extractions (non-finite,
        # out-of-band, sliceless) and sites no tile measured are
        # quarantined — downstream falls back to drawn CDs for them.
        measurements, faults = quarantine_measurements(measurements)
        for key in flow.gate_rects:
            if key not in measurements and key not in faults:
                faults[key] = "site not measured by any tile"
        counters["tiles"] = len(tasks)
        counters["gates_measured"] = len(measurements)
        counters["quarantined_gates"] = len({key[0] for key in faults})
        return {"measurements": measurements, "cd_quarantine": faults}


class BackAnnotateStage(FlowStage):
    """Printed CDs -> per-instance derates (the paper's back-annotation)."""

    name = "back_annotate"
    version = 2  # v2: quarantines non-physical derates, emits derate_quarantine

    def requires(self, config: "FlowConfig") -> Tuple[str, ...]:
        return ("metrology",)

    def provides(self) -> Tuple[str, ...]:
        return ("derates", "derate_quarantine")

    def run(
        self,
        flow: "PostOpcTimingFlow",
        config: "FlowConfig",
        artifacts: Dict[str, Any],
        counters: Dict[str, float],
        context: FlowContext,
    ) -> Dict[str, Any]:
        derates = derates_from_measurements(
            flow.netlist, flow.cells, artifacts["measurements"], flow.model
        )
        # A non-physical derate (NaN/inf/non-positive scale) would poison
        # the STA; drop it back to drawn timing and count it quarantined.
        derates, faults = quarantine_derates(derates)
        counters["derated_instances"] = len(derates)
        counters["failed_gates"] = sum(1 for d in derates.values() if d.failed)
        counters["quarantined_gates"] = len(faults)
        return {"derates": derates, "derate_quarantine": faults}


class PostStaStage(FlowStage):
    """Post-OPC STA with back-annotated derates (canonical period).

    By default the stage re-times *incrementally* from the drawn STA:
    only the fan-out cones of the derated instances are re-propagated
    (:func:`repro.timing.run_incremental`), which is bit-identical to the
    full engine run — the parity tests enforce it — and far cheaper when
    selective OPC touched few gates.  ``config.incremental_sta = False``
    forces the classic full run.
    """

    name = "sta_post"
    version = 2  # v2: cone-limited incremental re-time from the drawn STA

    def requires(self, config: "FlowConfig") -> Tuple[str, ...]:
        if config.incremental_sta:
            return ("place", "sta_drawn", "back_annotate")
        return ("place", "back_annotate")

    def provides(self) -> Tuple[str, ...]:
        return ("post_sta",)

    def config_slice(self, flow: "PostOpcTimingFlow", config: "FlowConfig") -> Any:
        return (config.use_routing, config.incremental_sta)

    def run(
        self,
        flow: "PostOpcTimingFlow",
        config: "FlowConfig",
        artifacts: Dict[str, Any],
        counters: Dict[str, float],
        context: FlowContext,
    ) -> Dict[str, Any]:
        engine = flow._engine_for(config)
        constraints = TimingConstraints(clock_period_ps=CANONICAL_PERIOD_PS)
        derates = artifacts["derates"]
        if config.incremental_sta:
            # The drawn STA ran derate-free under the same constraints, so
            # the change set is every instance with a non-identity derate.
            changed = diff_derates({}, derates)
            sta = run_incremental(
                engine, artifacts["drawn_sta"], changed, constraints, derates
            )
            counters["retimed_instances"] = len(changed)
        else:
            sta = engine.run(constraints, derates)
        counters["endpoints"] = len(sta.endpoints)
        return {"post_sta": sta}


class HoldStage(FlowStage):
    """Register hold slacks before/after back-annotation."""

    name = "hold"
    version = 1

    def requires(self, config: "FlowConfig") -> Tuple[str, ...]:
        return ("place", "back_annotate")

    def provides(self) -> Tuple[str, ...]:
        return ("hold_drawn", "hold_post")

    def config_slice(self, flow: "PostOpcTimingFlow", config: "FlowConfig") -> Any:
        return (config.use_routing,)

    def run(
        self,
        flow: "PostOpcTimingFlow",
        config: "FlowConfig",
        artifacts: Dict[str, Any],
        counters: Dict[str, float],
        context: FlowContext,
    ) -> Dict[str, Any]:
        engine = flow._engine_for(config)
        constraints = TimingConstraints(clock_period_ps=CANONICAL_PERIOD_PS)
        drawn = run_hold(engine, constraints)
        post = run_hold(engine, constraints, artifacts["derates"])
        counters["hold_endpoints"] = len(drawn.endpoints)
        return {
            "hold_drawn": drawn.worst_hold_slack,
            "hold_post": post.worst_hold_slack,
        }


class PowerStage(FlowStage):
    """Leakage before/after printed-CD annotation (the NRG model)."""

    name = "power"
    version = 1

    def requires(self, config: "FlowConfig") -> Tuple[str, ...]:
        return ("metrology",)

    def provides(self) -> Tuple[str, ...]:
        return ("leakage_drawn", "leakage_post")

    def run(
        self,
        flow: "PostOpcTimingFlow",
        config: "FlowConfig",
        artifacts: Dict[str, Any],
        counters: Dict[str, float],
        context: FlowContext,
    ) -> Dict[str, Any]:
        drawn = sum(
            instance_leakage(flow.netlist, flow.cells, {}, flow.model).values()
        )
        post = sum(
            instance_leakage(
                flow.netlist, flow.cells, artifacts["measurements"], flow.model
            ).values()
        )
        return {"leakage_drawn": drawn, "leakage_post": post}


def stage_key(
    flow: "PostOpcTimingFlow",
    stage: FlowStage,
    config: "FlowConfig",
    parent_keys: Tuple[str, ...],
) -> str:
    """The Merkle artifact key of one stage for one flow/config.

    Hashes (flow fingerprint, stage name+version, the stage's config
    slice, the keys of its parents in ``requires()`` order) — so a stage
    is invalidated exactly when its own inputs change, and two different
    designs can never collide in a shared context.
    """
    return stable_hash((
        flow.fingerprint,
        stage.name,
        stage.version,
        stage.config_slice(flow, config),
        parent_keys,
    ))


def settle_stage(
    flow: "PostOpcTimingFlow",
    stage: FlowStage,
    config: "FlowConfig",
    key: str,
    artifacts: Dict[str, Any],
    context: FlowContext,
) -> Tuple[Dict[str, Any], Dict[str, float], SettleOutcome]:
    """Settle one stage against the context: serve, await, or compute.

    The single code path both the serial :meth:`StageGraph.execute` loop
    and the async scheduler go through, so their results are identical by
    construction.  Returns ``(outputs, counters, outcome)``; on a cache
    hit the stage's :meth:`~FlowStage.install` hook has already re-attached
    the artifacts to the flow.  A stage exception is wrapped in
    :class:`~repro.flow.errors.StageError` naming the stage and key
    (structured :class:`~repro.flow.errors.FlowError` subclasses pass
    through untouched), and nothing is cached.
    """

    def _compute() -> Tuple[Dict[str, Any], Dict[str, float]]:
        counters: Dict[str, float] = {}
        try:
            if context.fault_plan is not None:
                inject_stage_fault(context.fault_plan, stage.name)
            outputs = stage.run(flow, config, artifacts, counters, context)
        except FlowError:
            raise
        except Exception as exc:
            raise StageError(stage.name, key, exc) from exc
        return (outputs, dict(counters))

    outcome = context.settle(stage.name, key, _compute)
    outputs, counters = outcome.value
    if outcome.cache_hit:
        stage.install(flow, outputs)
    return outputs, dict(counters), outcome


class StageGraph:
    """A declarative DAG of stages with content-addressed caching.

    ``requires()`` edges are validated up front (:meth:`validate` rejects
    missing producers, duplicate artifact providers, and cycles with a
    :class:`~repro.flow.errors.GraphValidationError` pinning the defect
    kind) and drive both the serial :meth:`execute` loop and the async
    :class:`~repro.flow.scheduler.StageScheduler` via :meth:`ready_set`.
    """

    def __init__(self, stages: Sequence[FlowStage]) -> None:
        names: Set[str] = set()
        for stage in stages:
            if not stage.name:
                raise ValueError(f"stage {stage!r} has no name")
            if not isinstance(stage.version, int) or isinstance(stage.version, bool):
                raise ValueError(
                    f"stage {stage.name!r} version must be an integer, "
                    f"got {stage.version!r}"
                )
            if stage.name in names:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            names.add(stage.name)
        self.stages: List[FlowStage] = list(stages)
        self._by_name: Dict[str, FlowStage] = {s.name: s for s in self.stages}

    def __iter__(self) -> Iterator[FlowStage]:
        return iter(self.stages)

    def stage(self, name: str) -> FlowStage:
        """The member stage carrying ``name`` (KeyError if absent)."""
        return self._by_name[name]

    def edges(self, config: "FlowConfig") -> List[Tuple[str, str]]:
        """The dependency edges as (parent, child) pairs, in declaration
        order (``requires()`` may depend on the config — selective OPC
        adds a ``tag_critical -> opc`` edge)."""
        pairs: List[Tuple[str, str]] = []
        for stage in self.stages:
            for parent in stage.requires(config):
                pairs.append((parent, stage.name))
        return pairs

    def artifact_producers(self) -> Dict[str, str]:
        """Artifact name -> producing stage name, per ``provides()``."""
        producers: Dict[str, str] = {}
        for stage in self.stages:
            for artifact in stage.provides():
                producers[artifact] = stage.name
        return producers

    def validate(self, config: "FlowConfig") -> List[FlowStage]:
        """Check the graph is a well-formed DAG; returns a topological
        order (declaration order among ready stages, so the default graph
        schedules exactly as it is declared).

        Raises :class:`~repro.flow.errors.GraphValidationError` with
        ``kind`` set to ``missing-producer`` (a ``requires()`` names no
        member stage), ``duplicate-producer`` (two stages ``provides()``
        the same artifact), or ``cycle``.
        """
        provided: Dict[str, str] = {}
        for stage in self.stages:
            for artifact in stage.provides():
                if artifact in provided:
                    raise GraphValidationError(
                        "duplicate-producer",
                        f"artifact {artifact!r} is provided by both "
                        f"{provided[artifact]!r} and {stage.name!r}",
                    )
                provided[artifact] = stage.name
        for stage in self.stages:
            for parent in stage.requires(config):
                if parent not in self._by_name:
                    raise GraphValidationError(
                        "missing-producer",
                        f"stage {stage.name!r} requires {parent!r}, "
                        "which no stage in the graph carries",
                    )
        # Declaration-order-stable topological sort: each pass appends
        # every stage that became ready, in declaration order.  For the
        # default graph (declared in a valid topological order) this
        # returns exactly the declaration order, so the serial engine's
        # trace/journal sequence is independent of which edges a given
        # config happens to relax.
        order: List[FlowStage] = []
        done: Set[str] = set()
        while len(order) < len(self.stages):
            progressed = False
            for stage in self.stages:
                if stage.name in done:
                    continue
                if all(p in done for p in stage.requires(config)):
                    order.append(stage)
                    done.add(stage.name)
                    progressed = True
            if not progressed:
                stuck = sorted(name for name in self._by_name if name not in done)
                raise GraphValidationError(
                    "cycle",
                    "requires() edges contain a dependency cycle among "
                    f"{stuck}",
                )
        return order

    def ready_set(self, config: "FlowConfig", done: Set[str]) -> List[FlowStage]:
        """Stages whose parents are all in ``done`` and which are not
        themselves done — the schedulable frontier, in declaration order."""
        ready: List[FlowStage] = []
        for stage in self.stages:
            if stage.name in done:
                continue
            if all(parent in done for parent in stage.requires(config)):
                ready.append(stage)
        return ready

    def execute(
        self,
        flow: "PostOpcTimingFlow",
        config: "FlowConfig",
        context: FlowContext,
        trace: FlowTrace,
        journal: Optional["RunJournal"] = None,
        interrupt: Optional["InterruptGuard"] = None,
    ) -> Dict[str, Any]:
        """Run (or re-serve) every stage serially; returns the merged
        artifacts.

        The graph is :meth:`validate`-d first, then walked in topological
        order through :func:`settle_stage` — the same settle path the
        async scheduler uses, so serial and concurrent runs are
        bit-identical.  ``journal`` (a
        :class:`~repro.flow.journal.RunJournal`) receives one ``stage``
        record per settled stage; ``interrupt`` (an
        :class:`~repro.flow.journal.InterruptGuard`) is polled *between*
        stages, so a stop request lets the in-flight stage settle — its
        artifacts are cached and journaled — before
        :class:`~repro.flow.errors.FlowInterrupted` unwinds the run.
        """
        artifacts: Dict[str, Any] = {}
        keys: Dict[str, str] = {}
        for stage in self.validate(config):
            if interrupt is not None:
                interrupt.checkpoint(next_stage=stage.name)
            parents = stage.requires(config)
            key = stage_key(flow, stage, config, tuple(keys[p] for p in parents))
            keys[stage.name] = key

            start = time.perf_counter()
            outputs, counters, outcome = settle_stage(
                flow, stage, config, key, artifacts, context
            )
            end = time.perf_counter()
            if outcome.deduped:
                # Request-specific, never part of the cached counters.
                counters["deduped"] = 1.0
            record = trace.add(stage.name, end - start,
                               cache_hit=outcome.cache_hit, counters=counters,
                               cache_source=outcome.source,
                               t_start=start, t_end=end)
            if journal is not None:
                # repro-lint: allow[entropy-taint] wall-time is telemetry: resume replays keys, never durations
                journal.record_stage(
                    record, key=key,
                    quarantined=int(record.counters.get("quarantined_gates", 0)),
                )
            artifacts.update(outputs)
        return artifacts


def default_stage_graph() -> StageGraph:
    """The paper's pipeline as a stage graph."""
    return StageGraph([
        PlaceStage(),
        DrawnStaStage(),
        TagCriticalStage(),
        OpcStage(),
        MetrologyStage(),
        BackAnnotateStage(),
        PostStaStage(),
        HoldStage(),
        PowerStage(),
    ])
