"""Multi-configuration sweeps over one design, sharing a FlowContext.

The paper's analysis is inherently comparative — the same design under
none / rule / model / selective OPC, or across process conditions.  A
:class:`FlowSweep` runs each configuration through the same flow and
artifact context, so the placement, drawn STA, tagging and rule-OPC base
are computed once and served from cache for every subsequent mode.  Give
the flow a persistent context (``FlowContext(cache_dir=...)``) and the
sharing extends across processes: a rerun sweep serves every unchanged
stage as a disk hit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.analysis import format_table
from repro.flow.context import FlowContext
from repro.flow.postopc import OPC_MODES, FlowConfig, FlowReport, PostOpcTimingFlow


@dataclass
class SweepResult:
    """Per-mode reports plus the shared-context accounting."""

    reports: Dict[str, FlowReport]
    context: FlowContext

    @property
    def modes(self) -> List[str]:
        return list(self.reports)

    def table(self) -> str:
        """The comparison table the paper's figures are built from."""
        rows = []
        for mode, report in self.reports.items():
            rows.append((
                mode,
                f"{report.cd_stats.mean:+.2f}",
                f"{report.wns_drawn:+.1f}",
                f"{report.wns_post:+.1f}",
                f"{report.wns_change_percent:+.1f}%",
                f"{report.leakage_change_percent:+.1f}%",
                report.model_corrected_polygons,
                f"{report.trace.total_wall_s:.2f}",
                report.trace.cache_hits,
            ))
        return format_table(
            ["opc", "CD err (nm)", "WNS drawn", "WNS post", "dWNS", "dleak",
             "model polys", "wall (s)", "cached"],
            rows,
            title="OPC-mode sweep (shared flow context)",
        )

    def cache_summary(self) -> str:
        return self.context.summary()


class FlowSweep:
    """Runs one flow under many OPC modes with shared artifacts."""

    def __init__(self, flow: PostOpcTimingFlow, modes: Sequence[str] = OPC_MODES):
        self.flow = flow
        self.modes = list(modes)

    def run(self, config: Optional[FlowConfig] = None) -> SweepResult:
        """Run every mode through the flow's shared context.

        ``config`` supplies everything except ``opc_mode`` (the swept
        knob).  The first run populates the context; later runs re-use
        placement, drawn STA, critical-gate tagging and the rule-OPC base
        — the trace of each report records what was served from cache.
        """
        base = config or FlowConfig()
        reports: Dict[str, FlowReport] = {}
        for mode in self.modes:
            reports[mode] = self.flow.run(replace(base, opc_mode=mode))
        return SweepResult(reports=reports, context=self.flow.context)
