"""Multi-configuration sweeps over one design, sharing a FlowContext.

The paper's analysis is inherently comparative — the same design under
none / rule / model / selective OPC, or across process conditions.  A
:class:`FlowSweep` runs each configuration through the same flow and
artifact context, so the placement, drawn STA, tagging and rule-OPC base
are computed once and served from cache for every subsequent mode.  Give
the flow a persistent context (``FlowContext(cache_dir=...)``) and the
sharing extends across processes: a rerun sweep serves every unchanged
stage as a disk hit.

Sweeps are partial-failure-safe: one mode raising does not discard the
modes already completed.  The failure is captured into
:attr:`SweepResult.failures` and the comparison table renders the
survivors plus a failure footer.  Only interruption
(:class:`~repro.flow.errors.FlowInterrupted` / ``KeyboardInterrupt``)
propagates — a stop request must stop the whole sweep, not skip a mode.

:meth:`FlowSweep.run_async` rides the async scheduler: the four modes
run as **one shared-prefix DAG** — every mode wants the same placement /
drawn-STA / tagging keys, so the context's single-flight settle computes
each exactly once (one mode computes, the others await and are served,
counted as ``deduped``), and the mode-specific suffixes execute
concurrently.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.analysis import format_table
from repro.flow.context import FlowContext
from repro.flow.errors import FlowInterrupted
from repro.flow.postopc import OPC_MODES, FlowConfig, FlowReport, PostOpcTimingFlow

if TYPE_CHECKING:
    from repro.flow.journal import InterruptGuard, RunJournal
    from repro.flow.scheduler import StageScheduler


@dataclass
class SweepResult:
    """Per-mode reports plus the shared-context accounting.

    ``failures`` maps each mode that raised to its error text; the
    corresponding mode is absent from ``reports``.
    """

    reports: Dict[str, FlowReport]
    context: FlowContext
    failures: Dict[str, str] = field(default_factory=dict)

    @property
    def modes(self) -> List[str]:
        return list(self.reports)

    def table(self) -> str:
        """The comparison table the paper's figures are built from.

        Completed modes render as rows; failed modes are appended as a
        footer so a partial sweep still reads as one document.
        """
        rows: List[Tuple[object, ...]] = []
        for mode, report in self.reports.items():
            rows.append((
                mode,
                f"{report.cd_stats.mean:+.2f}",
                f"{report.wns_drawn:+.1f}",
                f"{report.wns_post:+.1f}",
                f"{report.wns_change_percent:+.1f}%",
                f"{report.leakage_change_percent:+.1f}%",
                report.model_corrected_polygons,
                f"{report.trace.total_wall_s:.2f}",
                report.trace.cache_hits,
            ))
        text = format_table(
            ["opc", "CD err (nm)", "WNS drawn", "WNS post", "dWNS", "dleak",
             "model polys", "wall (s)", "cached"],
            rows,
            title="OPC-mode sweep (shared flow context)",
        )
        if self.failures:
            footer = [f"failed modes ({len(self.failures)}):"]
            for mode, error in self.failures.items():
                footer.append(f"  {mode}: {error}")
            text = text + "\n" + "\n".join(footer)
        return text

    def cache_summary(self) -> str:
        return self.context.summary()


class FlowSweep:
    """Runs one flow under many OPC modes with shared artifacts."""

    def __init__(self, flow: PostOpcTimingFlow,
                 modes: Sequence[str] = OPC_MODES) -> None:
        self.flow = flow
        self.modes = list(modes)

    def run(
        self,
        config: Optional[FlowConfig] = None,
        *,
        journal: Optional["RunJournal"] = None,
        interrupt: Optional["InterruptGuard"] = None,
    ) -> SweepResult:
        """Run every mode through the flow's shared context.

        ``config`` supplies everything except ``opc_mode`` (the swept
        knob).  The first run populates the context; later runs re-use
        placement, drawn STA, critical-gate tagging and the rule-OPC base
        — the trace of each report records what was served from cache.

        A mode that raises is captured into ``failures`` and the sweep
        continues; completed reports are never discarded.  ``journal``
        receives one ``mode`` record per outcome, and ``interrupt``
        stops the whole sweep (the partial result is *not* returned —
        resume replays the completed modes from cache).
        """
        base = config or FlowConfig()
        reports: Dict[str, FlowReport] = {}
        failures: Dict[str, str] = {}
        for mode in self.modes:
            try:
                reports[mode] = self.flow.run(
                    replace(base, opc_mode=mode),
                    journal=journal, interrupt=interrupt,
                )
            except FlowInterrupted:
                raise  # the flow already journaled the interruption
            # repro-lint: allow[broad-except] partial-failure safety: one bad mode must not discard the sweep
            except Exception as exc:
                failures[mode] = f"{type(exc).__name__}: {exc}"
                if journal is not None:
                    journal.record_mode(mode, "failed", detail=failures[mode])
            else:
                if journal is not None:
                    journal.record_mode(mode, "ok")
        return SweepResult(reports=reports, context=self.flow.context,
                           failures=failures)

    def run_concurrent(
        self,
        config: Optional[FlowConfig] = None,
        *,
        scheduler: Optional["StageScheduler"] = None,
        journal: Optional["RunJournal"] = None,
        interrupt: Optional["InterruptGuard"] = None,
    ) -> SweepResult:
        """Run every mode concurrently as one shared-prefix DAG.

        Synchronous entry point for :meth:`run_async` (starts its own
        event loop).  Same contract as :meth:`run` — bit-identical
        reports, partial-failure safety, mode records journaled — but the
        modes execute at once: the shared prefix (placement, drawn STA,
        tagging, rule-OPC base) is computed exactly once via single-flight
        dedup and the suffixes overlap.
        """
        return asyncio.run(self.run_async(
            config, scheduler=scheduler, journal=journal, interrupt=interrupt,
        ))

    async def run_async(
        self,
        config: Optional[FlowConfig] = None,
        *,
        scheduler: Optional["StageScheduler"] = None,
        journal: Optional["RunJournal"] = None,
        interrupt: Optional["InterruptGuard"] = None,
    ) -> SweepResult:
        """Async counterpart of :meth:`run` over one shared-prefix DAG.

        Every mode gets its own task on the caller's event loop, all
        driven by one :class:`~repro.flow.scheduler.StageScheduler`
        against the flow's shared context: concurrent requests for the
        same artifact key (the drawn prefix every mode shares) collapse
        into one computation, counted ``deduped`` in the other modes'
        traces.  Mode outcomes are journaled in declared sweep order,
        failures are captured per mode, and an interrupt stops the whole
        sweep after in-flight stages settle.
        """
        from repro.flow.scheduler import StageScheduler

        base = config or FlowConfig()
        scheduler = scheduler if scheduler is not None else StageScheduler()

        async def _one_mode(mode: str) -> FlowReport:
            return await self.flow.run_async(
                replace(base, opc_mode=mode), scheduler,
                journal=journal, interrupt=interrupt,
            )

        tasks = {
            mode: asyncio.create_task(_one_mode(mode), name=f"mode:{mode}")
            for mode in self.modes
        }
        reports: Dict[str, FlowReport] = {}
        failures: Dict[str, str] = {}
        interrupted: Optional[FlowInterrupted] = None
        # Collect in declared order so journal records and failure capture
        # are deterministic regardless of completion timing.
        for mode in self.modes:
            try:
                reports[mode] = await tasks[mode]
            except FlowInterrupted as exc:
                interrupted = interrupted or exc
            # repro-lint: allow[broad-except] partial-failure safety: one bad mode must not discard the sweep
            except Exception as exc:
                failures[mode] = f"{type(exc).__name__}: {exc}"
                if journal is not None:
                    await asyncio.to_thread(
                        journal.record_mode, mode, "failed",
                        detail=failures[mode],
                    )
            else:
                if journal is not None:
                    await asyncio.to_thread(journal.record_mode, mode, "ok")
        if interrupted is not None:
            raise interrupted  # the flow already journaled the interruption
        return SweepResult(reports=reports, context=self.flow.context,
                           failures=failures)
