"""Structured observability for flow runs.

Every stage execution — live or served from the :class:`FlowContext`
cache — appends one :class:`StageRecord` to a :class:`FlowTrace`: wall
time, cache hit/miss, and stage-specific counters (tile counts, polygon
counts, gates measured).  The trace replaces the ad-hoc ``runtimes`` dict
of earlier versions (kept as a compatibility view) and serializes to JSON
for the CLI's ``--trace`` flag.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class StageRecord:
    """One stage execution inside one flow run."""

    name: str
    wall_s: float
    cache_hit: bool = False
    #: stage-specific integers/floats: tiles, polygons, gates, endpoints...
    #: (fault-tolerant dispatch adds worker_failures/retries/degraded here)
    counters: Dict[str, float] = field(default_factory=dict)
    #: which cache tier served a hit ("memory" | "disk"); None for live runs
    cache_source: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "cache_hit": self.cache_hit,
            "cache_source": self.cache_source,
            "counters": dict(self.counters),
        }


class FlowTrace:
    """Ordered record of the stages one flow run executed."""

    def __init__(self) -> None:
        self.records: List[StageRecord] = []

    def add(
        self,
        name: str,
        wall_s: float,
        cache_hit: bool = False,
        counters: Optional[Dict[str, float]] = None,
        cache_source: Optional[str] = None,
    ) -> StageRecord:
        record = StageRecord(name, wall_s, cache_hit, dict(counters or {}),
                             cache_source)
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[StageRecord]:
        return iter(self.records)

    def record_for(self, name: str) -> Optional[StageRecord]:
        """The most recent record of one stage (None if it never ran)."""
        for record in reversed(self.records):
            if record.name == name:
                return record
        return None

    # -- aggregate views ----------------------------------------------------

    def runtimes(self) -> Dict[str, float]:
        """Stage name -> total wall seconds (the legacy ``runtimes`` view)."""
        totals: Dict[str, float] = {}
        for record in self.records:
            totals[record.name] = totals.get(record.name, 0.0) + record.wall_s
        return totals

    def counter_total(self, name: str) -> float:
        """Sum of one counter across every stage record (0 if absent)."""
        return sum(r.counters.get(name, 0) for r in self.records)

    @property
    def quarantined_gates(self) -> int:
        """Gate instances quarantined to drawn CDs across all stages."""
        return int(self.counter_total("quarantined_gates"))

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.records if not r.cache_hit)

    @property
    def total_wall_s(self) -> float:
        return sum(r.wall_s for r in self.records)

    # -- serialization ------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "stages": [r.as_dict() for r in self.records],
            "total_wall_s": self.total_wall_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def write_json(self, path: str, indent: int = 2) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json(indent=indent))
            fh.write("\n")

    def summary(self) -> str:
        """Human-readable per-stage table."""
        lines = []
        for record in self.records:
            extras = ", ".join(f"{k}={v:g}" for k, v in sorted(record.counters.items()))
            hit = ""
            if record.cache_hit:
                tier = f":{record.cache_source}" if record.cache_source else ""
                hit = f" (cached{tier})"
            suffix = f" [{extras}]" if extras else ""
            lines.append(f"{record.name:<14} {record.wall_s:8.3f}s{hit}{suffix}")
        lines.append(
            f"{'total':<14} {self.total_wall_s:8.3f}s "
            f"({self.cache_hits} cached / {self.cache_misses} live)"
        )
        return "\n".join(lines)
