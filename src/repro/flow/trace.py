"""Structured observability for flow runs.

Every stage execution — live or served from the :class:`FlowContext`
cache — appends one :class:`StageRecord` to a :class:`FlowTrace`: wall
time, cache hit/miss, and stage-specific counters (tile counts, polygon
counts, gates measured).  The trace replaces the ad-hoc ``runtimes`` dict
of earlier versions (kept as a compatibility view) and serializes to JSON
for the CLI's ``--trace`` flag.

Under the async scheduler, records also carry their **execution window**
(``t_start``/``t_end`` on a shared monotonic clock), from which
:attr:`FlowTrace.concurrent_stages` derives the peak number of stages
that were genuinely in flight at once, and :attr:`FlowTrace.deduped`
counts settles served by another request's in-flight computation — the
two counters that *prove* work was shared rather than merely claimed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class StageRecord:
    """One stage execution inside one flow run."""

    name: str
    wall_s: float
    cache_hit: bool = False
    #: stage-specific integers/floats: tiles, polygons, gates, endpoints...
    #: (fault-tolerant dispatch adds worker_failures/retries/degraded here)
    counters: Dict[str, float] = field(default_factory=dict)
    #: which cache tier served a hit ("memory" | "disk"); None for live runs
    cache_source: Optional[str] = None
    #: execution window on a shared monotonic clock (both 0.0 when the
    #: run predates the scheduler or the caller didn't time the stage)
    t_start: float = 0.0
    t_end: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "cache_hit": self.cache_hit,
            "cache_source": self.cache_source,
            "counters": dict(self.counters),
            "t_start": self.t_start,
            "t_end": self.t_end,
        }


class FlowTrace:
    """Ordered record of the stages one flow run executed."""

    def __init__(self) -> None:
        self.records: List[StageRecord] = []
        #: run-level facts attached by the engine (e.g. the scheduler sets
        #: ``cache_consistent`` from the context's counter invariants)
        self.annotations: Dict[str, object] = {}

    def add(
        self,
        name: str,
        wall_s: float,
        cache_hit: bool = False,
        counters: Optional[Dict[str, float]] = None,
        cache_source: Optional[str] = None,
        t_start: float = 0.0,
        t_end: float = 0.0,
    ) -> StageRecord:
        record = StageRecord(name, wall_s, cache_hit, dict(counters or {}),
                             cache_source, t_start, t_end)
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[StageRecord]:
        return iter(self.records)

    def record_for(self, name: str) -> Optional[StageRecord]:
        """The most recent record of one stage (None if it never ran)."""
        for record in reversed(self.records):
            if record.name == name:
                return record
        return None

    # -- aggregate views ----------------------------------------------------

    def runtimes(self) -> Dict[str, float]:
        """Stage name -> total wall seconds (the legacy ``runtimes`` view)."""
        totals: Dict[str, float] = {}
        for record in self.records:
            totals[record.name] = totals.get(record.name, 0.0) + record.wall_s
        return totals

    def counter_total(self, name: str) -> float:
        """Sum of one counter across every stage record (0 if absent)."""
        return sum(r.counters.get(name, 0) for r in self.records)

    @property
    def quarantined_gates(self) -> int:
        """Gate instances quarantined to drawn CDs across all stages."""
        return int(self.counter_total("quarantined_gates"))

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for r in self.records if not r.cache_hit)

    @property
    def total_wall_s(self) -> float:
        return sum(r.wall_s for r in self.records)

    @property
    def deduped(self) -> int:
        """Settles served by another request's in-flight computation."""
        return int(self.counter_total("deduped"))

    @property
    def concurrent_stages(self) -> int:
        """Peak number of stages whose execution windows overlapped.

        Derived from the recorded ``t_start``/``t_end`` windows by an
        event sweep; windows that merely touch (one ends exactly where
        the next begins) do not count as overlapping.  1 for a serial
        run, 0 for an empty trace or one without timed windows.
        """
        events: List[tuple] = []
        for r in self.records:
            if r.t_end > r.t_start:
                events.append((r.t_start, 1))
                events.append((r.t_end, -1))
        if not events:
            return 0
        # Sort ends before starts at equal times so touching windows
        # never register as concurrent.
        events.sort(key=lambda ev: (ev[0], ev[1]))
        live = peak = 0
        for _, delta in events:
            live += delta
            peak = max(peak, live)
        return peak

    # -- serialization ------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "stages": [r.as_dict() for r in self.records],
            "total_wall_s": self.total_wall_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "deduped": self.deduped,
            "concurrent_stages": self.concurrent_stages,
        }
        payload.update(self.annotations)
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def write_json(self, path: str, indent: int = 2) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json(indent=indent))
            fh.write("\n")

    def summary(self) -> str:
        """Human-readable per-stage table."""
        lines = []
        for record in self.records:
            extras = ", ".join(f"{k}={v:g}" for k, v in sorted(record.counters.items()))
            hit = ""
            if record.cache_hit:
                tier = f":{record.cache_source}" if record.cache_source else ""
                hit = f" (cached{tier})"
            suffix = f" [{extras}]" if extras else ""
            lines.append(f"{record.name:<14} {record.wall_s:8.3f}s{hit}{suffix}")
        lines.append(
            f"{'total':<14} {self.total_wall_s:8.3f}s "
            f"({self.cache_hits} cached / {self.cache_misses} live)"
        )
        return "\n".join(lines)
