"""Hierarchical layout database and binary GDSII stream I/O."""

from repro.gds.layout import Cell, Instance, LayerShapes, Layout
from repro.gds.gdsii import read_gds, write_gds

__all__ = ["Cell", "Instance", "LayerShapes", "Layout", "read_gds", "write_gds"]
