"""Binary GDSII stream format reader/writer.

Implements the subset of GDSII needed for standard-cell layout exchange:
``BOUNDARY`` elements and ``SREF`` references with the Manhattan subset of
``STRANS``/``ANGLE``.  Coordinates are written as int32 database units; the
database unit is 1 nm by default (``Layout.unit_nm``).

The stream format is the classic Calma record stream: each record is a
2-byte big-endian length (including the 4-byte header), a record type byte
and a data type byte, followed by the payload.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, List, Union

from repro.gds.layout import Cell, Layout
from repro.geometry import Point, Polygon, Transform

# Record types (subset).
HEADER = 0x00
BGNLIB = 0x01
LIBNAME = 0x02
UNITS = 0x03
ENDLIB = 0x04
BGNSTR = 0x05
STRNAME = 0x06
ENDSTR = 0x07
BOUNDARY = 0x08
SREF = 0x0A
LAYER = 0x0D
DATATYPE = 0x0E
XY = 0x10
ENDEL = 0x11
SNAME = 0x12
STRANS = 0x1A
MAG = 0x1B
ANGLE = 0x1C

# Data type codes.
NO_DATA = 0x00
INT2 = 0x02
INT4 = 0x03
REAL8 = 0x05
ASCII = 0x06

_DUMMY_TIMESTAMP = [2005, 6, 13, 0, 0, 0] * 2  # DAC 2005 week; GDSII wants two


def _to_gds_real8(value: float) -> bytes:
    """Encode an excess-64, base-16 8-byte GDSII real."""
    if value == 0.0:
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return struct.pack(">B", sign | exponent) + struct.pack(">Q", mantissa)[1:]


def _from_gds_real8(data: bytes) -> float:
    """Decode an excess-64, base-16 8-byte GDSII real."""
    if len(data) != 8:
        raise ValueError("REAL8 field must be 8 bytes")
    first = data[0]
    sign = -1.0 if first & 0x80 else 1.0
    exponent = (first & 0x7F) - 64
    mantissa = int.from_bytes(data[1:], "big") / float(1 << 56)
    return sign * mantissa * (16.0 ** exponent)


def _record(rec_type: int, data_type: int, payload: bytes = b"") -> bytes:
    if len(payload) % 2:
        payload += b"\x00"  # ASCII fields pad to even length
    return struct.pack(">HBB", len(payload) + 4, rec_type, data_type) + payload


def _ascii_record(rec_type: int, text: str) -> bytes:
    return _record(rec_type, ASCII, text.encode("ascii"))


def write_gds(layout: Layout, path_or_file: Union[str, BinaryIO]) -> None:
    """Serialise ``layout`` to a GDSII stream file."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "wb") as fh:
            _write_stream(layout, fh)
    else:
        _write_stream(layout, path_or_file)


def _write_stream(layout: Layout, fh: BinaryIO) -> None:
    db_unit_m = layout.unit_nm * 1e-9
    user_per_db = layout.unit_nm * 1e-3  # db unit expressed in microns
    fh.write(_record(HEADER, INT2, struct.pack(">h", 600)))
    fh.write(_record(BGNLIB, INT2, struct.pack(">12h", *_DUMMY_TIMESTAMP)))
    fh.write(_ascii_record(LIBNAME, layout.name))
    fh.write(_record(UNITS, REAL8, _to_gds_real8(user_per_db) + _to_gds_real8(db_unit_m)))
    for cell in layout.cells.values():
        _write_cell(cell, layout.unit_nm, fh)
    fh.write(_record(ENDLIB, NO_DATA))


def _write_cell(cell: Cell, unit_nm: float, fh: BinaryIO) -> None:
    fh.write(_record(BGNSTR, INT2, struct.pack(">12h", *_DUMMY_TIMESTAMP)))
    fh.write(_ascii_record(STRNAME, cell.name))
    for (layer, datatype), polygons in sorted(cell.shapes.items()):
        for poly in polygons:
            fh.write(_record(BOUNDARY, NO_DATA))
            fh.write(_record(LAYER, INT2, struct.pack(">h", layer)))
            fh.write(_record(DATATYPE, INT2, struct.pack(">h", datatype)))
            pts = poly.points + [poly.points[0]]  # GDSII closes the ring explicitly
            coords = []
            for p in pts:
                coords.extend((int(round(p.x / unit_nm)), int(round(p.y / unit_nm))))
            fh.write(_record(XY, INT4, struct.pack(f">{len(coords)}i", *coords)))
            fh.write(_record(ENDEL, NO_DATA))
    for inst in cell.instances:
        t = inst.transform
        fh.write(_record(SREF, NO_DATA))
        fh.write(_ascii_record(SNAME, inst.cell_name))
        if t.mirror_x or t.rotation:
            flags = 0x8000 if t.mirror_x else 0
            fh.write(_record(STRANS, INT2, struct.pack(">H", flags)))
            if t.rotation:
                fh.write(_record(ANGLE, REAL8, _to_gds_real8(float(t.rotation))))
        x = int(round(t.dx / unit_nm))
        y = int(round(t.dy / unit_nm))
        fh.write(_record(XY, INT4, struct.pack(">2i", x, y)))
        fh.write(_record(ENDEL, NO_DATA))
    fh.write(_record(ENDSTR, NO_DATA))


def read_gds(path_or_file: Union[str, BinaryIO]) -> Layout:
    """Parse a GDSII stream file back into a :class:`Layout`.

    Only the element types produced by :func:`write_gds` are understood;
    unknown records inside elements are skipped, unknown element types raise.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file, "rb") as fh:
            records = list(_iter_records(fh))
    else:
        records = list(_iter_records(path_or_file))
    return _parse(records)


def _iter_records(fh: BinaryIO):
    while True:
        header = fh.read(4)
        if len(header) < 4:
            return
        length, rec_type, data_type = struct.unpack(">HBB", header)
        payload = fh.read(length - 4)
        yield rec_type, data_type, payload
        if rec_type == ENDLIB:
            return


def _parse(records: List) -> Layout:
    layout = Layout()
    cell: Cell = None
    i = 0
    n = len(records)
    while i < n:
        rec_type, _, payload = records[i]
        if rec_type == LIBNAME:
            layout.name = payload.rstrip(b"\x00").decode("ascii")
        elif rec_type == UNITS:
            db_unit_m = _from_gds_real8(payload[8:16])
            layout.unit_nm = db_unit_m * 1e9
        elif rec_type == BGNSTR:
            cell = None
        elif rec_type == STRNAME:
            cell = layout.new_cell(payload.rstrip(b"\x00").decode("ascii"))
        elif rec_type == BOUNDARY:
            i = _parse_boundary(records, i + 1, cell, layout.unit_nm)
            continue
        elif rec_type == SREF:
            i = _parse_sref(records, i + 1, cell, layout.unit_nm)
            continue
        i += 1
    return layout


def _parse_boundary(records, i, cell: Cell, unit_nm: float) -> int:
    layer = datatype = 0
    points: List[Point] = []
    while records[i][0] != ENDEL:
        rec_type, _, payload = records[i]
        if rec_type == LAYER:
            layer = struct.unpack(">h", payload)[0]
        elif rec_type == DATATYPE:
            datatype = struct.unpack(">h", payload)[0]
        elif rec_type == XY:
            values = struct.unpack(f">{len(payload) // 4}i", payload)
            points = [
                Point(values[j] * unit_nm, values[j + 1] * unit_nm)
                for j in range(0, len(values), 2)
            ]
        i += 1
    if cell is None:
        raise ValueError("BOUNDARY outside of a structure")
    cell.add_polygon((layer, datatype), Polygon(points[:-1]))  # drop closing vertex
    return i + 1


def _parse_sref(records, i, cell: Cell, unit_nm: float) -> int:
    name = ""
    mirror = False
    rotation = 0
    dx = dy = 0.0
    while records[i][0] != ENDEL:
        rec_type, _, payload = records[i]
        if rec_type == SNAME:
            name = payload.rstrip(b"\x00").decode("ascii")
        elif rec_type == STRANS:
            mirror = bool(struct.unpack(">H", payload)[0] & 0x8000)
        elif rec_type == ANGLE:
            rotation = int(round(_from_gds_real8(payload))) % 360
        elif rec_type == XY:
            x, y = struct.unpack(">2i", payload)
            dx, dy = x * unit_nm, y * unit_nm
        i += 1
    if cell is None:
        raise ValueError("SREF outside of a structure")
    cell.add_instance(name, Transform(dx=dx, dy=dy, rotation=rotation, mirror_x=mirror))
    return i + 1
