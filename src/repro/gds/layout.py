"""Hierarchical layout database.

The database mirrors the GDSII data model: a :class:`Layout` is a library of
named :class:`Cell` s; each cell holds polygons bucketed by ``(layer,
datatype)`` and references (:class:`Instance`) to other cells placed under a
Manhattan :class:`~repro.geometry.Transform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.geometry import Polygon, Rect, Transform

LayerKey = Tuple[int, int]  # (layer number, datatype)


@dataclass
class Instance:
    """A placed reference to another cell."""

    cell_name: str
    transform: Transform = field(default_factory=Transform.identity)


@dataclass
class LayerShapes:
    """The polygons of one cell on one (layer, datatype)."""

    layer: LayerKey
    polygons: List[Polygon] = field(default_factory=list)


class Cell:
    """A named layout cell: shapes per layer plus child instances."""

    def __init__(self, name: str):
        if not name:
            raise ValueError("cell name must be non-empty")
        self.name = name
        self.shapes: Dict[LayerKey, List[Polygon]] = {}
        self.instances: List[Instance] = []

    def add_polygon(self, layer: LayerKey, polygon: Polygon) -> None:
        self.shapes.setdefault(layer, []).append(polygon)

    def add_rect(self, layer: LayerKey, rect: Rect) -> None:
        self.add_polygon(layer, Polygon.from_rect(rect))

    def add_instance(self, cell_name: str, transform: Optional[Transform] = None) -> Instance:
        inst = Instance(cell_name, transform or Transform.identity())
        self.instances.append(inst)
        return inst

    def polygons_on(self, layer: LayerKey) -> List[Polygon]:
        return list(self.shapes.get(layer, ()))

    def layers(self) -> List[LayerKey]:
        return sorted(self.shapes)

    @property
    def polygon_count(self) -> int:
        return sum(len(polys) for polys in self.shapes.values())

    def local_bbox(self) -> Optional[Rect]:
        """Bounding box of this cell's own shapes (not instances)."""
        boxes = [poly.bbox for polys in self.shapes.values() for poly in polys]
        if not boxes:
            return None
        return Rect.bounding(boxes)


class Layout:
    """A library of cells with hierarchy utilities."""

    def __init__(self, name: str = "LIB", unit_nm: float = 1.0):
        self.name = name
        #: database unit expressed in nanometres (1.0 = 1 nm grid)
        self.unit_nm = unit_nm
        self.cells: Dict[str, Cell] = {}

    def new_cell(self, name: str) -> Cell:
        if name in self.cells:
            raise ValueError(f"cell {name!r} already exists")
        cell = Cell(name)
        self.cells[name] = cell
        return cell

    def add_cell(self, cell: Cell) -> Cell:
        if cell.name in self.cells:
            raise ValueError(f"cell {cell.name!r} already exists")
        self.cells[cell.name] = cell
        return cell

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __getitem__(self, name: str) -> Cell:
        return self.cells[name]

    def top_cells(self) -> List[Cell]:
        """Cells not instantiated by any other cell."""
        referenced = {inst.cell_name for cell in self.cells.values() for inst in cell.instances}
        return [cell for name, cell in self.cells.items() if name not in referenced]

    # -- hierarchy traversal ------------------------------------------------

    def iter_flat(
        self, cell_name: str, transform: Optional[Transform] = None
    ) -> Iterator[Tuple[LayerKey, Polygon]]:
        """Yield every polygon under ``cell_name``, transformed to top level."""
        if cell_name not in self.cells:
            raise KeyError(f"unknown cell {cell_name!r}")
        t = transform or Transform.identity()
        cell = self.cells[cell_name]
        for layer, polys in cell.shapes.items():
            for poly in polys:
                yield layer, t.apply_polygon(poly)
        for inst in cell.instances:
            yield from self.iter_flat(inst.cell_name, t.compose(inst.transform))

    def flatten(self, cell_name: str) -> Cell:
        """A new cell with the full hierarchy under ``cell_name`` flattened."""
        flat = Cell(f"{cell_name}__flat")
        for layer, poly in self.iter_flat(cell_name):
            flat.add_polygon(layer, poly)
        return flat

    def flat_polygons(self, cell_name: str, layer: LayerKey) -> List[Polygon]:
        """All polygons of one layer under ``cell_name``, flattened."""
        return [poly for key, poly in self.iter_flat(cell_name) if key == layer]

    def bbox(self, cell_name: str) -> Optional[Rect]:
        boxes = [poly.bbox for _, poly in self.iter_flat(cell_name)]
        if not boxes:
            return None
        return Rect.bounding(boxes)

    def cell_depth(self, cell_name: str) -> int:
        """Hierarchy depth below ``cell_name`` (a leaf cell has depth 0)."""
        cell = self.cells[cell_name]
        if not cell.instances:
            return 0
        return 1 + max(self.cell_depth(inst.cell_name) for inst in cell.instances)
