"""Geometry kernel for layout manipulation.

All coordinates are in **nanometres** and stored as floats; helpers are
provided to snap to the manufacturing grid.  The kernel is specialised for
*rectilinear* (Manhattan) polygons, which is what standard-cell layout and
edge-based OPC produce, but the containers accept arbitrary simple polygons
for contour data coming back from lithography simulation.
"""

from repro.geometry.point import Point, snap, snap_point
from repro.geometry.rect import Rect
from repro.geometry.polygon import Polygon
from repro.geometry.decompose import decompose_rectilinear, polygon_area
from repro.geometry.edges import Edge, EdgeOrientation, polygon_edges
from repro.geometry.fragment import Fragment, FragmentKind, fragment_polygon, rebuild_polygon
from repro.geometry.index import GridIndex
from repro.geometry.transform import Transform

__all__ = [
    "Point",
    "snap",
    "snap_point",
    "Rect",
    "Polygon",
    "decompose_rectilinear",
    "polygon_area",
    "Edge",
    "EdgeOrientation",
    "polygon_edges",
    "Fragment",
    "FragmentKind",
    "fragment_polygon",
    "rebuild_polygon",
    "GridIndex",
    "Transform",
]
