"""Decomposition of rectilinear polygons into axis-aligned rectangles.

The slab-sweep decomposition here is the bridge between polygon layout and
the raster world of lithography simulation: the mask rasterizer consumes
rectangles because per-pixel area coverage of a rectangle has a closed form.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


def decompose_rectilinear(polygon: Polygon, tol: float = 1e-9) -> List[Rect]:
    """Split a rectilinear polygon into non-overlapping rectangles.

    Uses a horizontal slab sweep: the unique y coordinates define slabs; the
    polygon's vertical edges crossing a slab, sorted by x and paired by the
    even-odd rule, give the covered x intervals of that slab.

    Raises ValueError for non-rectilinear input.
    """
    if not polygon.is_rectilinear(tol):
        raise ValueError("decompose_rectilinear requires a rectilinear polygon")

    pts = polygon.points
    n = len(pts)
    vertical = []  # (x, ylo, yhi)
    for i in range(n):
        a, b = pts[i], pts[(i + 1) % n]
        if abs(a.x - b.x) <= tol:
            vertical.append((a.x, min(a.y, b.y), max(a.y, b.y)))

    ys = sorted({p.y for p in pts})
    rects: List[Rect] = []
    for ylo, yhi in zip(ys[:-1], ys[1:]):
        ymid = (ylo + yhi) / 2
        xs = sorted(x for x, edge_lo, edge_hi in vertical if edge_lo - tol < ymid < edge_hi + tol)
        if len(xs) % 2:
            raise ValueError("odd number of edge crossings; polygon is not simple")
        for x0, x1 in zip(xs[::2], xs[1::2]):
            if x1 - x0 > tol:
                rects.append(Rect(x0, ylo, x1, yhi))
    return _merge_vertical(rects, tol)


def _merge_vertical(rects: List[Rect], tol: float) -> List[Rect]:
    """Merge vertically adjacent rectangles with identical x spans.

    The slab sweep splits at every vertex y; stacked slabs with the same x
    extent are rejoined so simple shapes decompose to few rectangles.
    """
    by_span = {}
    for r in rects:
        by_span.setdefault((round(r.x0, 6), round(r.x1, 6)), []).append(r)
    merged: List[Rect] = []
    for (_, _), group in sorted(by_span.items()):
        group.sort(key=lambda r: r.y0)
        current = group[0]
        for r in group[1:]:
            if abs(r.y0 - current.y1) <= tol:
                current = Rect(current.x0, current.y0, current.x1, r.y1)
            else:
                merged.append(current)
                current = r
        merged.append(current)
    return merged


def polygon_area(polygons: Sequence[Polygon]) -> float:
    """Total area of a set of non-overlapping polygons."""
    return sum(p.area for p in polygons)


def rectangles_area(rects: Sequence[Rect]) -> float:
    """Total area of a set of non-overlapping rectangles."""
    return sum(r.area for r in rects)


def point_in_rects(point: Point, rects: Sequence[Rect]) -> bool:
    """Membership test against a rectangle decomposition."""
    return any(r.contains_point(point) for r in rects)
