"""Edge model for rectilinear polygons.

OPC operates on *edges*: each boundary segment of a mask polygon, with an
outward normal along which correction moves are applied.  This module
extracts oriented edges from a polygon and classifies their orientation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


class EdgeOrientation(enum.Enum):
    """Axis orientation of a rectilinear edge."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"


@dataclass(frozen=True)
class Edge:
    """A directed boundary segment of a counter-clockwise polygon.

    For a CCW polygon the interior is to the *left* of the direction of
    travel, so the outward normal is the direction vector rotated -90 deg.
    """

    start: Point
    end: Point

    def __post_init__(self):
        if self.start == self.end:
            raise ValueError("zero-length edge")

    @property
    def length(self) -> float:
        return self.start.distance(self.end)

    @property
    def midpoint(self) -> Point:
        return Point((self.start.x + self.end.x) / 2, (self.start.y + self.end.y) / 2)

    @property
    def direction(self) -> Point:
        d = self.end - self.start
        n = d.norm()
        return Point(d.x / n, d.y / n)

    @property
    def outward_normal(self) -> Point:
        """Unit normal pointing away from the polygon interior (CCW winding)."""
        d = self.direction
        return Point(d.y, -d.x)

    @property
    def orientation(self) -> EdgeOrientation:
        if abs(self.start.x - self.end.x) <= 1e-9:
            return EdgeOrientation.VERTICAL
        if abs(self.start.y - self.end.y) <= 1e-9:
            return EdgeOrientation.HORIZONTAL
        raise ValueError(f"edge {self} is not axis-parallel")

    def is_rectilinear(self) -> bool:
        return abs(self.start.x - self.end.x) <= 1e-9 or abs(self.start.y - self.end.y) <= 1e-9

    def point_at(self, t: float) -> Point:
        """Parametric point, t in [0, 1]."""
        return Point(
            self.start.x + t * (self.end.x - self.start.x),
            self.start.y + t * (self.end.y - self.start.y),
        )

    def shifted(self, distance: float) -> "Edge":
        """Translate along the outward normal (positive moves outward)."""
        n = self.outward_normal
        delta = Point(n.x * distance, n.y * distance)
        return Edge(self.start + delta, self.end + delta)


def polygon_edges(polygon: Polygon) -> List[Edge]:
    """Directed edges of ``polygon`` in CCW order."""
    pts = polygon.points
    return [Edge(pts[i], pts[(i + 1) % len(pts)]) for i in range(len(pts))]
