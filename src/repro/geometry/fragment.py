"""Edge fragmentation and polygon reconstruction for OPC.

Model-based OPC dissects every polygon boundary into short *fragments*,
evaluates the printed image at each fragment's control point, and moves the
fragment along its outward normal to null the edge-placement error.  This
module provides the dissection (:func:`fragment_polygon`) and the inverse
operation that reassembles a valid rectilinear polygon from the moved
fragments (:func:`rebuild_polygon`), inserting jogs between collinear
fragments with different offsets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.geometry.edges import Edge, EdgeOrientation, polygon_edges
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


class FragmentKind(enum.Enum):
    """Classification used to pick OPC rules and constraints per fragment."""

    NORMAL = "normal"          # interior run of a long edge
    CORNER = "corner"          # abuts a corner of the polygon
    LINE_END = "line_end"      # an entire short edge capping a line


@dataclass
class Fragment:
    """A piece of a polygon edge that OPC may displace along its normal.

    ``offset`` is the current correction: positive values move the fragment
    *outward* (growing the polygon locally), negative values move it inward.
    """

    start: Point
    end: Point
    kind: FragmentKind
    index: int = 0
    offset: float = field(default=0.0)

    @property
    def edge(self) -> Edge:
        return Edge(self.start, self.end)

    @property
    def length(self) -> float:
        return self.start.distance(self.end)

    @property
    def control_point(self) -> Point:
        """Where the image is sampled: the midpoint of the *original* segment."""
        return Point((self.start.x + self.end.x) / 2, (self.start.y + self.end.y) / 2)

    @property
    def outward_normal(self) -> Point:
        return self.edge.outward_normal

    @property
    def orientation(self) -> EdgeOrientation:
        return self.edge.orientation

    def shifted_segment(self) -> Edge:
        """The fragment's segment after applying the current offset."""
        return self.edge.shifted(self.offset)


def fragment_polygon(
    polygon: Polygon,
    max_length: float = 60.0,
    corner_length: float = 30.0,
    line_end_max: float = 120.0,
    min_length: float = 10.0,
) -> List[Fragment]:
    """Dissect a rectilinear polygon boundary into OPC fragments.

    Parameters mirror production OPC recipes: ``max_length`` bounds interior
    fragment size, ``corner_length`` is the dedicated fragment carved out
    next to each corner, edges not longer than ``line_end_max`` become a
    single LINE_END fragment, and no fragment is made shorter than
    ``min_length`` (short leftovers merge into their neighbour).
    """
    if not polygon.is_rectilinear():
        raise ValueError("fragmentation requires a rectilinear polygon")
    fragments: List[Fragment] = []
    for edge in polygon_edges(polygon):
        fragments.extend(_fragment_edge(edge, max_length, corner_length, line_end_max, min_length))
    for i, frag in enumerate(fragments):
        frag.index = i
    return fragments


def _fragment_edge(
    edge: Edge,
    max_length: float,
    corner_length: float,
    line_end_max: float,
    min_length: float,
) -> List[Fragment]:
    length = edge.length
    if length <= line_end_max:
        return [Fragment(edge.start, edge.end, FragmentKind.LINE_END)]

    # Carve corner fragments at both ends, then split the interior run.
    breaks = [0.0, corner_length]
    interior = length - 2 * corner_length
    n_interior = max(1, int(-(-interior // max_length)))  # ceil
    step = interior / n_interior
    for i in range(1, n_interior):
        breaks.append(corner_length + i * step)
    breaks.extend([length - corner_length, length])

    # Merge any sliver segments below min_length into their neighbour.
    cleaned = [breaks[0]]
    for b in breaks[1:]:
        if b - cleaned[-1] < min_length and b != length:
            continue
        cleaned.append(b)
    if len(cleaned) >= 3 and cleaned[-1] - cleaned[-2] < min_length:
        del cleaned[-2]

    fragments = []
    for i, (a, b) in enumerate(zip(cleaned[:-1], cleaned[1:])):
        kind = FragmentKind.CORNER if i == 0 or i == len(cleaned) - 2 else FragmentKind.NORMAL
        fragments.append(Fragment(edge.point_at(a / length), edge.point_at(b / length), kind))
    return fragments


def rebuild_polygon(fragments: List[Fragment]) -> Polygon:
    """Reassemble the polygon from (possibly displaced) fragments.

    Consecutive fragments from perpendicular edges meet at the intersection
    of their supporting lines; consecutive collinear fragments with unequal
    offsets are connected by a jog.
    """
    if len(fragments) < 3:
        raise ValueError("need at least 3 fragments to rebuild a polygon")
    segments = [f.shifted_segment() for f in fragments]
    n = len(segments)
    vertices: List[Point] = []
    for i in range(n):
        cur, nxt = segments[i], segments[(i + 1) % n]
        if cur.orientation != nxt.orientation:
            vertices.append(_perpendicular_meet(cur, nxt))
        else:
            # Jog between collinear fragments (no-op vertex pair when the
            # offsets agree; the Polygon constructor drops the duplicates).
            vertices.append(cur.end)
            vertices.append(nxt.start)
    return Polygon(vertices)


def _perpendicular_meet(a: Edge, b: Edge) -> Point:
    if a.orientation == EdgeOrientation.VERTICAL:
        return Point(a.start.x, b.start.y)
    return Point(b.start.x, a.start.y)
