"""Uniform-grid spatial index for layout queries.

Full-chip flows repeatedly ask "what shapes are near this gate?" (litho
context windows, neighbour lookup for proximity rules).  A uniform bucket
grid is ideal for standard-cell layout, whose shape density is roughly
uniform.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generic, Iterable, List, Set, Tuple, TypeVar

from repro.geometry.rect import Rect

T = TypeVar("T")


class GridIndex(Generic[T]):
    """Maps axis-aligned bounding boxes to user items with O(1) region query.

    Items are hashed by identity slot, so unhashable payloads are accepted
    and duplicates of equal payloads are kept distinct.
    """

    def __init__(self, cell_size: float = 1000.0):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = cell_size
        self._buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        self._items: List[Tuple[Rect, T]] = []

    def __len__(self) -> int:
        return len(self._items)

    def insert(self, bbox: Rect, item: T) -> int:
        """Add an item; returns its slot id."""
        slot = len(self._items)
        self._items.append((bbox, item))
        for key in self._keys_for(bbox):
            self._buckets[key].append(slot)
        return slot

    def extend(self, entries: Iterable[Tuple[Rect, T]]) -> None:
        for bbox, item in entries:
            self.insert(bbox, item)

    def query(self, region: Rect, strict: bool = True) -> List[T]:
        """All items whose bbox overlaps ``region`` (interiors if ``strict``)."""
        seen: Set[int] = set()
        out: List[T] = []
        for key in self._keys_for(region):
            for slot in self._buckets.get(key, ()):
                if slot in seen:
                    continue
                seen.add(slot)
                bbox, item = self._items[slot]
                if bbox.overlaps(region, strict=strict):
                    out.append(item)
        return out

    def query_point(self, x: float, y: float) -> List[T]:
        return self.query(Rect(x, y, x, y), strict=False)

    def all_items(self) -> List[T]:
        return [item for _, item in self._items]

    def _keys_for(self, bbox: Rect):
        ix0 = int(bbox.x0 // self.cell_size)
        iy0 = int(bbox.y0 // self.cell_size)
        ix1 = int(bbox.x1 // self.cell_size)
        iy1 = int(bbox.y1 // self.cell_size)
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                yield (ix, iy)
