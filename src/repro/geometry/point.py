"""Points and grid snapping."""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Default manufacturing grid in nanometres.
DEFAULT_GRID = 1.0


def snap(value: float, grid: float = DEFAULT_GRID) -> float:
    """Snap a scalar coordinate to the manufacturing grid.

    Uses round-half-away-from-zero so that symmetric layouts snap
    symmetrically (Python's banker's rounding would not).
    """
    if grid <= 0:
        raise ValueError(f"grid must be positive, got {grid}")
    scaled = value / grid
    return math.floor(scaled + 0.5) * grid if scaled >= 0 else -math.floor(-scaled + 0.5) * grid


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point in nanometres."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scale: float) -> "Point":
        return Point(self.x * scale, self.y * scale)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def dot(self, other: "Point") -> float:
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the 2-D cross product."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        return math.hypot(self.x, self.y)

    def manhattan(self, other: "Point") -> float:
        return abs(self.x - other.x) + abs(self.y - other.y)

    def distance(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def snapped(self, grid: float = DEFAULT_GRID) -> "Point":
        return Point(snap(self.x, grid), snap(self.y, grid))

    def as_tuple(self) -> tuple:
        return (self.x, self.y)


def snap_point(point: Point, grid: float = DEFAULT_GRID) -> Point:
    """Snap both coordinates of ``point`` to the manufacturing grid."""
    return point.snapped(grid)
