"""Simple polygons, specialised for rectilinear layout shapes."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.point import Point, snap
from repro.geometry.rect import Rect


class Polygon:
    """A simple (non-self-intersecting) polygon.

    Vertices are stored counter-clockwise without a repeated closing vertex.
    Construction normalises orientation and drops consecutive duplicate and
    collinear vertices, so two polygons describing the same region compare
    equal regardless of the starting vertex order handed in.
    """

    __slots__ = ("_pts",)

    def __init__(self, points: Sequence[Point]):
        pts = _dedup([Point(p.x, p.y) if not isinstance(p, Point) else p for p in points])
        if len(pts) < 3:
            raise ValueError(f"polygon needs >= 3 distinct vertices, got {len(pts)}")
        if _signed_area(pts) < 0:
            pts.reverse()
        self._pts = _drop_collinear(pts)
        if len(self._pts) < 3:
            raise ValueError("polygon degenerated to fewer than 3 vertices")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_rect(rect: Rect) -> "Polygon":
        if rect.is_degenerate():
            raise ValueError(f"cannot build polygon from degenerate rect {rect}")
        return Polygon(rect.corners)

    @staticmethod
    def from_xy(xy: Sequence[Tuple[float, float]]) -> "Polygon":
        return Polygon([Point(x, y) for x, y in xy])

    # -- accessors ---------------------------------------------------------

    @property
    def points(self) -> List[Point]:
        return list(self._pts)

    @property
    def num_vertices(self) -> int:
        return len(self._pts)

    def __len__(self) -> int:
        return len(self._pts)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        if len(self._pts) != len(other._pts):
            return False
        # Same cyclic sequence, possibly rotated.
        n = len(self._pts)
        first = self._pts[0]
        for offset, candidate in enumerate(other._pts):
            if candidate == first:
                if all(self._pts[i] == other._pts[(offset + i) % n] for i in range(n)):
                    return True
        return False

    def __hash__(self):
        # Canonical rotation: start at lexicographically smallest vertex.
        n = len(self._pts)
        start = min(range(n), key=lambda i: (self._pts[i].x, self._pts[i].y))
        return hash(tuple((self._pts[(start + i) % n].x, self._pts[(start + i) % n].y) for i in range(n)))

    def __repr__(self):
        return f"Polygon({[(p.x, p.y) for p in self._pts]})"

    # -- geometry ----------------------------------------------------------

    @property
    def area(self) -> float:
        return _signed_area(self._pts)

    @property
    def bbox(self) -> Rect:
        xs = [p.x for p in self._pts]
        ys = [p.y for p in self._pts]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @property
    def perimeter(self) -> float:
        n = len(self._pts)
        return sum(self._pts[i].distance(self._pts[(i + 1) % n]) for i in range(n))

    def is_rectilinear(self, tol: float = 1e-9) -> bool:
        """True if every edge is axis-parallel."""
        n = len(self._pts)
        for i in range(n):
            a, b = self._pts[i], self._pts[(i + 1) % n]
            if abs(a.x - b.x) > tol and abs(a.y - b.y) > tol:
                return False
        return True

    def contains_point(self, p: Point) -> bool:
        """Even-odd ray casting; boundary points count as inside."""
        n = len(self._pts)
        inside = False
        for i in range(n):
            a, b = self._pts[i], self._pts[(i + 1) % n]
            if _on_segment(p, a, b):
                return True
            if (a.y > p.y) != (b.y > p.y):
                x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if p.x < x_cross:
                    inside = not inside
        return inside

    def translated(self, dx: float, dy: float) -> "Polygon":
        return Polygon([Point(p.x + dx, p.y + dy) for p in self._pts])

    def scaled(self, factor: float) -> "Polygon":
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return Polygon([Point(p.x * factor, p.y * factor) for p in self._pts])

    def snapped(self, grid: float = 1.0) -> "Polygon":
        return Polygon([Point(snap(p.x, grid), snap(p.y, grid)) for p in self._pts])


def _signed_area(pts: Sequence[Point]) -> float:
    total = 0.0
    n = len(pts)
    for i in range(n):
        a, b = pts[i], pts[(i + 1) % n]
        total += a.x * b.y - b.x * a.y
    return total / 2


def _dedup(pts: List[Point]) -> List[Point]:
    out: List[Point] = []
    for p in pts:
        if not out or p != out[-1]:
            out.append(p)
    if len(out) > 1 and out[0] == out[-1]:
        out.pop()
    return out


def _drop_collinear(pts: List[Point]) -> List[Point]:
    n = len(pts)
    out: List[Point] = []
    for i in range(n):
        prev, cur, nxt = pts[i - 1], pts[i], pts[(i + 1) % n]
        if abs((cur - prev).cross(nxt - cur)) > 1e-9:
            out.append(cur)
    return out if len(out) >= 3 else pts


def _on_segment(p: Point, a: Point, b: Point, tol: float = 1e-9) -> bool:
    if abs((b - a).cross(p - a)) > tol:
        return False
    return (
        min(a.x, b.x) - tol <= p.x <= max(a.x, b.x) + tol
        and min(a.y, b.y) - tol <= p.y <= max(a.y, b.y) + tol
    )
