"""Axis-aligned rectangles, the workhorse of Manhattan layout."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.geometry.point import Point


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle given by its lower-left and upper-right corners.

    Degenerate rectangles (zero width or height) are permitted — they are
    useful as cutlines and measurement regions — but most layout operations
    expect proper rectangles.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self):
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(
                f"Rect corners out of order: ({self.x0},{self.y0})-({self.x1},{self.y1})"
            )

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_points(a: Point, b: Point) -> "Rect":
        """Bounding rectangle of two points, in any order."""
        return Rect(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))

    @staticmethod
    def from_center(cx: float, cy: float, width: float, height: float) -> "Rect":
        return Rect(cx - width / 2, cy - height / 2, cx + width / 2, cy + height / 2)

    @staticmethod
    def bounding(rects: Iterable["Rect"]) -> "Rect":
        """Bounding box of a non-empty collection of rectangles."""
        rects = list(rects)
        if not rects:
            raise ValueError("bounding() needs at least one rectangle")
        return Rect(
            min(r.x0 for r in rects),
            min(r.y0 for r in rects),
            max(r.x1 for r in rects),
            max(r.y1 for r in rects),
        )

    # -- basic properties --------------------------------------------------

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)

    @property
    def corners(self) -> List[Point]:
        """Counter-clockwise corners starting at the lower-left."""
        return [
            Point(self.x0, self.y0),
            Point(self.x1, self.y0),
            Point(self.x1, self.y1),
            Point(self.x0, self.y1),
        ]

    def is_degenerate(self) -> bool:
        return self.width == 0 or self.height == 0

    # -- predicates --------------------------------------------------------

    def contains_point(self, p: Point, strict: bool = False) -> bool:
        if strict:
            return self.x0 < p.x < self.x1 and self.y0 < p.y < self.y1
        return self.x0 <= p.x <= self.x1 and self.y0 <= p.y <= self.y1

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and self.x1 >= other.x1
            and self.y1 >= other.y1
        )

    def overlaps(self, other: "Rect", strict: bool = True) -> bool:
        """True if interiors overlap (``strict``) or if they at least touch."""
        if strict:
            return (
                self.x0 < other.x1
                and other.x0 < self.x1
                and self.y0 < other.y1
                and other.y0 < self.y1
            )
        return (
            self.x0 <= other.x1
            and other.x0 <= self.x1
            and self.y0 <= other.y1
            and other.y0 <= self.y1
        )

    # -- operations --------------------------------------------------------

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Overlap region, or None if the rectangles do not even touch."""
        x0, y0 = max(self.x0, other.x0), max(self.y0, other.y0)
        x1, y1 = min(self.x1, other.x1), min(self.y1, other.y1)
        if x0 > x1 or y0 > y1:
            return None
        return Rect(x0, y0, x1, y1)

    def union_bbox(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.x0, other.x0),
            min(self.y0, other.y0),
            max(self.x1, other.x1),
            max(self.y1, other.y1),
        )

    def expanded(self, margin: float) -> "Rect":
        """Grow (or shrink, for negative margin) uniformly on all sides.

        Hairline inversions from floating-point rounding collapse to a
        degenerate rect at the midpoint; real inversions raise ValueError.
        """
        x0, y0 = self.x0 - margin, self.y0 - margin
        x1, y1 = self.x1 + margin, self.y1 + margin
        tol = 1e-9 * max(1.0, abs(x0), abs(x1), abs(y0), abs(y1))
        if x0 > x1 + tol or y0 > y1 + tol:
            raise ValueError(f"margin {margin} would invert rect {self}")
        if x0 > x1:
            x0 = x1 = (x0 + x1) / 2
        if y0 > y1:
            y0 = y1 = (y0 + y1) / 2
        return Rect(x0, y0, x1, y1)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def scaled(self, factor: float) -> "Rect":
        """Scale about the origin."""
        if factor < 0:
            raise ValueError("use Transform for mirroring; scale factor must be >= 0")
        return Rect(self.x0 * factor, self.y0 * factor, self.x1 * factor, self.y1 * factor)

    def overlap_area(self, other: "Rect") -> float:
        inter = self.intersection(other)
        return inter.area if inter is not None else 0.0
