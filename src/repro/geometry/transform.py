"""Manhattan transforms: translation, 90-degree rotations, and mirroring.

Standard-cell placement only needs the eight Manhattan orientations (R0,
R90, R180, R270, and their mirrored variants), matching the GDSII STRANS
model of mirror-about-x followed by rotation followed by translation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect

_VALID_ROTATIONS = (0, 90, 180, 270)


@dataclass(frozen=True)
class Transform:
    """Mirror about the x axis (first), rotate CCW by ``rotation`` degrees
    (second), then translate by (dx, dy)."""

    dx: float = 0.0
    dy: float = 0.0
    rotation: int = 0
    mirror_x: bool = False

    def __post_init__(self):
        if self.rotation not in _VALID_ROTATIONS:
            raise ValueError(f"rotation must be one of {_VALID_ROTATIONS}, got {self.rotation}")

    @staticmethod
    def identity() -> "Transform":
        return Transform()

    @staticmethod
    def translation(dx: float, dy: float) -> "Transform":
        return Transform(dx=dx, dy=dy)

    def apply_point(self, p: Point) -> Point:
        x, y = p.x, p.y
        if self.mirror_x:
            y = -y
        if self.rotation == 90:
            x, y = -y, x
        elif self.rotation == 180:
            x, y = -x, -y
        elif self.rotation == 270:
            x, y = y, -x
        return Point(x + self.dx, y + self.dy)

    def apply_rect(self, r: Rect) -> Rect:
        a = self.apply_point(Point(r.x0, r.y0))
        b = self.apply_point(Point(r.x1, r.y1))
        return Rect.from_points(a, b)

    def apply_polygon(self, poly: Polygon) -> Polygon:
        return Polygon([self.apply_point(p) for p in poly.points])

    def compose(self, inner: "Transform") -> "Transform":
        """Transform equivalent to applying ``inner`` first, then ``self``."""
        origin = self.apply_point(inner.apply_point(Point(0, 0)))
        mirror = self.mirror_x != inner.mirror_x
        rotation = (self.rotation + (-inner.rotation if self.mirror_x else inner.rotation)) % 360
        probe = Transform(rotation=rotation, mirror_x=mirror).apply_point(Point(1, 0))
        expected = self.apply_point(inner.apply_point(Point(1, 0))) - origin
        if (round(probe.x - expected.x, 9), round(probe.y - expected.y, 9)) != (0.0, 0.0):
            # Mirrors flip the sense of rotation; retry with the other sign.
            rotation = (self.rotation + (inner.rotation if self.mirror_x else -inner.rotation)) % 360
        return Transform(dx=origin.x, dy=origin.y, rotation=rotation, mirror_x=mirror)

    def inverse(self) -> "Transform":
        """Transform undoing this one."""
        # Reverse order: untranslate, unrotate, unmirror.
        if self.mirror_x:
            rotation = self.rotation  # mirror conjugates the rotation back to itself
        else:
            rotation = (-self.rotation) % 360
        inv = Transform(rotation=rotation, mirror_x=self.mirror_x)
        moved = inv.apply_point(Point(self.dx, self.dy))
        return Transform(dx=-moved.x, dy=-moved.y, rotation=rotation, mirror_x=self.mirror_x)
