"""Static analysis for flow determinism and contract hygiene.

The flow's correctness guarantees — bit-identical resume, stable artifact
keys, ordered journals, the FlowError exit-code taxonomy — all rest on
coding invariants (seeded RNG, no wall-clock entropy near hashing,
sorted set iteration, declared stage versions) that no runtime test can
enforce exhaustively.  :mod:`repro.lintcheck` enforces them statically:
an AST-based rule engine with a pluggable registry, inline
``# repro-lint: allow[RULE]`` waivers, and a ``repro lint`` CLI
subcommand whose exit codes fold into the flow's 0/1/3 contract.

On top of the per-module rules sits a whole-program dataflow layer
(:mod:`repro.lintcheck.callgraph` / :mod:`~repro.lintcheck.cachesafety`
/ :mod:`~repro.lintcheck.taint`): cache-safety of every ``FlowStage``
(everything ``run()`` reads must be in its Merkle artifact key) and
inter-procedural entropy taint from sources like ``time.time()`` to
determinism sinks like ``stable_hash``, with full source→sink paths.
"""

from repro.lintcheck.core import (
    Finding,
    LintRule,
    ModuleSource,
    ProjectRule,
    check_paths,
    check_source,
    collect_files,
    iter_rules,
    parse_waivers,
    register,
    rules_for,
)

# Importing the rule modules registers the built-in rule set.
from repro.lintcheck import cachesafety as _cachesafety_rules  # noqa: F401
from repro.lintcheck import concurrency as _concurrency_rules  # noqa: F401
from repro.lintcheck import numerics as _numerics_rules  # noqa: F401
from repro.lintcheck import rules as _builtin_rules  # noqa: F401
from repro.lintcheck import taint as _taint_rules  # noqa: F401
from repro.lintcheck import units as _units_rules  # noqa: F401

__all__ = [
    "Finding",
    "LintRule",
    "ModuleSource",
    "ProjectRule",
    "check_paths",
    "check_source",
    "collect_files",
    "iter_rules",
    "parse_waivers",
    "register",
    "rules_for",
]
