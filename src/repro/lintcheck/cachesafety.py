"""Dataflow cache-safety analysis of the flow's stage graph.

The Merkle artifact key of a stage is ``stable_hash((fingerprint, name,
version, config_slice(), parent keys))`` — the cache is only sound if
everything a stage's ``run()`` actually reads is captured by one of
those five terms.  This module checks that invariant statically, per
:class:`~repro.flow.stages.FlowStage` subclass, by walking the project
call graph from ``run()`` and classifying every reachable read:

* ``config.<attr>``        must appear in the stage's ``config_slice()``;
* ``artifacts[<name>]``    must be produced by a stage its ``requires()``
  declares (the parent-key term of the Merkle hash);
* ``flow.<attr>``          must be a pure function of the flow
  fingerprint, or execution-neutral by contract (executor/context).

Any other read is a ``cache-undeclared-input`` finding: a cached
artifact could be served although one of its real inputs changed.

The companion ``stale-version`` heuristic hashes the *shape* of the
``run()``-reachable code (AST dumps of every reachable function, plus
referenced module constants) against a checked-in fingerprint file: if
the shape changed while ``version`` stayed at the recorded value, the
stage is flagged — persistent caches written by the old code would be
served with new semantics.  Refresh the file with
``repro lint --write-stage-fingerprints`` after refactor-only changes.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.lintcheck.callgraph import (
    ClassInfo,
    FunctionInfo,
    Project,
    frozen_env,
)
from repro.lintcheck.core import Finding, ProjectRule, register

#: the stage base class the analysis keys on (matched by simple name, so
#: fixture packages can carry their own mini FlowStage)
STAGE_BASE = "FlowStage"

#: flow attributes that are pure functions of the flow fingerprint — the
#: fingerprint term of the artifact key already captures them (netlist,
#: technology and calibrated-simulator content, plus everything derived
#: from those at construction/placement time)
FINGERPRINT_COVERED_FLOW_ATTRS = frozenset({
    "fingerprint", "netlist", "tech", "cells", "model", "liberty",
    "simulator", "engine", "placement", "gate_rects", "owned_polygons",
    "_placement", "_gate_rects", "_owned_polygons", "_engine",
    "_routed_engine",
})

#: flow attributes that choose *how* artifacts are computed, never *what*
#: they are: the executor is bit-identical-to-serial by contract, the
#: context is the cache itself, the graph is the schedule, and the state
#: lock only serializes the lazy builders the fingerprint already covers
EXECUTION_NEUTRAL_FLOW_ATTRS = frozenset({
    "executor", "context", "graph", "_state_lock",
})

ROLE_FLOW = "flow"
ROLE_CONFIG = "config"
ROLE_ARTIFACTS = "artifacts"

#: default name of the checked-in stage fingerprint file
STAGE_FINGERPRINTS_FILE = ".repro-stage-fingerprints.json"


@dataclass(frozen=True)
class Read:
    """One reachable read, with the call chain that led to it."""

    attr: str
    path: str
    line: int
    col: int
    chain: Tuple[str, ...]

    def via(self) -> str:
        return f" via {' -> '.join(self.chain)}" if self.chain else ""


@dataclass
class RunInputScan:
    """Everything ``run()`` transitively reads, by input category."""

    config_reads: Dict[str, Read] = field(default_factory=dict)
    flow_reads: Dict[str, Read] = field(default_factory=dict)
    artifact_reads: Dict[str, Read] = field(default_factory=dict)
    #: qualnames of every traversed function (the stale-version shape)
    visited: Set[str] = field(default_factory=set)


def scan_callable(
    project: Project,
    start: FunctionInfo,
    roles: Mapping[str, str],
) -> RunInputScan:
    """Walk the call graph from ``start`` tracking role-bound parameters.

    ``roles`` maps ``start``'s parameter names to ``ROLE_FLOW`` /
    ``ROLE_CONFIG`` / ``ROLE_ARTIFACTS``.  Role bindings follow bare-name
    arguments into statically resolvable callees (``self`` carries the
    receiver's role), so a helper three calls deep that reads
    ``config.n_slices`` is still attributed to the stage.
    """
    scan = RunInputScan()
    flow_class = _role_class(start, roles, ROLE_FLOW)
    config_class = _role_class(start, roles, ROLE_CONFIG)
    queue: Deque[Tuple[FunctionInfo, Dict[str, str], Tuple[str, ...]]] = deque()
    queue.append((start, dict(roles), ()))
    seen: Set[Tuple[str, Any]] = set()
    while queue:
        func, env, chain = queue.popleft()
        key = (func.qualname, frozen_env(env))
        if key in seen:
            continue
        seen.add(key)
        scan.visited.add(func.qualname)
        _scan_one(project, func, env, chain, scan, queue,
                  flow_class, config_class)
    return scan


def _role_class(
    start: FunctionInfo, roles: Mapping[str, str], role: str
) -> Optional[str]:
    for param, bound in roles.items():
        if bound == role:
            annotated = start.param_annotation(param)
            if annotated is not None:
                return annotated
    return None


def _scan_one(
    project: Project,
    func: FunctionInfo,
    env: Dict[str, str],
    chain: Tuple[str, ...],
    scan: RunInputScan,
    queue: Deque[Tuple[FunctionInfo, Dict[str, str], Tuple[str, ...]]],
    flow_class: Optional[str],
    config_class: Optional[str],
) -> None:
    local_classes: Dict[str, str] = {}
    for name, role in env.items():
        if role == ROLE_FLOW and flow_class is not None:
            local_classes[name] = flow_class
        elif role == ROLE_CONFIG and config_class is not None:
            local_classes[name] = config_class
    reads_by_role = {
        ROLE_CONFIG: scan.config_reads,
        ROLE_FLOW: scan.flow_reads,
    }
    consumed_call_funcs: Set[int] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call):
            _scan_call(project, func, node, env, chain, scan, queue,
                       local_classes, consumed_call_funcs)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if id(node) in consumed_call_funcs:
                continue
            if not isinstance(node.value, ast.Name):
                continue
            role = env.get(node.value.id)
            if role in reads_by_role:
                read = Read(node.attr, func.path, node.lineno,
                            node.col_offset, chain)
                reads_by_role[role].setdefault(node.attr, read)
                if role == ROLE_FLOW:
                    getter = project.resolve_property(
                        func, node.value.id, node.attr, local_classes
                    )
                    if getter is not None and getter.params:
                        queue.append((
                            getter,
                            {getter.params[0]: ROLE_FLOW},
                            chain + (getter.display,),
                        ))
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            if (
                isinstance(node.value, ast.Name)
                and env.get(node.value.id) == ROLE_ARTIFACTS
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                read = Read(node.slice.value, func.path, node.lineno,
                            node.col_offset, chain)
                scan.artifact_reads.setdefault(node.slice.value, read)


def _scan_call(
    project: Project,
    func: FunctionInfo,
    call: ast.Call,
    env: Dict[str, str],
    chain: Tuple[str, ...],
    scan: RunInputScan,
    queue: Deque[Tuple[FunctionInfo, Dict[str, str], Tuple[str, ...]]],
    local_classes: Dict[str, str],
    consumed_call_funcs: Set[int],
) -> None:
    # artifacts.get("name", default) is an artifact read, not a call edge.
    if (
        isinstance(call.func, ast.Attribute)
        and isinstance(call.func.value, ast.Name)
        and env.get(call.func.value.id) == ROLE_ARTIFACTS
    ):
        consumed_call_funcs.add(id(call.func))
        if (
            call.func.attr == "get"
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            name = call.args[0].value
            read = Read(name, func.path, call.lineno, call.col_offset, chain)
            scan.artifact_reads.setdefault(name, read)
        return

    callee = project.resolve_call(func, call.func, local_classes)
    if callee is None:
        return
    params = callee.params
    callee_env: Dict[str, str] = {}
    offset = 0
    if (
        isinstance(call.func, ast.Attribute)
        and isinstance(call.func.value, ast.Name)
        and callee.class_qualname is not None
    ):
        receiver_role = env.get(call.func.value.id)
        if params:
            offset = 1
            if receiver_role is not None:
                callee_env[params[0]] = receiver_role
        consumed_call_funcs.add(id(call.func))
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Name) and arg.id in env:
            position = offset + index
            if position < len(params):
                callee_env[params[position]] = env[arg.id]
    for keyword in call.keywords:
        if (
            keyword.arg is not None
            and keyword.arg in params
            and isinstance(keyword.value, ast.Name)
            and keyword.value.id in env
        ):
            callee_env[keyword.arg] = env[keyword.value.id]
    if callee_env:
        queue.append((callee, callee_env, chain + (callee.display,)))


# ---------------------------------------------------------------------------
# Stage discovery and per-stage analysis
# ---------------------------------------------------------------------------


@dataclass
class StageAnalysis:
    """Static contract vs. reachable reads of one FlowStage subclass."""

    cls: ClassInfo
    stage_name: Optional[str]
    version: Optional[int]
    run: Optional[FunctionInfo]
    declared_parents: Set[str] = field(default_factory=set)
    declared_config: Set[str] = field(default_factory=set)
    declared_provides: Set[str] = field(default_factory=set)
    has_provides: bool = False
    produced: Set[str] = field(default_factory=set)
    scan: Optional[RunInputScan] = None


def _class_constant(node: ast.ClassDef, attr: str) -> object:
    for item in node.body:
        value: Optional[ast.expr] = None
        if isinstance(item, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == attr for t in item.targets
        ):
            value = item.value
        elif (
            isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and item.target.id == attr
        ):
            value = item.value
        if isinstance(value, ast.Constant):
            return value.value
    return None


def _requires_parents(project: Project, cls: ClassInfo) -> Set[str]:
    """Union of string literals returned by the stage's ``requires()``.

    ``requires`` may branch on the config (selective OPC does); the union
    over every return is the sound superset of declared parent edges.
    """
    requires = project.resolve_method(cls, "requires")
    parents: Set[str] = set()
    if requires is None:
        return parents
    for node in ast.walk(requires.node):
        if isinstance(node, ast.Return) and node.value is not None:
            for inner in ast.walk(node.value):
                if isinstance(inner, ast.Constant) and isinstance(inner.value, str):
                    parents.add(inner.value)
    return parents


def _provides_artifacts(project: Project, cls: ClassInfo) -> Tuple[bool, Set[str]]:
    """(resolvable, union of string literals returned by ``provides()``).

    Like :func:`_requires_parents`, the union over every return is the
    declared superset; a stage whose base chain carries no ``provides``
    at all resolves to ``(False, set())``.
    """
    provides = project.resolve_method(cls, "provides")
    if provides is None:
        return False, set()
    declared: Set[str] = set()
    for node in ast.walk(provides.node):
        if isinstance(node, ast.Return) and node.value is not None:
            for inner in ast.walk(node.value):
                if isinstance(inner, ast.Constant) and isinstance(inner.value, str):
                    declared.add(inner.value)
    return True, declared


def _declared_config_reads(project: Project, cls: ClassInfo) -> Set[str]:
    """Config attributes the stage's ``config_slice()`` exposes —
    collected transitively with the same walker, so a slice built by a
    helper still counts."""
    config_slice = project.resolve_method(cls, "config_slice")
    if config_slice is None:
        return set()
    params = config_slice.params
    roles: Dict[str, str] = {}
    if len(params) >= 3:
        roles[params[1]] = ROLE_FLOW
        roles[params[2]] = ROLE_CONFIG
    elif len(params) == 2:
        roles[params[1]] = ROLE_CONFIG
    if not roles:
        return set()
    return set(scan_callable(project, config_slice, roles).config_reads)


def _produced_artifacts(run: FunctionInfo) -> Set[str]:
    """String-literal keys of dicts returned by ``run()``."""
    produced: Set[str] = set()
    for node in ast.walk(run.node):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    produced.add(key.value)
    return produced


def _returns_all_literal_dicts(run: FunctionInfo) -> bool:
    """True when every ``return`` in ``run()`` is a literal dict, so
    :func:`_produced_artifacts` is the *complete* output set, not just a
    lower bound (a stage returning a built-up name is opaque here)."""
    returns = [n for n in ast.walk(run.node) if isinstance(n, ast.Return)]
    return bool(returns) and all(
        isinstance(n.value, ast.Dict) for n in returns
    )


def _run_roles(run: FunctionInfo) -> Dict[str, str]:
    """Role bindings for a stage ``run(self, flow, config, artifacts, ...)``.

    Bound by position (the stage-graph calling convention), falling back
    to parameter names for fixture stages with abbreviated signatures.
    """
    params = run.params
    roles: Dict[str, str] = {}
    positional = [ROLE_FLOW, ROLE_CONFIG, ROLE_ARTIFACTS]
    if params and params[0] == "self":
        params = params[1:]
    for param, role in zip(params, positional):
        roles[param] = role
    for param in params:
        if param in (ROLE_FLOW, ROLE_CONFIG, ROLE_ARTIFACTS):
            roles[param] = param
    return roles


def analyze_stages(project: Project) -> List[StageAnalysis]:
    """One :class:`StageAnalysis` per FlowStage subclass with its own
    ``run()``; results are cached on the project (both dataflow rules and
    the fingerprint writer share one traversal)."""
    cached = project.analysis_cache.get("cachesafety")
    if isinstance(cached, list):
        return cached
    analyses: List[StageAnalysis] = []
    for cls in project.iter_subclasses(STAGE_BASE):
        name_value = _class_constant(cls.node, "name")
        version_value = _class_constant(cls.node, "version")
        analysis = StageAnalysis(
            cls=cls,
            stage_name=name_value if isinstance(name_value, str) else None,
            version=(
                version_value
                if isinstance(version_value, int)
                and not isinstance(version_value, bool)
                else None
            ),
            run=None,
        )
        if "run" in cls.methods:
            run = project.functions[cls.methods["run"]]
            analysis.run = run
            analysis.produced = _produced_artifacts(run)
            analysis.declared_parents = _requires_parents(project, cls)
            analysis.declared_config = _declared_config_reads(project, cls)
            analysis.has_provides, analysis.declared_provides = (
                _provides_artifacts(project, cls)
            )
            analysis.scan = scan_callable(project, run, _run_roles(run))
        analyses.append(analysis)
    project.analysis_cache["cachesafety"] = analyses
    return analyses


def _artifact_producers(analyses: List[StageAnalysis]) -> Dict[str, str]:
    producers: Dict[str, str] = {}
    for analysis in analyses:
        if analysis.stage_name is None:
            continue
        # provides() covers stages whose run() returns a built-up name
        # (opaque to _produced_artifacts) — both views feed the map.
        for artifact in sorted(analysis.produced | analysis.declared_provides):
            producers.setdefault(artifact, analysis.stage_name)
    return producers


def _anchor(project: Project, read: Read, fallback: FunctionInfo) -> Tuple[str, int, int]:
    """Prefer the read site; fall back to the stage's run() definition
    when the read lives in a context module outside the linted set."""
    if project.is_selected(read.path):
        return read.path, read.line, read.col
    return fallback.path, fallback.node.lineno, fallback.node.col_offset


@register
class CacheUndeclaredInputRule(ProjectRule):
    """Everything ``run()`` reads must be in the stage's Merkle key.

    An undeclared input is a cache-poisoning hazard: two runs whose
    configs differ in that input hash to the same artifact key, and the
    second run is served the first run's artifacts.
    """

    id = "cache-undeclared-input"
    title = "stage run() reads an input missing from its artifact key"

    def check_project(self, project: Project) -> Iterator[Finding]:
        analyses = analyze_stages(project)
        producers = _artifact_producers(analyses)
        for analysis in analyses:
            if analysis.run is None or analysis.scan is None:
                continue
            if not project.is_selected(analysis.cls.path):
                continue
            yield from self._check_stage(project, analysis, producers)

    def _check_stage(
        self,
        project: Project,
        analysis: StageAnalysis,
        producers: Dict[str, str],
    ) -> Iterator[Finding]:
        assert analysis.run is not None and analysis.scan is not None
        stage = analysis.cls.name
        scan = analysis.scan
        for attr in sorted(scan.config_reads):
            if attr in analysis.declared_config:
                continue
            read = scan.config_reads[attr]
            path, line, col = _anchor(project, read, analysis.run)
            yield Finding(
                path, line, col, self.id,
                f"stage {stage!r}: run() reads `config.{attr}`{read.via()} "
                "but config_slice() does not expose it — the artifact key "
                "misses this input, so a cached artifact can be served for "
                "a config that changes it",
            )
        for name in sorted(scan.artifact_reads):
            read = scan.artifact_reads[name]
            producer = producers.get(name)
            if producer is not None and producer in analysis.declared_parents:
                continue
            path, line, col = _anchor(project, read, analysis.run)
            if producer is None:
                detail = "which no stage in the graph produces"
            else:
                detail = (
                    f"produced by stage {producer!r}, which requires() does "
                    "not declare — the Merkle key omits that upstream edge"
                )
            yield Finding(
                path, line, col, self.id,
                f"stage {stage!r}: run() reads artifacts[{name!r}]"
                f"{read.via()} {detail}",
            )
        for attr in sorted(scan.flow_reads):
            if (
                attr in FINGERPRINT_COVERED_FLOW_ATTRS
                or attr in EXECUTION_NEUTRAL_FLOW_ATTRS
            ):
                continue
            read = scan.flow_reads[attr]
            path, line, col = _anchor(project, read, analysis.run)
            yield Finding(
                path, line, col, self.id,
                f"stage {stage!r}: run() reads `flow.{attr}`{read.via()}, "
                "which is neither covered by the flow fingerprint nor "
                "execution-neutral — expose it through config_slice() or "
                "fold it into the fingerprint",
            )


@register
class StageEdgeContractRule(ProjectRule):
    """``provides()`` must agree with what ``run()`` actually returns.

    The scheduler trusts the declared edges: ``StageGraph.validate``
    checks duplicate producers against ``provides()``, and the async
    scheduler wires parent outputs to children from the same declaration.
    A stage that returns an artifact it never declared leaves the graph
    blind to the edge (two stages could silently produce it); a declared
    artifact ``run()`` never returns breaks every consumer that
    ``requires()`` the stage for it.
    """

    id = "stage-edge-contract"
    title = "stage provides() disagrees with what run() returns"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for analysis in analyze_stages(project):
            if analysis.run is None:
                continue
            if not project.is_selected(analysis.cls.path):
                continue
            yield from self._check_stage(analysis)

    def _check_stage(self, analysis: StageAnalysis) -> Iterator[Finding]:
        assert analysis.run is not None
        stage = analysis.cls.name
        anchor = (analysis.cls.path, analysis.run.node.lineno,
                  analysis.run.node.col_offset)
        if not analysis.has_provides:
            if analysis.produced:
                yield Finding(
                    *anchor, self.id,
                    f"stage {stage!r}: run() returns artifacts "
                    f"({', '.join(sorted(analysis.produced))}) but no "
                    "provides() is defined anywhere in the class hierarchy "
                    "— the stage graph cannot attribute these edges",
                )
            return
        for name in sorted(analysis.produced - analysis.declared_provides):
            yield Finding(
                *anchor, self.id,
                f"stage {stage!r}: run() returns artifact {name!r} that "
                "provides() does not declare — duplicate-producer "
                "validation and scheduler input wiring are blind to it",
            )
        if _returns_all_literal_dicts(analysis.run):
            for name in sorted(analysis.declared_provides - analysis.produced):
                yield Finding(
                    *anchor, self.id,
                    f"stage {stage!r}: provides() declares artifact "
                    f"{name!r} but run() never returns it — a consumer "
                    "requiring this stage for that artifact gets a "
                    "KeyError at merge time",
                )


# ---------------------------------------------------------------------------
# stale-version heuristic
# ---------------------------------------------------------------------------


def stage_shape(project: Project, analysis: StageAnalysis) -> str:
    """Content hash of the ``run()``-reachable code of one stage:
    AST dumps of every reachable function plus the module constants they
    reference.  Formatting and comments do not move it; logic does."""
    assert analysis.scan is not None
    parts: List[str] = []
    for qualname in sorted(analysis.scan.visited):
        func = project.functions.get(qualname)
        if func is None:
            continue
        parts.append(f"{qualname}\x1e{ast.dump(func.node)}")
        for module, name, dump in project.referenced_module_constants(func):
            parts.append(f"{module}.{name}\x1e{dump}")
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


def _python_minor() -> str:
    return f"{sys.version_info[0]}.{sys.version_info[1]}"


def load_stage_fingerprints(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return {}
    return payload if isinstance(payload, dict) else {}


def write_stage_fingerprints(project: Project, path: str) -> int:
    """Record (version, shape) for every analyzable stage in the linted
    files; returns the number of stages written."""
    stages: Dict[str, Dict[str, object]] = {}
    for analysis in analyze_stages(project):
        if (
            analysis.stage_name is None
            or analysis.version is None
            or analysis.scan is None
            or not project.is_selected(analysis.cls.path)
        ):
            continue
        stages[analysis.stage_name] = {
            "class": analysis.cls.name,
            "version": analysis.version,
            "shape": stage_shape(project, analysis),
        }
    payload = {
        "comment": (
            "stage version fingerprints for the stale-version lint rule; "
            "refresh with `repro lint --write-stage-fingerprints` after "
            "refactor-only changes to run()-reachable code"
        ),
        # AST dumps differ across interpreter versions; the checker only
        # compares shapes produced by the same minor version.
        "python": _python_minor(),
        "stages": {name: stages[name] for name in sorted(stages)},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(stages)


@register
class StaleVersionRule(ProjectRule):
    """A stage whose run()-reachable code changed must bump ``version``.

    The version is the only key term that distinguishes *semantics*
    changes — without a bump, a persistent cache written by the old code
    keeps serving artifacts the new code would compute differently.
    Heuristic: compares the current code shape against the checked-in
    fingerprint file; silent when the file is absent or the stage is new.
    """

    id = "stale-version"
    title = "stage code changed shape but version was not bumped"

    def check_project(self, project: Project) -> Iterator[Finding]:
        path = project.stage_fingerprints_path
        if path is None and os.path.isfile(STAGE_FINGERPRINTS_FILE):
            path = STAGE_FINGERPRINTS_FILE
        if path is None or not os.path.isfile(path):
            return
        payload = load_stage_fingerprints(path)
        if payload.get("python") != _python_minor():
            return  # shapes from another interpreter version don't compare
        recorded_raw = payload.get("stages")
        recorded: Dict[str, Any] = (
            recorded_raw if isinstance(recorded_raw, dict) else {}
        )
        for analysis in analyze_stages(project):
            if (
                analysis.stage_name is None
                or analysis.version is None
                or analysis.scan is None
                or not project.is_selected(analysis.cls.path)
            ):
                continue
            entry = recorded.get(analysis.stage_name)
            if not isinstance(entry, dict):
                continue
            if entry.get("class") != analysis.cls.name:
                continue  # a different project's stage happens to share a name
            shape = stage_shape(project, analysis)
            if entry.get("version") == analysis.version and entry.get("shape") != shape:
                yield Finding(
                    analysis.cls.path,
                    analysis.cls.node.lineno,
                    analysis.cls.node.col_offset,
                    self.id,
                    f"stage {analysis.cls.name!r} ({analysis.stage_name}): "
                    "run()-reachable code changed shape but `version` is "
                    f"still {analysis.version} — persistent caches written "
                    "by the old code would be served with new semantics; "
                    "bump the version, or refresh the fingerprint file "
                    "(`repro lint --write-stage-fingerprints`) if the "
                    "change is refactor-only",
                )
