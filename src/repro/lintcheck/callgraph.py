"""Project-scoped call graph and def-use model for whole-program rules.

The per-line rules in :mod:`repro.lintcheck.rules` see one module at a
time; the dataflow rules (:mod:`repro.lintcheck.cachesafety`,
:mod:`repro.lintcheck.taint`) need to follow a value across function and
module boundaries.  This module builds the shared substrate: every
module of the package containing the linted files is parsed once into a
:class:`Project` — functions and methods indexed by qualified name,
imports resolved per module, classes linked to their bases — and calls
are resolved statically by name:

* ``helper(...)``        — same-module function or an imported one;
* ``self.method(...)``   — the enclosing class, then its bases;
* ``param.method(...)``  — the class named by the parameter annotation
  (string annotations like ``"PostOpcTimingFlow"`` included);
* ``mod.func(...)``      — through the module's import aliases.

Resolution is deliberately conservative: anything dynamic (computed
attributes, values from containers, ``getattr``) resolves to ``None``
and the dataflow rules treat the call as opaque.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: both def flavors — async methods are indexed like sync ones, with
#: :attr:`FunctionInfo.is_async` telling them apart (the concurrency
#: rules need to know which side of the event loop a body runs on)
FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def module_name_for(path: str) -> Tuple[str, str]:
    """(root_dir, dotted module name) for a ``.py`` file.

    Walks up while ``__init__.py`` marks the directory as a package, so
    ``src/repro/flow/stages.py`` maps to ``("src", "repro.flow.stages")``
    and a loose script maps to its own stem.
    """
    directory = os.path.dirname(os.path.abspath(path))
    parts = [os.path.splitext(os.path.basename(path))[0]]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    module = ".".join(reversed(parts))
    if module.endswith(".__init__"):
        module = module[: -len(".__init__")]
    return directory, module


def annotation_simple_name(node: Optional[ast.expr]) -> Optional[str]:
    """The class-ish simple name an annotation points at, if any.

    ``FlowConfig`` -> ``FlowConfig``; ``"PostOpcTimingFlow"`` (a string
    annotation) -> ``PostOpcTimingFlow``; ``Optional["FlowConfig"]``
    unwraps to the inner name.  Containers and unions keep the *last*
    identifier — good enough for the parameter-role resolution the
    dataflow rules need, and harmless when wrong (calls just become
    unresolvable).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        names = _IDENTIFIER_RE.findall(node.value)
        return names[-1] if names else None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        outer = annotation_simple_name(node.value)
        if outer in ("Optional", "Final", "Annotated", "ClassVar"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                return annotation_simple_name(inner.elts[0])
            return annotation_simple_name(inner)
        return outer
    return None


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    path: str
    node: FunctionNode
    class_qualname: Optional[str] = None
    is_property: bool = False

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def display(self) -> str:
        """Short human label: ``Class.method`` or ``func``."""
        parts = self.qualname.split(".")
        if self.class_qualname is not None:
            return ".".join(parts[-2:])
        return parts[-1]

    @property
    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        names.extend(a.arg for a in args.kwonlyargs)
        return names

    def param_annotation(self, param: str) -> Optional[str]:
        args = self.node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            if a.arg == param:
                return annotation_simple_name(a.annotation)
        return None


@dataclass
class ClassInfo:
    """One class definition with its method table."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    properties: Set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str
    path: str
    tree: ast.Module
    #: local binding -> dotted import target ("pkg.mod" or "pkg.mod.obj")
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level ``NAME = <constant>`` assignments (shape-hash input)
    constants: Dict[str, ast.expr] = field(default_factory=dict)
    #: top-level function name -> qualname
    functions: Dict[str, str] = field(default_factory=dict)
    #: top-level class name -> qualname
    classes: Dict[str, str] = field(default_factory=dict)


def _is_property_def(node: FunctionNode) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "property":
            return True
        if isinstance(decorator, ast.Attribute) and decorator.attr == "cached_property":
            return True
    return False


class Project:
    """Every module reachable from the linted files, cross-indexed.

    ``selected`` holds the (absolute) paths the user actually asked to
    lint; sibling modules of their packages are loaded as *context* so
    calls resolve, but findings are only anchored in selected files.
    """

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.classes_by_name: Dict[str, List[str]] = {}
        self.selected: Set[str] = set()
        #: path of the checked-in stage fingerprint file (stale-version
        #: heuristic); None disables that rule for the run
        self.stage_fingerprints_path: Optional[str] = None
        #: scratch space for rules to share derived analyses (the
        #: cache-safety rules reuse one stage traversal this way)
        self.analysis_cache: Dict[str, Any] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_files(
        cls,
        paths: Sequence[str],
        stage_fingerprints_path: Optional[str] = None,
    ) -> "Project":
        project = cls()
        project.stage_fingerprints_path = stage_fingerprints_path
        to_load: Dict[str, Tuple[str, str]] = {}  # abspath -> (modname, display)
        for path in paths:
            if not path.endswith(".py") or not os.path.isfile(path):
                continue
            abspath = os.path.abspath(path)
            project.selected.add(abspath)
            root, modname = module_name_for(path)
            to_load[abspath] = (modname, path)
            # Pull in the rest of the top-level package as context, so
            # cross-module calls from the selected files resolve.
            top = modname.split(".")[0]
            package_dir = os.path.join(root, top)
            if os.path.isfile(os.path.join(package_dir, "__init__.py")):
                for walk_root, dirnames, filenames in os.walk(package_dir):
                    dirnames.sort()
                    dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                    for filename in sorted(filenames):
                        if not filename.endswith(".py"):
                            continue
                        sibling = os.path.join(walk_root, filename)
                        sibling_abs = os.path.abspath(sibling)
                        if sibling_abs not in to_load:
                            _, sib_mod = module_name_for(sibling)
                            to_load[sibling_abs] = (sib_mod, sibling)
        for abspath in sorted(to_load):
            modname, display = to_load[abspath]
            project._load_module(abspath, modname, display)
        return project

    def _load_module(self, abspath: str, modname: str, display: str) -> None:
        try:
            with open(abspath, "r", encoding="utf-8") as fh:
                text = fh.read()
            tree = ast.parse(text, filename=display)
        except (OSError, SyntaxError, ValueError):
            return  # the per-module engine reports unparseable files
        if modname in self.modules:
            return
        info = ModuleInfo(name=modname, path=display, tree=tree)
        self.modules[modname] = info
        self._index_imports(info)
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Constant):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.constants[target.id] = stmt.value
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{modname}.{stmt.name}"
                info.functions[stmt.name] = qualname
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=modname, path=display, node=stmt
                )
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(info, stmt)

    def _index_class(self, info: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{info.name}.{node.name}"
        bases: List[str] = []
        for base in node.bases:
            base_name = annotation_simple_name(base)
            if base_name:
                bases.append(base_name)
        cls_info = ClassInfo(
            qualname=qualname, module=info.name, path=info.path,
            node=node, bases=bases,
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qualname = f"{qualname}.{item.name}"
                is_prop = _is_property_def(item)
                cls_info.methods[item.name] = method_qualname
                if is_prop:
                    cls_info.properties.add(item.name)
                self.functions[method_qualname] = FunctionInfo(
                    qualname=method_qualname, module=info.name, path=info.path,
                    node=item, class_qualname=qualname, is_property=is_prop,
                )
        info.classes[node.name] = qualname
        self.classes[qualname] = cls_info
        self.classes_by_name.setdefault(node.name, []).append(qualname)

    def _index_imports(self, info: ModuleInfo) -> None:
        package_parts = info.name.split(".")[:-1]
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        info.imports[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        info.imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = package_parts[: len(package_parts) - (node.level - 1)]
                    if node.level > len(package_parts) + 1:
                        continue
                else:
                    base = []
                prefix = list(base)
                if node.module:
                    prefix.extend(node.module.split("."))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    info.imports[bound] = ".".join(prefix + [alias.name])

    # -- queries ------------------------------------------------------------

    def is_selected(self, path: str) -> bool:
        return os.path.abspath(path) in self.selected

    def iter_selected_modules(self) -> Iterator[ModuleInfo]:
        for name in sorted(self.modules):
            info = self.modules[name]
            if self.is_selected(info.path):
                yield info

    def resolve_class(
        self, simple_name: str, prefer_module: Optional[str] = None
    ) -> Optional[ClassInfo]:
        candidates = self.classes_by_name.get(simple_name)
        if not candidates:
            return None
        if prefer_module is not None:
            for qualname in candidates:
                if self.classes[qualname].module == prefer_module:
                    return self.classes[qualname]
            # Same top-level package beats an unrelated homonym.
            top = prefer_module.split(".")[0]
            for qualname in candidates:
                if qualname.split(".")[0] == top:
                    return self.classes[qualname]
        return self.classes[sorted(candidates)[0]]

    def resolve_method(
        self,
        cls: ClassInfo,
        method: str,
        _seen: Optional[Set[str]] = None,
    ) -> Optional[FunctionInfo]:
        """Look a method up on a class, then on its bases (by name)."""
        seen = _seen if _seen is not None else set()
        if cls.qualname in seen:
            return None
        seen.add(cls.qualname)
        if method in cls.methods:
            return self.functions[cls.methods[method]]
        for base_name in cls.bases:
            base = self.resolve_class(base_name, prefer_module=cls.module)
            if base is not None:
                found = self.resolve_method(base, method, _seen=seen)
                if found is not None:
                    return found
        return None

    def class_of(self, func: FunctionInfo) -> Optional[ClassInfo]:
        if func.class_qualname is None:
            return None
        return self.classes.get(func.class_qualname)

    def is_subclass_of(self, cls: ClassInfo, base_simple_name: str) -> bool:
        """Transitive base check by simple name (in-project bases only)."""
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            for base_name in current.bases:
                if base_name == base_simple_name:
                    return True
                base = self.resolve_class(base_name, prefer_module=current.module)
                if base is not None:
                    stack.append(base)
        return False

    def iter_subclasses(self, base_simple_name: str) -> Iterator[ClassInfo]:
        """Every project class transitively deriving from the named base."""
        for qualname in sorted(self.classes):
            cls = self.classes[qualname]
            if cls.name != base_simple_name and self.is_subclass_of(
                cls, base_simple_name
            ):
                yield cls

    def resolve_call(
        self,
        caller: FunctionInfo,
        func: ast.expr,
        local_classes: Optional[Mapping[str, str]] = None,
    ) -> Optional[FunctionInfo]:
        """Statically resolve the callee of ``func(...)`` from ``caller``.

        ``local_classes`` maps local names to class simple names (roles
        the dataflow rules track beyond what annotations say).  Returns
        None for anything dynamic.
        """
        module = self.modules.get(caller.module)
        if module is None:
            return None
        if isinstance(func, ast.Name):
            qualname = module.functions.get(func.id)
            if qualname is not None:
                return self.functions[qualname]
            target = module.imports.get(func.id)
            if target is not None and target in self.functions:
                return self.functions[target]
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            receiver, method = func.value.id, func.attr
            cls = self._receiver_class(caller, receiver, local_classes)
            if cls is not None:
                return self.resolve_method(cls, method)
            target = module.imports.get(receiver)
            if target is not None:
                qualname = f"{target}.{method}"
                if qualname in self.functions:
                    return self.functions[qualname]
            return None
        return None

    def resolve_property(
        self,
        caller: FunctionInfo,
        receiver: str,
        attr: str,
        local_classes: Optional[Mapping[str, str]] = None,
    ) -> Optional[FunctionInfo]:
        """The property getter behind ``receiver.attr``, if it is one."""
        cls = self._receiver_class(caller, receiver, local_classes)
        if cls is None:
            return None
        found = self.resolve_method(cls, attr)
        if found is not None and found.is_property:
            return found
        return None

    def _receiver_class(
        self,
        caller: FunctionInfo,
        receiver: str,
        local_classes: Optional[Mapping[str, str]] = None,
    ) -> Optional[ClassInfo]:
        if local_classes and receiver in local_classes:
            return self.resolve_class(local_classes[receiver],
                                      prefer_module=caller.module)
        if receiver == "self" and caller.class_qualname is not None:
            return self.classes.get(caller.class_qualname)
        annotated = caller.param_annotation(receiver)
        if annotated is not None:
            return self.resolve_class(annotated, prefer_module=caller.module)
        return None

    def referenced_module_constants(
        self, func: FunctionInfo
    ) -> List[Tuple[str, str, str]]:
        """(module, name, constant dump) for module-level constants the
        function body reads — part of the stale-version shape, so editing
        ``CANONICAL_PERIOD_PS = 1000.0`` counts as a code-shape change."""
        module = self.modules.get(func.module)
        if module is None or not module.constants:
            return []
        out: List[Tuple[str, str, str]] = []
        seen: Set[str] = set()
        for node in ast.walk(func.node):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in module.constants
                and node.id not in seen
            ):
                seen.add(node.id)
                out.append((module.name, node.id,
                            ast.dump(module.constants[node.id])))
        return sorted(out)


def frozen_env(env: Mapping[str, str]) -> FrozenSet[Tuple[str, str]]:
    """Hashable view of a role/class environment (memoization key)."""
    return frozenset(env.items())
