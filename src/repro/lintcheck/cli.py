"""``repro lint`` — the CLI face of the determinism/contract checker.

Exit codes fold into the flow's contract: ``0`` clean, ``1`` findings,
``3`` invalid input (unknown rule, missing path — raised as
:class:`~repro.flow.errors.InputValidationError` and mapped by the
top-level CLI handler).
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence, TextIO

from repro.lintcheck.core import check_paths, iter_rules, rules_for


def list_rules(out: Optional[TextIO] = None) -> int:
    """Print the registered rule table (id, title, scope)."""
    out = out if out is not None else sys.stdout
    rules = iter_rules()
    width = max(len(rule.id) for rule in rules)
    for rule in rules:
        scope = "all files" if rule.applies_to("src/repro/anywhere.py") else "scoped"
        out.write(f"{rule.id:<{width}}  {rule.title} [{scope}]\n")
    out.write(f"{len(rules)} rules; waive inline with "
              "`# repro-lint: allow[rule-id]`\n")
    return 0


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    no_waivers: bool = False,
    exclude: Optional[Sequence[str]] = None,
    out: Optional[TextIO] = None,
) -> int:
    """Lint ``paths``; print ``file:line:col: RULE message`` per finding."""
    out = out if out is not None else sys.stdout
    rules = rules_for(select=select, ignore=ignore)
    findings = check_paths(
        list(paths), rules=rules, apply_waivers=not no_waivers, exclude=exclude
    )
    for found in findings:
        out.write(found.render() + "\n")
    names: List[str] = sorted({found.rule for found in findings})
    if findings:
        out.write(f"{len(findings)} finding(s) [{', '.join(names)}]\n")
        return 1
    out.write(f"clean ({len(rules)} rules)\n")
    return 0
