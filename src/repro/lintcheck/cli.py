"""``repro lint`` — the CLI face of the determinism/contract checker.

Exit codes fold into the flow's contract: ``0`` clean, ``1`` findings,
``3`` invalid input (unknown rule, missing path — raised as
:class:`~repro.flow.errors.InputValidationError` and mapped by the
top-level CLI handler).

Beyond the plain run, the CLI speaks three formats (``--format
text|json|sarif``), grandfathers known findings through a committed
baseline (``--baseline`` / ``--write-baseline``), fans the per-module
rules out over processes (``--jobs``), and maintains the stage version
fingerprint file the ``stale-version`` rule compares against
(``--stage-fingerprints`` / ``--write-stage-fingerprints``).
"""

from __future__ import annotations

import os
import subprocess
import sys
from typing import List, Optional, Sequence, TextIO

from repro.flow.errors import InputValidationError
from repro.lintcheck.core import check_paths, collect_files, iter_rules, rules_for
from repro.lintcheck.formats import (
    apply_baseline,
    load_baseline,
    render,
    write_baseline,
)


def _split_rule_names(names: Optional[Sequence[str]]) -> Optional[List[str]]:
    """Expand ``--select a,b --select c`` into ``["a", "b", "c"]``."""
    if names is None:
        return None
    out: List[str] = []
    for entry in names:
        out.extend(name.strip() for name in entry.split(",") if name.strip())
    return out


#: the hash of git's empty tree — the diff base when HEAD has no commit
#: yet (fresh repo, orphan branch): everything tracked counts as changed
_EMPTY_TREE = "4b825dc642cb6eb9a060e54bf8d69288fbee4904"


def _parse_name_status(raw: str) -> List[str]:
    """Post-image paths from ``git diff --name-status -z`` output.

    The -z stream is ``STATUS\\0path\\0`` per entry — except renames and
    copies (``R<score>``/``C<score>``), which carry *two* paths
    (``old\\0new\\0``); linting wants the new one.  A plain
    ``--name-only`` parse silently treats the old path of a rename as a
    changed file (it no longer exists) and misses nothing else, which is
    exactly the bug this replaces.
    """
    fields = raw.split("\0")
    paths: List[str] = []
    index = 0
    while index < len(fields):
        status = fields[index]
        if not status:
            index += 1
            continue
        if status[0] in ("R", "C"):
            if index + 2 >= len(fields):
                break
            paths.append(fields[index + 2])  # old, then new
            index += 3
        else:
            if index + 1 >= len(fields):
                break
            if status[0] != "D":  # deleted files cannot be linted
                paths.append(fields[index + 1])
            index += 2
    return paths


def changed_files() -> List[str]:
    """Python files changed against ``HEAD`` plus untracked ones, as
    absolute paths — the ``--changed`` pre-commit scope.

    Works in any checkout shape: detached HEAD (a bare commit hash is as
    good a base as a branch tip), renamed files (the post-rename path is
    linted, the pre-rename path is not resurrected), and a repo with no
    commits yet (diffed against the empty tree).
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        head = subprocess.run(
            ["git", "rev-parse", "--verify", "--quiet", "HEAD^{commit}"],
            capture_output=True, text=True,
        )
        base = head.stdout.strip() if head.returncode == 0 else _EMPTY_TREE
        diff = subprocess.run(
            ["git", "diff", "--name-status", "-z", "-M", base],
            capture_output=True, text=True, check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard", "-z"],
            capture_output=True, text=True, check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        raise InputValidationError(
            "changed", f"--changed needs a git checkout: {exc}"
        ) from exc
    names = _parse_name_status(diff)
    names.extend(name for name in untracked.split("\0") if name)
    out: List[str] = []
    for name in names:
        if not name.endswith(".py"):
            continue
        path = os.path.join(top, name)
        if os.path.isfile(path):
            out.append(os.path.abspath(path))
    return sorted(set(out))


def list_rules(out: Optional[TextIO] = None) -> int:
    """Print the registered rule table (id, title, scope)."""
    out = out if out is not None else sys.stdout
    rules = iter_rules()
    width = max(len(rule.id) for rule in rules)
    for rule in rules:
        scope = "all files" if rule.applies_to("src/repro/anywhere.py") else "scoped"
        out.write(f"{rule.id:<{width}}  {rule.title} [{scope}]\n")
    out.write(f"{len(rules)} rules; waive inline with "
              "`# repro-lint: allow[rule-id]`\n")
    return 0


def write_fingerprints(
    paths: Sequence[str],
    fingerprints_path: str,
    exclude: Optional[Sequence[str]] = None,
    out: Optional[TextIO] = None,
) -> int:
    """Record the current (version, shape) of every stage in ``paths``."""
    from repro.lintcheck.callgraph import Project
    from repro.lintcheck.cachesafety import write_stage_fingerprints

    out = out if out is not None else sys.stdout
    files = collect_files(paths, exclude=exclude)
    project = Project.from_files(files)
    count = write_stage_fingerprints(project, fingerprints_path)
    out.write(f"recorded {count} stage fingerprint(s) in {fingerprints_path}\n")
    return 0


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    no_waivers: bool = False,
    exclude: Optional[Sequence[str]] = None,
    out: Optional[TextIO] = None,
    fmt: str = "text",
    jobs: int = 1,
    baseline: Optional[str] = None,
    write_baseline_path: Optional[str] = None,
    stage_fingerprints: Optional[str] = None,
    changed_only: bool = False,
) -> int:
    """Lint ``paths``; render findings in ``fmt``; exit 1 on findings.

    With ``baseline`` set, grandfathered findings are suppressed before
    rendering; with ``write_baseline_path`` set, the run records the
    current findings as the new baseline and exits 0.  ``changed_only``
    intersects the collected files with the git-changed set (diff
    against HEAD plus untracked), so the heavier whole-program rules
    stay fast in pre-commit use; a run where nothing under ``paths``
    changed is clean by definition.
    """
    out = out if out is not None else sys.stdout
    rules = rules_for(select=_split_rule_names(select),
                      ignore=_split_rule_names(ignore))
    lint_paths = list(paths)
    if changed_only:
        changed = set(changed_files())
        lint_paths = [
            file_path for file_path in collect_files(lint_paths, exclude=exclude)
            if os.path.abspath(file_path) in changed
        ]
        if not lint_paths:
            out.write("no changed Python files under the given paths\n")
            return 0
    findings = check_paths(
        lint_paths, rules=rules, apply_waivers=not no_waivers,
        exclude=exclude, jobs=jobs, stage_fingerprints=stage_fingerprints,
    )
    if write_baseline_path is not None:
        count = write_baseline(findings, write_baseline_path)
        out.write(f"baselined {count} finding(s) in {write_baseline_path}\n")
        return 0
    suppressed = 0
    if baseline is not None:
        findings, suppressed = apply_baseline(findings, load_baseline(baseline))
    if fmt != "text":
        # Machine formats emit the bare document — no summary chatter.
        render(fmt, findings, out, rules=rules)
        return 1 if findings else 0
    render(fmt, findings, out, rules=rules)
    names: List[str] = sorted({found.rule for found in findings})
    if suppressed:
        out.write(f"{suppressed} baselined finding(s) suppressed\n")
    if findings:
        out.write(f"{len(findings)} finding(s) [{', '.join(names)}]\n")
        return 1
    out.write(f"clean ({len(rules)} rules)\n")
    return 0
