"""Concurrency-safety rules: lock discipline, lock order, async blocking.

The flow became a concurrent system — an asyncio scheduler and job
service driving thread-pool stages over a lock-protected shared cache —
and the determinism guarantee now also rests on thread/async safety.
Three whole-program rules, sharing one :class:`ConcurrencyModel` built
from the :class:`~repro.lintcheck.callgraph.Project`, prove the three
properties that matter:

``unguarded-shared-state``
    Per class, the guarded-attribute set is *inferred* from accesses
    inside ``with self._lock:`` bodies (lock attributes are seeded by
    ``threading.Lock/RLock/Condition`` assignments).  Any read or write
    of a guarded attribute in a method reachable from a thread entry
    point (``asyncio.to_thread``, ``executor.submit``,
    ``Thread(target=...)``, journal listeners) without the lock held is
    flagged, with the full entry->access call chain in the message.
    A second pattern catches attributes of lock-owning classes that are
    mutated from thread context but *never* guarded at all.

``lock-order-inversion``
    A static lock-acquisition graph (nested ``with`` blocks, plus calls
    made while holding a lock into functions that transitively acquire
    another) is checked for cycles; a non-reentrant ``threading.Lock``
    re-acquired while already held is reported as a guaranteed
    self-deadlock.

``blocking-in-async``
    Blocking operations (``time.sleep``, file I/O, ``subprocess``,
    socket calls, lock acquisition — directly or transitively through
    sync callees) reachable from ``async def`` bodies are flagged
    unless routed through ``asyncio.to_thread``.  The inverse is also
    checked: asyncio primitives touched from thread context.

The static model is deliberately lexical and conservative in the same
way :mod:`repro.lintcheck.taint` is; the runtime companion
:mod:`repro.lintcheck.lcsan` validates it against observed executions.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Set, Tuple

from repro.lintcheck.callgraph import FunctionInfo, ModuleInfo, Project
from repro.lintcheck.core import Finding, ProjectRule, register

_CACHE_KEY = "concurrency-model"
_MAX_ROUNDS = 10

#: (class qualname, attribute name) — identity of one instance lock
LockId = Tuple[str, str]

#: threading factories that create a lock attribute; value = reentrant
_LOCK_FACTORIES: Dict[str, bool] = {
    "threading.Lock": False,
    "threading.RLock": True,
    "threading.Condition": True,
}

#: receiver methods that mutate the receiver in place
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "update", "remove",
    "discard", "pop", "popleft", "popitem", "clear", "setdefault", "sort",
    "reverse",
})

#: methods whose accesses are construction, not shared-state traffic
_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

#: calls that block the calling thread (event-loop poison)
_BLOCKING_DOTTED = frozenset({
    "time.sleep",
    "os.fsync", "os.replace", "os.remove", "os.unlink", "os.rename",
    "os.makedirs", "os.listdir", "os.scandir", "os.stat", "os.utime",
    "os.rmdir",
    "shutil.rmtree", "shutil.copy", "shutil.copyfile", "shutil.move",
    "socket.socket", "socket.create_connection",
    "tempfile.mkstemp", "tempfile.mkdtemp",
})

#: the asyncio API that *is* legal from a foreign thread
_THREADSAFE_ASYNCIO = frozenset({"asyncio.run_coroutine_threadsafe"})


def _short(cls_qualname: str) -> str:
    return cls_qualname.rsplit(".", 1)[-1]


def _lock_display(lock: LockId) -> str:
    return f"{_short(lock[0])}.{lock[1]}"


@dataclass(frozen=True)
class LockInfo:
    """One ``self.X = threading.Lock()``-style lock attribute."""

    cls: str
    attr: str
    reentrant: bool
    path: str
    line: int


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` read or write inside a method body."""

    cls: str
    attr: str
    func: str  # qualname of the containing function
    path: str
    line: int
    col: int
    kind: str  # "read" | "written"
    held: FrozenSet[LockId]

    @property
    def method_name(self) -> str:
        return self.func.rsplit(".", 1)[-1]


@dataclass(frozen=True)
class Acquisition:
    """One lock acquisition (``with self.X`` or ``self.X.acquire()``)."""

    lock: LockId
    held: Tuple[LockId, ...]
    func: str
    path: str
    line: int
    col: int


@dataclass
class CallSite:
    """One call expression, with the locks lexically held around it."""

    node: ast.Call
    held: Tuple[LockId, ...]
    resolved: Optional[str] = None  # callee qualname, once resolved


@dataclass(frozen=True)
class ThreadEntry:
    """How a function first becomes reachable from a non-loop thread."""

    desc: str
    path: str
    line: int


@dataclass(frozen=True)
class ThreadChain:
    """Entry point plus the call chain that reaches a function from it."""

    entry: ThreadEntry
    chain: Tuple[str, ...]

    def describe(self) -> str:
        return (
            f"{self.entry.desc} ({self.entry.path}:{self.entry.line}): "
            + " -> ".join(self.chain)
        )


@dataclass(frozen=True)
class BlockedInfo:
    """Why a sync function blocks: the operation and the path to it."""

    op: str
    path: str
    line: int
    chain: Tuple[str, ...]  # callee displays from the function down


@dataclass
class ConcurrencyModel:
    """Everything the three concurrency rules share, built in one pass."""

    locks: Dict[str, Dict[str, LockInfo]] = field(default_factory=dict)
    accesses: List[AttrAccess] = field(default_factory=list)
    acquisitions: List[Acquisition] = field(default_factory=list)
    call_sites: Dict[str, List[CallSite]] = field(default_factory=dict)
    entries: Dict[str, ThreadEntry] = field(default_factory=dict)
    reachable: Dict[str, ThreadChain] = field(default_factory=dict)
    always_held: Dict[str, FrozenSet[LockId]] = field(default_factory=dict)

    def locks_of(self, cls_qualname: Optional[str]) -> Dict[str, LockInfo]:
        if cls_qualname is None:
            return {}
        return self.locks.get(cls_qualname, {})


def _dotted_call(module: ModuleInfo, func_expr: ast.expr) -> Optional[str]:
    """``threading.Lock`` / ``asyncio.to_thread`` style dotted name of a
    call target, resolved through the module's import aliases; ``None``
    for anything local or dynamic."""
    parts: List[str] = []
    node = func_expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = module.imports.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


def _collect_locks(project: Project, model: ConcurrencyModel) -> None:
    for cls_qualname in sorted(project.classes):
        cls = project.classes[cls_qualname]
        module = project.modules.get(cls.module)
        if module is None:
            continue
        table: Dict[str, LockInfo] = {}
        for node in ast.walk(cls.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            dotted = _dotted_call(module, value.func)
            if dotted not in _LOCK_FACTORIES:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr: Optional[str] = None
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr = target.attr
                elif isinstance(target, ast.Name):  # class-level lock
                    attr = target.id
                if attr is not None and attr not in table:
                    table[attr] = LockInfo(
                        cls=cls_qualname, attr=attr,
                        reentrant=_LOCK_FACTORIES[dotted],
                        path=cls.path, line=value.lineno,
                    )
        if table:
            model.locks[cls_qualname] = table


class _FunctionScan:
    """One lexical pass over a function body.

    Tracks the ``with self.X:`` lock stack, recording attribute
    accesses, lock acquisitions, call sites and thread entry points into
    the shared model.  Nested function/lambda bodies are scanned with an
    empty lock stack (they run later, when nothing lexical is held).
    """

    def __init__(
        self, project: Project, model: ConcurrencyModel, func: FunctionInfo
    ) -> None:
        self.project = project
        self.model = model
        self.func = func
        self.module = project.modules.get(func.module)
        cls = project.class_of(func)
        self.cls_qualname = cls.qualname if cls is not None else None
        self.cls_locks = model.locks_of(self.cls_qualname)
        self.cls_methods = cls.methods if cls is not None else {}
        self.cls_properties = cls.properties if cls is not None else set()
        self.sites = model.call_sites.setdefault(func.qualname, [])

    def run(self) -> None:
        for stmt in self.func.node.body:
            self._scan(stmt, ())

    # -- helpers -------------------------------------------------------------

    def _self_attr(self, node: ast.expr) -> Optional[ast.Attribute]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node
        return None

    def _lock_attr(self, node: ast.expr) -> Optional[LockId]:
        attr = self._self_attr(node)
        if attr is not None and attr.attr in self.cls_locks:
            assert self.cls_qualname is not None
            return (self.cls_qualname, attr.attr)
        return None

    def _record_access(
        self, node: ast.Attribute, held: Tuple[LockId, ...], kind: str
    ) -> None:
        if self.cls_qualname is None:
            return
        name = node.attr
        if (
            name in self.cls_locks
            or name in self.cls_methods
            or name in self.cls_properties
        ):
            return
        self.model.accesses.append(AttrAccess(
            cls=self.cls_qualname, attr=name, func=self.func.qualname,
            path=self.func.path, line=node.lineno, col=node.col_offset,
            kind=kind, held=frozenset(held),
        ))

    def _record_acquisition(
        self, lock: LockId, held: Tuple[LockId, ...], node: ast.expr
    ) -> None:
        self.model.acquisitions.append(Acquisition(
            lock=lock, held=held, func=self.func.qualname,
            path=self.func.path, line=node.lineno, col=node.col_offset,
        ))

    def _entry_targets(self, arg: ast.expr) -> List[FunctionInfo]:
        """Resolve a callable argument: a name, a bound method, a
        ``functools.partial(...)`` head, or every call a lambda makes."""
        if isinstance(arg, ast.Lambda):
            out: List[FunctionInfo] = []
            for sub in ast.walk(arg.body):
                if isinstance(sub, ast.Call):
                    resolved = self.project.resolve_call(self.func, sub.func)
                    if resolved is not None:
                        out.append(resolved)
            return out
        if isinstance(arg, ast.Call):
            if self.module is not None:
                dotted = _dotted_call(self.module, arg.func)
                if dotted == "functools.partial" and arg.args:
                    return self._entry_targets(arg.args[0])
            return []
        resolved = self.project.resolve_call(self.func, arg)
        return [resolved] if resolved is not None else []

    def _maybe_entry(self, node: ast.Call) -> None:
        """Record ``f`` as a thread entry point for dispatches like
        ``asyncio.to_thread(f)``, ``pool.submit(f)``, ``Thread(target=f)``,
        ``journal.add_listener(f)`` (listeners fire on the writer's
        thread) and ``loop.run_in_executor(None, f)``."""
        arg: Optional[ast.expr] = None
        if self.module is not None:
            dotted = _dotted_call(self.module, node.func)
            if dotted == "asyncio.to_thread" and node.args:
                arg = node.args[0]
            elif dotted == "threading.Thread":
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        arg = keyword.value
        if arg is None and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in ("submit", "map_chunks", "add_listener") and node.args:
                arg = node.args[0]
            elif attr == "run_in_executor" and len(node.args) >= 2:
                arg = node.args[1]
        if arg is None:
            return
        label = "lambda" if isinstance(arg, ast.Lambda) else ast.unparse(arg)
        desc = f"{ast.unparse(node.func)}({label})"
        for target in self._entry_targets(arg):
            self.model.entries.setdefault(
                target.qualname,
                ThreadEntry(desc=desc, path=self.func.path, line=node.lineno),
            )

    # -- the walk ------------------------------------------------------------

    def _scan(self, node: ast.AST, held: Tuple[LockId, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in node.body:
                self._scan(stmt, ())
            return
        if isinstance(node, ast.Lambda):
            self._scan(node.body, ())
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[LockId] = []
            for item in node.items:
                lock = self._lock_attr(item.context_expr)
                if lock is not None:
                    self._record_acquisition(
                        lock, held + tuple(acquired), item.context_expr
                    )
                    acquired.append(lock)
                else:
                    self._scan(item.context_expr, held)
                if item.optional_vars is not None:
                    self._scan(item.optional_vars, held)
            inner = held + tuple(lk for lk in acquired if lk not in held)
            for stmt in node.body:
                self._scan(stmt, inner)
            return
        if isinstance(node, ast.Call):
            self._scan_call(node, held)
            return
        if isinstance(node, ast.Subscript):
            attr = self._self_attr(node.value)
            if attr is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
                self._record_access(attr, held, kind="written")
                self._scan(node.slice, held)
                return
            self._scan(node.value, held)
            self._scan(node.slice, held)
            return
        if isinstance(node, ast.Attribute):
            attr = self._self_attr(node)
            if attr is not None:
                kind = (
                    "written"
                    if isinstance(node.ctx, (ast.Store, ast.Del))
                    else "read"
                )
                self._record_access(attr, held, kind=kind)
                return
            self._scan(node.value, held)
            return
        for child in ast.iter_child_nodes(node):
            self._scan(child, held)

    def _scan_call(self, node: ast.Call, held: Tuple[LockId, ...]) -> None:
        func_expr = node.func
        if isinstance(func_expr, ast.Attribute):
            # self.<lock>.acquire(...)
            lock = self._lock_attr(func_expr.value)
            if lock is not None and func_expr.attr == "acquire":
                self._record_acquisition(lock, held, node)
                for arg in node.args:
                    self._scan(arg, held)
                for keyword in node.keywords:
                    self._scan(keyword.value, held)
                return
            # self.<attr>.append(...) and friends: in-place mutation
            attr = self._self_attr(func_expr.value)
            if attr is not None and func_expr.attr in _MUTATORS:
                self._record_access(attr, held, kind="written")
                self.sites.append(CallSite(node=node, held=held))
                for arg in node.args:
                    self._scan(arg, held)
                for keyword in node.keywords:
                    self._scan(keyword.value, held)
                return
        self.sites.append(CallSite(node=node, held=held))
        self._maybe_entry(node)
        for child in ast.iter_child_nodes(node):
            self._scan(child, held)


def _resolve_sites(project: Project, model: ConcurrencyModel) -> None:
    for qualname in sorted(model.call_sites):
        caller = project.functions.get(qualname)
        if caller is None:
            continue
        for site in model.call_sites[qualname]:
            resolved = project.resolve_call(caller, site.node.func)
            if resolved is not None and not resolved.is_property:
                site.resolved = resolved.qualname


def _reachability(project: Project, model: ConcurrencyModel) -> None:
    """BFS from the thread entry points over resolved calls.

    Async callees are not traversed: calling a coroutine function from a
    thread only builds the coroutine, it does not run the body there.
    """
    queue: deque[str] = deque()
    for qualname in sorted(model.entries):
        info = project.functions.get(qualname)
        if info is None or info.is_async:
            continue
        model.reachable[qualname] = ThreadChain(
            entry=model.entries[qualname], chain=(info.display,)
        )
        queue.append(qualname)
    while queue:
        qualname = queue.popleft()
        chain = model.reachable[qualname]
        for site in model.call_sites.get(qualname, []):
            if site.resolved is None or site.resolved in model.reachable:
                continue
            callee = project.functions[site.resolved]
            if callee.is_async:
                continue
            model.reachable[site.resolved] = ThreadChain(
                entry=chain.entry, chain=chain.chain + (callee.display,)
            )
            queue.append(site.resolved)


def _always_held(project: Project, model: ConcurrencyModel) -> None:
    """Locks held at *every* known call site of a function, fixpointed so
    a helper only ever called under ``self._disk_lock`` inherits it.
    Thread entry points are pinned to the empty set — they are invoked
    bare.  Unknown (dynamic) callers are simply not seen; the inference
    stays a lint heuristic, not a proof."""
    callers: Dict[str, List[Tuple[str, Tuple[LockId, ...]]]] = {}
    for qualname in sorted(model.call_sites):
        for site in model.call_sites[qualname]:
            if site.resolved is not None:
                callers.setdefault(site.resolved, []).append(
                    (qualname, site.held)
                )
    held: Dict[str, FrozenSet[LockId]] = {
        qualname: frozenset() for qualname in project.functions
    }
    for _ in range(_MAX_ROUNDS):
        changed = False
        for qualname in sorted(callers):
            if qualname in model.entries or qualname not in held:
                continue
            meet: Optional[FrozenSet[LockId]] = None
            for caller_qualname, site_held in callers[qualname]:
                effective = frozenset(site_held) | held.get(
                    caller_qualname, frozenset()
                )
                meet = effective if meet is None else meet & effective
            if meet and meet != held[qualname]:
                held[qualname] = meet
                changed = True
        if not changed:
            break
    model.always_held = held


def build_model(project: Project) -> ConcurrencyModel:
    """Build (or fetch the cached) concurrency model for a project."""
    cached = project.analysis_cache.get(_CACHE_KEY)
    if isinstance(cached, ConcurrencyModel):
        return cached
    model = ConcurrencyModel()
    _collect_locks(project, model)
    for qualname in sorted(project.functions):
        _FunctionScan(project, model, project.functions[qualname]).run()
    _resolve_sites(project, model)
    _reachability(project, model)
    _always_held(project, model)
    project.analysis_cache[_CACHE_KEY] = model
    return model


def _effective_held(model: ConcurrencyModel, access: AttrAccess) -> FrozenSet[LockId]:
    return access.held | model.always_held.get(access.func, frozenset())


def _flow_scoped(path: str) -> bool:
    return "repro/flow/" in path


@register
class UnguardedSharedStateRule(ProjectRule):
    """Thread-shared attributes must hold their inferred guard lock."""

    id = "unguarded-shared-state"
    title = "thread-shared attribute accessed without its guard lock"

    def applies_to(self, path: str) -> bool:
        return _flow_scoped(path)

    def check_project(self, project: Project) -> Iterator[Finding]:
        model = build_model(project)
        for cls_qualname in sorted(model.locks):
            yield from self._check_class(project, model, cls_qualname)

    def _check_class(
        self, project: Project, model: ConcurrencyModel, cls_qualname: str
    ) -> Iterator[Finding]:
        owner = _short(cls_qualname)
        accesses = [
            access for access in model.accesses
            if access.cls == cls_qualname
            and access.method_name not in _EXEMPT_METHODS
        ]
        guarded: Dict[str, Set[LockId]] = {}
        witnesses: Dict[str, ThreadChain] = {}
        methods_touching: Dict[str, Set[str]] = {}
        written: Set[str] = set()
        unlocked_writes: Dict[str, bool] = {}
        for access in accesses:
            effective = _effective_held(model, access)
            for lock in effective:
                if lock[0] == cls_qualname:
                    guarded.setdefault(access.attr, set()).add(lock)
            chain = model.reachable.get(access.func)
            if chain is not None:
                witnesses.setdefault(access.attr, chain)
            methods_touching.setdefault(access.attr, set()).add(access.func)
            if access.kind == "written":
                written.add(access.attr)
                if not effective:
                    unlocked_writes[access.attr] = True
        for access in accesses:
            if not project.is_selected(access.path):
                continue
            witness = witnesses.get(access.attr)
            if witness is None:
                continue  # never touched from thread context
            if access.attr not in written:
                continue  # immutable after construction: reads are safe
            effective = _effective_held(model, access)
            verb = "written" if access.kind == "written" else "read"
            guards = guarded.get(access.attr)
            if guards:
                if effective & guards:
                    continue
                locks_text = " or ".join(
                    sorted(_lock_display(lock) for lock in guards)
                )
                yield Finding(
                    path=access.path, line=access.line, col=access.col,
                    rule=self.id,
                    message=(
                        f"{owner}.{access.attr} is {verb} without holding "
                        f"{locks_text}; other accesses hold it, and the "
                        f"attribute is thread-shared via {witness.describe()}"
                    ),
                )
            else:
                if not unlocked_writes.get(access.attr):
                    continue  # effectively immutable after construction
                if len(methods_touching.get(access.attr, set())) < 2:
                    continue  # single-method state, no cross-method race
                yield Finding(
                    path=access.path, line=access.line, col=access.col,
                    rule=self.id,
                    message=(
                        f"{owner}.{access.attr} is {verb} with no lock held; "
                        f"the attribute is mutated and thread-shared via "
                        f"{witness.describe()} but no access ever holds one "
                        f"of {owner}'s locks"
                    ),
                )


@dataclass(frozen=True)
class _Edge:
    """First-seen witness for one lock-order edge."""

    path: str
    line: int
    via: Optional[str]  # callee display when the edge crosses a call

    def describe(self, src: LockId, dst: LockId) -> str:
        how = f" via {self.via}" if self.via else ""
        return (
            f"{_lock_display(src)} -> {_lock_display(dst)}"
            f" at {self.path}:{self.line}{how}"
        )


@register
class LockOrderInversionRule(ProjectRule):
    """The static lock-acquisition graph must stay acyclic."""

    id = "lock-order-inversion"
    title = "cyclic lock-acquisition order (potential deadlock)"

    def applies_to(self, path: str) -> bool:
        return _flow_scoped(path)

    def check_project(self, project: Project) -> Iterator[Finding]:
        model = build_model(project)
        reentrant = {
            (info.cls, info.attr): info.reentrant
            for table in model.locks.values()
            for info in table.values()
        }
        # Transitive acquire sets per function (what running it may lock).
        acquires: Dict[str, Set[LockId]] = {}
        for acq in model.acquisitions:
            acquires.setdefault(acq.func, set()).add(acq.lock)
        for _ in range(_MAX_ROUNDS):
            changed = False
            for qualname in sorted(model.call_sites):
                for site in model.call_sites[qualname]:
                    if site.resolved is None:
                        continue
                    callee = project.functions.get(site.resolved)
                    if callee is None or callee.is_async:
                        continue
                    extra = acquires.get(site.resolved, set())
                    current = acquires.setdefault(qualname, set())
                    if not extra <= current:
                        current |= extra
                        changed = True
            if not changed:
                break
        edges: Dict[Tuple[LockId, LockId], _Edge] = {}
        findings: List[Finding] = []
        # Direct nested acquisitions.
        for acq in model.acquisitions:
            for held in acq.held:
                if held == acq.lock:
                    if not reentrant.get(acq.lock, True) and project.is_selected(acq.path):
                        findings.append(Finding(
                            path=acq.path, line=acq.line, col=acq.col,
                            rule=self.id,
                            message=(
                                f"non-reentrant lock {_lock_display(acq.lock)} "
                                f"is re-acquired while already held in "
                                f"{acq.func.rsplit('.', 1)[-1]}; "
                                f"threading.Lock does not reenter - this "
                                f"deadlocks"
                            ),
                        ))
                    continue
                edges.setdefault(
                    (held, acq.lock), _Edge(acq.path, acq.line, via=None)
                )
        # Calls made while holding a lock, into code that acquires more.
        for qualname in sorted(model.call_sites):
            caller = project.functions.get(qualname)
            if caller is None:
                continue
            for site in model.call_sites[qualname]:
                if not site.held or site.resolved is None:
                    continue
                callee = project.functions.get(site.resolved)
                if callee is None or callee.is_async:
                    continue
                for lock in sorted(acquires.get(site.resolved, set())):
                    for held in site.held:
                        if held == lock:
                            if not reentrant.get(lock, True) and project.is_selected(caller.path):
                                findings.append(Finding(
                                    path=caller.path, line=site.node.lineno,
                                    col=site.node.col_offset, rule=self.id,
                                    message=(
                                        f"{caller.display} holds non-reentrant "
                                        f"lock {_lock_display(lock)} and calls "
                                        f"{callee.display}, which acquires it "
                                        f"again; this deadlocks"
                                    ),
                                ))
                            continue
                        edges.setdefault(
                            (held, lock),
                            _Edge(caller.path, site.node.lineno,
                                  via=callee.display),
                        )
        findings.extend(self._cycle_findings(project, edges))
        seen: Set[Finding] = set()
        for finding in sorted(findings):
            if finding not in seen:
                seen.add(finding)
                yield finding

    def _cycle_findings(
        self, project: Project, edges: Dict[Tuple[LockId, LockId], _Edge]
    ) -> List[Finding]:
        nodes = sorted({lock for pair in edges for lock in pair})
        reach: Dict[LockId, Set[LockId]] = {node: set() for node in nodes}
        for src, dst in edges:
            reach[src].add(dst)
        for mid in nodes:  # tiny graphs: closure by repeated expansion
            for src in nodes:
                if mid in reach[src]:
                    reach[src] |= reach[mid]
        grouped: Set[FrozenSet[LockId]] = set()
        for src in nodes:
            component = frozenset(
                {src}
                | {dst for dst in reach[src] if src in reach.get(dst, set())}
            )
            if len(component) > 1:
                grouped.add(component)
        findings: List[Finding] = []
        for component in sorted(grouped, key=lambda c: sorted(c)):
            inner = sorted(
                (pair, edge) for pair, edge in edges.items()
                if pair[0] in component and pair[1] in component
            )
            if not inner:
                continue
            anchor = min((edge for _, edge in inner),
                         key=lambda edge: (edge.path, edge.line))
            if not project.is_selected(anchor.path):
                continue
            names = ", ".join(sorted(_lock_display(lock) for lock in component))
            detail = "; ".join(
                edge.describe(pair[0], pair[1]) for pair, edge in inner
            )
            findings.append(Finding(
                path=anchor.path, line=anchor.line, col=0, rule=self.id,
                message=(
                    f"lock-order cycle between {names}: {detail}; two threads "
                    f"taking these locks in opposite orders deadlock"
                ),
            ))
        return findings


def _classify_blocking(
    module: Optional[ModuleInfo],
    locks: Mapping[str, LockInfo],
    node: ast.Call,
) -> Optional[str]:
    """Human label when the call blocks the calling thread, else None."""
    if module is not None:
        dotted = _dotted_call(module, node.func)
        if dotted is not None:
            if dotted in _BLOCKING_DOTTED or dotted.startswith("subprocess."):
                return f"{dotted}()"
    if (
        isinstance(node.func, ast.Name)
        and node.func.id == "open"
        and (module is None or "open" not in module.imports)
    ):
        return "open()"
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "acquire"
        and isinstance(node.func.value, ast.Attribute)
        and isinstance(node.func.value.value, ast.Name)
        and node.func.value.value.id == "self"
        and node.func.value.attr in locks
    ):
        return f"self.{node.func.value.attr}.acquire()"
    return None


def _blocking_summaries(
    project: Project, model: ConcurrencyModel
) -> Dict[str, BlockedInfo]:
    """For every sync function: the first blocking operation it can hit,
    directly or through sync callees, with the chain down to it."""
    blocked: Dict[str, BlockedInfo] = {}
    acquisitions_by_func: Dict[str, List[Acquisition]] = {}
    for acq in model.acquisitions:
        acquisitions_by_func.setdefault(acq.func, []).append(acq)
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        if info.is_async:
            continue
        module = project.modules.get(info.module)
        locks = model.locks_of(info.class_qualname)
        candidates: List[Tuple[int, str]] = []
        for site in model.call_sites.get(qualname, []):
            op = _classify_blocking(module, locks, site.node)
            if op is not None:
                candidates.append((site.node.lineno, op))
        for acq in acquisitions_by_func.get(qualname, []):
            candidates.append((acq.line, f"acquiring {_lock_display(acq.lock)}"))
        if candidates:
            line, op = min(candidates)
            blocked[qualname] = BlockedInfo(
                op=op, path=info.path, line=line, chain=()
            )
    for _ in range(_MAX_ROUNDS):
        changed = False
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if info.is_async or qualname in blocked:
                continue
            for site in model.call_sites.get(qualname, []):
                if site.resolved is None or site.resolved not in blocked:
                    continue
                callee = project.functions.get(site.resolved)
                if callee is None or callee.is_async:
                    continue
                inner = blocked[site.resolved]
                blocked[qualname] = BlockedInfo(
                    op=inner.op, path=inner.path, line=inner.line,
                    chain=(callee.display,) + inner.chain,
                )
                changed = True
                break
        if not changed:
            break
    return blocked


@register
class BlockingInAsyncRule(ProjectRule):
    """``async def`` bodies must not block the event loop; thread code
    must not touch asyncio primitives."""

    id = "blocking-in-async"
    title = "blocking operation reachable from an async body"

    def applies_to(self, path: str) -> bool:
        return _flow_scoped(path)

    def check_project(self, project: Project) -> Iterator[Finding]:
        model = build_model(project)
        blocked = _blocking_summaries(project, model)
        findings: List[Finding] = []
        for qualname in sorted(project.functions):
            info = project.functions[qualname]
            if not info.is_async or not project.is_selected(info.path):
                continue
            self._scan_async_body(project, model, blocked, info, findings)
        findings.extend(self._thread_touches_asyncio(project, model))
        seen: Set[Finding] = set()
        for finding in sorted(findings):
            if finding not in seen:
                seen.add(finding)
                yield finding

    def _scan_async_body(
        self,
        project: Project,
        model: ConcurrencyModel,
        blocked: Dict[str, BlockedInfo],
        info: FunctionInfo,
        findings: List[Finding],
    ) -> None:
        module = project.modules.get(info.module)
        locks = model.locks_of(info.class_qualname)

        def visit(node: ast.AST) -> None:
            if isinstance(node, ast.Lambda):
                return  # deferred; runs wherever the callback fires
            if isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                        and expr.attr in locks
                    ):
                        findings.append(Finding(
                            path=info.path, line=expr.lineno,
                            col=expr.col_offset, rule=self.id,
                            message=(
                                f"async {info.display} acquires threading "
                                f"lock self.{expr.attr} on the event loop; "
                                f"move the critical section to "
                                f"asyncio.to_thread or use asyncio.Lock"
                            ),
                        ))
            if isinstance(node, ast.Call):
                dotted = (
                    _dotted_call(module, node.func)
                    if module is not None else None
                )
                if dotted is not None and dotted.startswith("asyncio."):
                    for arg in node.args:
                        visit(arg)
                    for keyword in node.keywords:
                        visit(keyword.value)
                    return
                op = _classify_blocking(module, locks, node)
                if op is not None:
                    findings.append(Finding(
                        path=info.path, line=node.lineno,
                        col=node.col_offset, rule=self.id,
                        message=(
                            f"blocking call {op} inside async {info.display} "
                            f"runs on the event loop; route it through "
                            f"asyncio.to_thread"
                        ),
                    ))
                else:
                    resolved = project.resolve_call(info, node.func)
                    if (
                        resolved is not None
                        and not resolved.is_async
                        and resolved.qualname in blocked
                    ):
                        inner = blocked[resolved.qualname]
                        chain = " -> ".join((resolved.display,) + inner.chain)
                        findings.append(Finding(
                            path=info.path, line=node.lineno,
                            col=node.col_offset, rule=self.id,
                            message=(
                                f"async {info.display} reaches blocking "
                                f"{inner.op} ({inner.path}:{inner.line}) via "
                                f"{chain}; route the call through "
                                f"asyncio.to_thread"
                            ),
                        ))
            for child in ast.iter_child_nodes(node):
                visit(child)

        for stmt in info.node.body:
            visit(stmt)

    def _thread_touches_asyncio(
        self, project: Project, model: ConcurrencyModel
    ) -> List[Finding]:
        findings: List[Finding] = []
        for qualname in sorted(model.reachable):
            info = project.functions.get(qualname)
            if info is None or not project.is_selected(info.path):
                continue
            module = project.modules.get(info.module)
            if module is None:
                continue
            chain = model.reachable[qualname]
            for site in model.call_sites.get(qualname, []):
                dotted = _dotted_call(module, site.node.func)
                if (
                    dotted is None
                    or not dotted.startswith("asyncio.")
                    or dotted in _THREADSAFE_ASYNCIO
                ):
                    continue
                findings.append(Finding(
                    path=info.path, line=site.node.lineno,
                    col=site.node.col_offset, rule=self.id,
                    message=(
                        f"{dotted}() is called from thread context "
                        f"({chain.describe()}); asyncio objects are not "
                        f"thread-safe - marshal through "
                        f"loop.call_soon_threadsafe instead"
                    ),
                ))
        return findings
