"""Rule engine of the determinism/contract checker.

A :class:`LintRule` inspects one parsed module (:class:`ModuleSource`)
and yields :class:`Finding` objects.  Rules self-register into a module
registry via the :func:`register` decorator, so adding a rule is: write
the class, register it, add a firing + waiver fixture test.

Waivers are inline comments::

    risky_call()  # repro-lint: allow[broad-except]
    # repro-lint: allow[unordered-iteration] justification here
    for item in some_set:
        ...

A waiver on line ``L`` suppresses matching findings on ``L`` and ``L+1``
(so a standalone comment line waives the statement below it).  Several
rules may be waived at once: ``allow[rule-a,rule-b]``.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.flow.errors import InputValidationError

if TYPE_CHECKING:
    from repro.lintcheck.callgraph import Project

#: rule id reserved for files the parser rejects (not waivable by rules)
SYNTAX_RULE = "syntax-error"

_WAIVER_RE = re.compile(r"#\s*repro-lint:\s*allow\[([A-Za-z0-9_\-, ]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def parse_waivers(text: str) -> Dict[int, FrozenSet[str]]:
    """Line number -> rule ids waived *on that line* (1-based).

    Only the comment's own line is recorded here; the engine extends each
    waiver to the following line when filtering findings.
    """
    waivers: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _WAIVER_RE.search(line)
        if match:
            names = frozenset(
                name.strip() for name in match.group(1).split(",") if name.strip()
            )
            if names:
                waivers[lineno] = waivers.get(lineno, frozenset()) | names
    return waivers


def _decorator_waivers(
    tree: ast.Module, waivers: Dict[int, FrozenSet[str]]
) -> Dict[int, FrozenSet[str]]:
    """Extend waivers across decorator stacks.

    A finding on a decorated ``def``/``class`` is anchored at the
    statement line, but the natural place for the waiver comment is next
    to (or just above) the decorators.  Map the union of waivers found on
    any decorator line — or on the line directly above the first
    decorator — onto the statement line itself.
    """
    if not waivers:
        return {}
    extended: Dict[int, FrozenSet[str]] = {}
    for node in ast.walk(tree):
        decorators = getattr(node, "decorator_list", None)
        if not decorators:
            continue
        names: FrozenSet[str] = frozenset()
        first_line = min(dec.lineno for dec in decorators)
        for lineno in sorted({dec.lineno for dec in decorators} | {first_line - 1}):
            names = names | waivers.get(lineno, frozenset())
        if names:
            statement_line = getattr(node, "lineno", None)
            if isinstance(statement_line, int):
                extended[statement_line] = (
                    extended.get(statement_line, frozenset()) | names
                )
    return extended


@dataclass
class ModuleSource:
    """One parsed module handed to every rule."""

    path: str
    text: str
    tree: ast.Module
    waivers: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: statement line -> rules waived via its decorator lines
    decorator_waivers: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def from_text(cls, text: str, path: str = "<string>") -> "ModuleSource":
        tree = ast.parse(text, filename=path)
        waivers = parse_waivers(text)
        return cls(
            path=path,
            text=text,
            tree=tree,
            waivers=waivers,
            decorator_waivers=_decorator_waivers(tree, waivers),
        )

    @classmethod
    def from_file(cls, path: str) -> "ModuleSource":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_text(fh.read(), path=path)

    def is_waived(self, rule_id: str, line: int) -> bool:
        """True when a waiver on ``line``, the line above, or a decorator
        of the statement starting at ``line`` names the rule."""
        for waiver_line in (line, line - 1):
            if rule_id in self.waivers.get(waiver_line, frozenset()):
                return True
        return rule_id in self.decorator_waivers.get(line, frozenset())


class LintRule:
    """Base class: subclass, set :attr:`id`/:attr:`title`, implement
    :meth:`check`, and decorate with :func:`register`."""

    id: str = ""
    title: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on the module at ``path`` (POSIX-ish
        normalized).  Default: everywhere."""
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


class ProjectRule(LintRule):
    """A rule that sees the whole project, not one module at a time.

    Subclasses implement :meth:`check_project` against the call-graph
    :class:`~repro.lintcheck.callgraph.Project` built from the linted
    files; the engine runs them once per ``check_paths`` call and applies
    the usual waiver/`applies_to` filtering to their findings.
    """

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, LintRule] = {}


def register(rule_cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding one rule instance to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def _ensure_builtin_rules() -> None:
    if not _REGISTRY:
        # registration side effects
        import repro.lintcheck.cachesafety  # noqa: F401
        import repro.lintcheck.concurrency  # noqa: F401
        import repro.lintcheck.numerics  # noqa: F401
        import repro.lintcheck.rules  # noqa: F401
        import repro.lintcheck.taint  # noqa: F401
        import repro.lintcheck.units  # noqa: F401


def iter_rules() -> List[LintRule]:
    """Every registered rule, ordered by id (stable output ordering)."""
    _ensure_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rules_for(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[LintRule]:
    """The rule subset for a run; unknown ids are a validation error."""
    rules = iter_rules()
    known = {rule.id for rule in rules}
    for name in list(select or []) + list(ignore or []):
        if name not in known:
            raise InputValidationError(
                "rule", f"unknown rule {name!r}; known: {sorted(known)}"
            )
    if select:
        rules = [rule for rule in rules if rule.id in set(select)]
    if ignore:
        rules = [rule for rule in rules if rule.id not in set(ignore)]
    return rules


def _normalize(path: str) -> str:
    return path.replace(os.sep, "/")


def check_source(
    text: str,
    path: str = "<string>",
    rules: Optional[Sequence[LintRule]] = None,
    apply_waivers: bool = True,
) -> List[Finding]:
    """Run the rules over one module's source text."""
    norm = _normalize(path)
    try:
        module = ModuleSource.from_text(text, path=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 1, (exc.offset or 1) - 1,
                        SYNTAX_RULE, f"cannot parse: {exc.msg}")]
    findings: List[Finding] = []
    for rule in rules if rules is not None else iter_rules():
        if not rule.applies_to(norm):
            continue
        for found in rule.check(module):
            if apply_waivers and module.is_waived(found.rule, found.line):
                continue
            findings.append(found)
    return sorted(findings)


def _collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated .py file list.

    Explicit file arguments are linted whatever their suffix; directory
    walks pick up ``*.py`` only.  A path that exists but yields nothing,
    or does not exist at all, is a validation error — a typo must not
    silently lint nothing and exit 0.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            matched = False
            for root, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
                        matched = True
            if not matched:
                raise InputValidationError(
                    "paths", f"directory {path!r} contains no Python files"
                )
        else:
            raise InputValidationError("paths", f"no such file or directory: {path!r}")
    seen: Dict[str, None] = {}
    for name in files:
        seen.setdefault(name, None)
    return list(seen)


def collect_files(
    paths: Sequence[str], exclude: Optional[Iterable[str]] = None
) -> List[str]:
    """The exact file list a ``check_paths`` run with the same arguments
    would lint (public so the CLI can build the call-graph project for
    ``--write-stage-fingerprints`` over the same set)."""
    excludes = [_normalize(pattern) for pattern in (exclude or [])]
    collected = _collect_files(paths)
    selected = [
        file_path for file_path in collected
        if not any(pattern in _normalize(file_path) for pattern in excludes)
    ]
    if collected and not selected:
        raise InputValidationError(
            "exclude", "the exclude patterns dropped every collected file; "
            "a lint run that checks nothing must not pass silently"
        )
    return selected


def _lint_file_chunk(
    payload: Tuple[Tuple[FrozenSet[str], bool], List[str]],
) -> List[List[Finding]]:
    """Module-level (picklable) ``--jobs`` worker: lint a chunk of files
    with the registry rules named by id, one findings list per file."""
    (rule_ids, apply_waivers), chunk = payload
    rules = [rule for rule in iter_rules() if rule.id in rule_ids]
    out: List[List[Finding]] = []
    for file_path in chunk:
        with open(file_path, "r", encoding="utf-8") as fh:
            text = fh.read()
        out.append(
            check_source(text, path=file_path, rules=rules,
                         apply_waivers=apply_waivers)
        )
    return out


def _check_modules(
    files: Sequence[str],
    rules: Sequence[LintRule],
    apply_waivers: bool,
    jobs: int,
) -> List[Finding]:
    """Per-module rule phase, optionally fanned out over processes.

    Parallel dispatch requires every rule to be the registered instance
    of its id (so workers can rebuild the rule set from the registry);
    ad-hoc rule objects fall back to the serial path.  Output is
    identical either way — one findings list per file, in file order.
    """
    _ensure_builtin_rules()
    registry_backed = all(_REGISTRY.get(rule.id) is rule for rule in rules)
    if jobs > 1 and len(files) > 1 and registry_backed:
        from repro.flow.parallel import ParallelExecutor

        executor = ParallelExecutor.from_jobs(jobs)
        rule_ids = frozenset(rule.id for rule in rules)
        per_file = executor.map_chunks(
            _lint_file_chunk, (rule_ids, apply_waivers), list(files)
        )
        return [finding for file_findings in per_file for finding in file_findings]
    findings: List[Finding] = []
    for file_path in files:
        with open(file_path, "r", encoding="utf-8") as fh:
            text = fh.read()
        findings.extend(
            check_source(text, path=file_path, rules=rules,
                         apply_waivers=apply_waivers)
        )
    return findings


def _check_project(
    files: Sequence[str],
    rules: Sequence["ProjectRule"],
    apply_waivers: bool,
    stage_fingerprints: Optional[str],
) -> List[Finding]:
    """Whole-program rule phase over the call-graph project."""
    from repro.lintcheck.callgraph import Project

    project = Project.from_files(files, stage_fingerprints_path=stage_fingerprints)
    sources: Dict[str, Optional[ModuleSource]] = {}
    findings: List[Finding] = []
    for rule in rules:
        for found in rule.check_project(project):
            if not rule.applies_to(_normalize(found.path)):
                continue
            if apply_waivers:
                module = _module_source_cached(found.path, sources)
                if module is not None and module.is_waived(found.rule, found.line):
                    continue
            findings.append(found)
    return findings


def _module_source_cached(
    path: str, cache: Dict[str, Optional[ModuleSource]]
) -> Optional[ModuleSource]:
    if path not in cache:
        try:
            cache[path] = ModuleSource.from_file(path)
        except (OSError, SyntaxError, ValueError):
            cache[path] = None
    return cache[path]


def check_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[LintRule]] = None,
    apply_waivers: bool = True,
    exclude: Optional[Iterable[str]] = None,
    jobs: int = 1,
    stage_fingerprints: Optional[str] = None,
) -> List[Finding]:
    """Lint files and directory trees; findings sorted by (path, line).

    ``exclude`` drops any collected file whose normalized path contains
    one of the given substrings (e.g. the checker's own deliberately
    violating fixture corpus).  ``jobs`` fans the per-module rules out
    over worker processes (serial fallback below 2); the whole-program
    :class:`ProjectRule` phase always runs in-process, after the module
    phase, and ``stage_fingerprints`` names the checked-in fingerprint
    file the ``stale-version`` rule compares against.
    """
    selected = collect_files(paths, exclude=exclude)
    active: Sequence[LintRule] = list(rules) if rules is not None else iter_rules()
    module_rules = [rule for rule in active if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in active if isinstance(rule, ProjectRule)]
    findings = _check_modules(selected, module_rules, apply_waivers, jobs)
    if project_rules:
        findings.extend(
            _check_project(selected, project_rules, apply_waivers,
                           stage_fingerprints)
        )
    return sorted(findings)
