"""Output formats and the findings baseline for ``repro lint``.

``text`` is the human-facing default, ``json`` a stable machine shape,
``sarif`` the minimal SARIF 2.1.0 document GitHub code scanning ingests
(runs → tool.driver.rules + results with ruleId/message/locations).

The baseline file grandfathers existing findings so CI only fails on
*new* ones: it stores a multiset of ``(path, rule, message)`` triples —
deliberately no line numbers, so unrelated edits that shift a
grandfathered finding up or down do not resurrect it.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import IO, Dict, List, Optional, Sequence, Tuple

from repro.flow.errors import InputValidationError
from repro.lintcheck.core import Finding, LintRule

#: default path of the committed baseline file
BASELINE_FILE = ".repro-lint-baseline.json"

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"
TOOL_NAME = "repro-lint"


def render_text(findings: Sequence[Finding], out: IO[str]) -> None:
    for finding in findings:
        print(finding.render(), file=out)


def render_json(findings: Sequence[Finding], out: IO[str]) -> None:
    payload = {
        "version": 1,
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def _posix(path: str) -> str:
    return path.replace("\\", "/")


def render_sarif(
    findings: Sequence[Finding],
    out: IO[str],
    rules: Optional[Sequence[LintRule]] = None,
) -> None:
    rule_ids = sorted(
        {finding.rule for finding in findings}
        | {rule.id for rule in (rules or [])}
    )
    titles = {rule.id: rule.title for rule in (rules or [])}
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": titles.get(rule_id, rule_id)
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": finding.rule,
                        "level": "error",
                        "message": {"text": finding.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": _posix(finding.path),
                                    },
                                    "region": {
                                        "startLine": finding.line,
                                        "startColumn": finding.col + 1,
                                    },
                                }
                            }
                        ],
                    }
                    for finding in findings
                ],
            }
        ],
    }
    json.dump(document, out, indent=2, sort_keys=True)
    out.write("\n")


FORMATS = ("text", "json", "sarif")


def render(
    fmt: str,
    findings: Sequence[Finding],
    out: IO[str],
    rules: Optional[Sequence[LintRule]] = None,
) -> None:
    if fmt == "text":
        render_text(findings, out)
    elif fmt == "json":
        render_json(findings, out)
    elif fmt == "sarif":
        render_sarif(findings, out, rules=rules)
    else:
        raise InputValidationError(
            "format", f"unknown format {fmt!r}; known: {list(FORMATS)}"
        )


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

_BaselineKey = Tuple[str, str, str]


def _baseline_key(finding: Finding) -> _BaselineKey:
    return (_posix(finding.path), finding.rule, finding.message)


def write_baseline(findings: Sequence[Finding], path: str) -> int:
    """Record the given findings as grandfathered; returns the count."""
    entries = [
        {"path": _posix(finding.path), "rule": finding.rule,
         "message": finding.message}
        for finding in sorted(findings)
    ]
    payload = {
        "comment": (
            "grandfathered repro-lint findings; regenerate with "
            "`repro lint --write-baseline` after deliberate cleanups"
        ),
        "version": 1,
        "findings": entries,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)


def load_baseline(path: str) -> Counter:
    """Multiset of grandfathered (path, rule, message) triples."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise InputValidationError(
            "baseline", f"cannot read baseline {path!r}: {exc}"
        ) from exc
    except ValueError as exc:
        raise InputValidationError(
            "baseline", f"baseline {path!r} is not valid JSON: {exc}"
        ) from exc
    entries = payload.get("findings") if isinstance(payload, dict) else None
    if not isinstance(entries, list):
        raise InputValidationError(
            "baseline", f"baseline {path!r} has no 'findings' list"
        )
    keys: Counter = Counter()
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        path_value = entry.get("path")
        rule_value = entry.get("rule")
        message_value = entry.get("message")
        if (
            isinstance(path_value, str)
            and isinstance(rule_value, str)
            and isinstance(message_value, str)
        ):
            keys[(path_value, rule_value, message_value)] += 1
    return keys


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], int]:
    """Drop findings the baseline grandfathers (multiset semantics: a
    baseline entry absorbs at most as many findings as it was recorded
    with).  Returns (kept findings, suppressed count)."""
    budget: Dict[_BaselineKey, int] = dict(baseline)
    kept: List[Finding] = []
    suppressed = 0
    for finding in sorted(findings):
        key = _baseline_key(finding)
        remaining = budget.get(key, 0)
        if remaining > 0:
            budget[key] = remaining - 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
