"""lcsan — a runtime lock sanitizer for the flow's concurrency tests.

The static rules in :mod:`repro.lintcheck.concurrency` prove properties
about the code the AST can see; lcsan witnesses the same properties at
runtime.  Tests swap a :class:`SanitizingThreading` proxy in place of a
module's ``threading`` import (see :func:`instrument_modules`), so every
lock the module creates afterwards is a :class:`SanitizedLock` that
reports acquisitions to a shared :class:`LockSanitizer`.  The sanitizer
records, per thread:

* the **acquisition-order graph** — an edge ``A -> B`` whenever ``B`` is
  taken while ``A`` is held.  :meth:`LockSanitizer.inversions` returns
  the lock pairs observed in *both* orders: the dynamic counterpart of
  the ``lock-order-inversion`` rule.
* **async acquisitions** — a sanitized (thread) lock taken while an
  asyncio task is current, the dynamic counterpart of
  ``blocking-in-async``'s with-lock check.
* **held-across-await** — a lock acquired in one asyncio task is still
  held when a different task (or plain thread code) runs on the same
  thread, which can only happen if the holder yielded at an ``await``.
* **blocking-while-held** — :meth:`LockSanitizer.note_blocking` is a
  hook tests patch into blocking primitives (``os.fsync`` et al.); the
  event records which sanitized locks were held across the call.

This module is deliberately pytest-free: the fixture that installs it
lives with the tests.  It has no dependencies beyond the stdlib.
"""

from __future__ import annotations

import asyncio
import os
import sys
import threading
from dataclasses import dataclass, field
from types import ModuleType, TracebackType
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type


def _current_task_label() -> Optional[str]:
    """Name of the running asyncio task, or None off the event loop."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return None
    task = asyncio.current_task()
    if task is None:
        return "<loop>"
    return task.get_name()


def _creation_site() -> str:
    """``file.py:line`` of the frame that called ``Lock()``/``RLock()``,
    skipping lcsan's own frames — the default lock name."""
    depth = 1
    while True:
        try:
            frame = sys._getframe(depth)
        except ValueError:
            return "<lock>"
        if frame.f_globals.get("__name__") != __name__:
            return (f"{os.path.basename(frame.f_code.co_filename)}"
                    f":{frame.f_lineno}")
        depth += 1


@dataclass
class _Held:
    """One entry on a thread's held-lock stack."""
    lock: "SanitizedLock"
    task: Optional[str]  # asyncio task current at acquire time, if any
    count: int = 1       # reentrant acquisitions of the same RLock


class _HeldStacks(threading.local):
    """Per-thread stack of currently held sanitized locks."""

    def __init__(self) -> None:
        self.stack: List[_Held] = []


@dataclass(frozen=True)
class Inversion:
    """A lock pair observed in both acquisition orders."""
    first: str
    second: str
    forward_site: str   # where first -> second was observed
    backward_site: str  # where second -> first was observed

    def describe(self) -> str:
        return (f"{self.first} -> {self.second} at {self.forward_site} "
                f"but {self.second} -> {self.first} at {self.backward_site}")


@dataclass
class LockSanitizer:
    """Collects lock events from every :class:`SanitizedLock` wired to it.

    All event lists are appended under an internal (real) lock, so the
    sanitizer itself is safe to share across the threads it watches.
    """

    order_edges: Dict[Tuple[str, str], str] = field(default_factory=dict)
    async_acquires: List[str] = field(default_factory=list)
    held_across_await: List[str] = field(default_factory=list)
    blocking_while_held: List[str] = field(default_factory=list)
    _guard: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False)
    _stacks: _HeldStacks = field(
        default_factory=_HeldStacks, repr=False, compare=False)

    # -- event intake -------------------------------------------------

    def _on_acquire(self, lock: "SanitizedLock") -> None:
        stack = self._stacks.stack
        self._check_await(stack)
        for rec in stack:
            if rec.lock is lock:
                rec.count += 1  # reentrant re-acquire: no new edges
                return
        site = _creation_site()
        task = _current_task_label()
        with self._guard:
            for rec in stack:
                self.order_edges.setdefault(
                    (rec.lock.name, lock.name), site)
            if task is not None:
                self.async_acquires.append(
                    f"{lock.name} acquired in async context "
                    f"({task}) at {site}")
        stack.append(_Held(lock, task))

    def _on_release(self, lock: "SanitizedLock") -> None:
        stack = self._stacks.stack
        self._check_await(stack)
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].lock is lock:
                if stack[index].count > 1:
                    stack[index].count -= 1
                else:
                    del stack[index]
                return
        # Released by a thread that never acquired it (legal for a bare
        # Lock used as a signal): nothing to pop.

    def note_blocking(self, what: str) -> None:
        """Tests patch this into blocking primitives (``os.fsync``,
        ``time.sleep``) to record blocking calls made under a lock."""
        stack = self._stacks.stack
        self._check_await(stack)
        if not stack:
            return
        held = ", ".join(rec.lock.name for rec in stack)
        with self._guard:
            self.blocking_while_held.append(
                f"{what} called while holding [{held}]")

    def _check_await(self, stack: Sequence[_Held]) -> None:
        """Flag locks acquired in one asyncio task but still held while a
        different task (or non-task code) runs on this thread."""
        current = _current_task_label()
        for rec in stack:
            if rec.task is not None and rec.task != current:
                event = (f"{rec.lock.name} acquired in task {rec.task} "
                         f"still held in "
                         f"{current if current is not None else '<thread>'}")
                with self._guard:
                    if event not in self.held_across_await:
                        self.held_across_await.append(event)

    # -- reports ------------------------------------------------------

    def inversions(self) -> List[Inversion]:
        """Lock pairs observed in both orders, each reported once."""
        with self._guard:
            edges = dict(self.order_edges)
        out: List[Inversion] = []
        for (first, second), site in sorted(edges.items()):
            if first >= second:  # report each unordered pair once
                continue
            back = edges.get((second, first))
            if back is not None:
                out.append(Inversion(first, second, site, back))
        return out

    def reset(self) -> None:
        with self._guard:
            self.order_edges.clear()
            self.async_acquires.clear()
            self.held_across_await.clear()
            self.blocking_while_held.clear()


class SanitizedLock:
    """Delegating wrapper around a real ``threading`` lock that reports
    successful acquisitions and releases to a :class:`LockSanitizer`."""

    def __init__(self, inner: Any, sanitizer: LockSanitizer,
                 name: str, reentrant: bool) -> None:
        self._inner = inner
        self._sanitizer = sanitizer
        self.name = name
        self.reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = bool(self._inner.acquire(blocking, timeout))
        if got:
            self._sanitizer._on_acquire(self)
        return got

    def release(self) -> None:
        self._sanitizer._on_release(self)
        self._inner.release()

    def __enter__(self) -> "SanitizedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.release()

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._inner, attr)

    def __repr__(self) -> str:
        kind = "RLock" if self.reentrant else "Lock"
        return f"SanitizedLock({kind} {self.name!r})"


class SanitizingThreading:
    """Drop-in stand-in for the ``threading`` module: ``Lock``/``RLock``
    come back sanitized, everything else passes through untouched."""

    def __init__(self, sanitizer: LockSanitizer) -> None:
        self._sanitizer = sanitizer

    def Lock(self) -> SanitizedLock:  # noqa: N802 - mirrors threading API
        return SanitizedLock(threading.Lock(), self._sanitizer,
                             _creation_site(), reentrant=False)

    def RLock(self) -> SanitizedLock:  # noqa: N802 - mirrors threading API
        return SanitizedLock(threading.RLock(), self._sanitizer,
                             _creation_site(), reentrant=True)

    def Condition(self, lock: Optional[Any] = None) -> threading.Condition:  # noqa: N802
        # Condition pokes at lock internals; hand it the real lock.
        if isinstance(lock, SanitizedLock):
            lock = lock._inner
        return threading.Condition(lock)

    def __getattr__(self, attr: str) -> Any:
        return getattr(threading, attr)


def name_instance_locks(obj: Any, prefix: str) -> None:
    """Rename ``obj``'s sanitized lock attributes ``prefix.attr`` so
    reports read ``FlowContext._lock`` instead of ``context.py:188``."""
    for attr, value in vars(obj).items():
        if isinstance(value, SanitizedLock):
            value.name = f"{prefix}.{attr}"


def instrument_modules(
    sanitizer: LockSanitizer, modules: Sequence[ModuleType],
) -> Callable[[], None]:
    """Point each module's ``threading`` global at a sanitizing proxy.

    Locks the modules create *after* this call are sanitized; module-
    level locks created at import time are untouched.  Returns a
    zero-argument callable that restores the original bindings.
    """
    proxy = SanitizingThreading(sanitizer)
    saved: List[Tuple[ModuleType, Any]] = []
    for module in modules:
        saved.append((module, getattr(module, "threading")))
        module.threading = proxy  # type: ignore[attr-defined]

    def restore() -> None:
        for module, original in saved:
            module.threading = original  # type: ignore[attr-defined]
    return restore
