"""Array-numerics checks over numpy call sites.

Three per-module rules that watch how ndarrays are created and combined:

* ``dtype-drift`` — float32 and float64 values meeting in one
  expression (silent promotion, or silent precision loss on store), and
  complex values leaking somewhere order matters (a comparison or
  ``min``/``max``/``sort``) without an ``abs``/``.real`` first.  The SOCS
  kernels are complex by design; *intensities* must not be.
* ``silent-broadcast`` — elementwise arithmetic between two 1-D arrays
  built with *different* symbolic lengths (``fftfreq(nx)`` vs
  ``fftfreq(ny)``).  numpy either raises at runtime or — worse, when the
  sizes happen to match — quietly pairs unrelated axes; the fix is an
  explicit ``meshgrid``/``outer``/``reshape``.
* ``python-loop-over-ndarray`` — a python-level ``for`` over an ndarray
  (directly, via ``range(len(arr))``, or via ``zip``) in the modules
  where per-gate scaling matters (``timing/mc.py``, ``metrology/``,
  ``variation/``).  Interpreter dispatch per element is what ROADMAP
  item 4 (vectorized MC) exists to remove; new code should not add more.

The dtype lattice is tiny: ``f32``, ``f64``, ``c`` (complex), unknown.
Unknown never reports — only a positively-known f32 meeting a
positively-known f64 (or complex hitting an ordering) fires, so plain
untyped python floats stay silent.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lintcheck.core import Finding, LintRule, ModuleSource, register

F32 = "f32"
F64 = "f64"
CPLX = "c"

Dtype = Optional[str]

#: numpy constructors that default to float64 when no dtype= is given
_F64_DEFAULT_CTORS = frozenset({
    "zeros", "ones", "empty", "full", "linspace", "arange", "zeros_like",
    "ones_like", "full_like", "empty_like", "fftfreq", "rfftfreq",
})
#: numpy transforms that return complex whatever the input
_COMPLEX_CALLS = frozenset({"fft", "ifft", "fft2", "ifft2", "fftn", "ifftn",
                            "rfft", "rfft2", "conj", "conjugate"})
#: calls that strip complex back to real magnitude/parts
_REALIZING_CALLS = frozenset({"abs", "absolute", "real", "imag", "angle",
                              "hypot"})
#: dtype-preserving elementwise/structural calls (first argument rules)
_PRESERVING_CALLS = frozenset({
    "exp", "sqrt", "sin", "cos", "log", "copy", "asarray", "array",
    "ravel", "reshape", "transpose", "flip", "roll", "where", "clip",
    "minimum", "maximum", "sum", "mean", "fftshift", "ifftshift", "outer",
})
#: ordering operations that are undefined/ill-defined on complex values
_ORDERING_CALLS = frozenset({"min", "max", "sorted", "sort", "argmin",
                             "argmax", "median", "percentile", "clip"})

_DTYPE_NAMES: Dict[str, str] = {
    "float32": F32,
    "single": F32,
    "float64": F64,
    "double": F64,
    "float": F64,
    "complex": CPLX,
    "complex64": CPLX,
    "complex128": CPLX,
    "cfloat": CPLX,
}

_LABELS = {F32: "float32", F64: "float64", CPLX: "complex"}


def _dtype_from_expr(node: ast.expr) -> Dtype:
    """The dtype named by a ``dtype=`` argument expression."""
    if isinstance(node, ast.Name):
        return _DTYPE_NAMES.get(node.id)
    if isinstance(node, ast.Attribute):
        return _DTYPE_NAMES.get(node.attr)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _DTYPE_NAMES.get(node.value)
    return None


def _call_simple_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function body plus the module top level, innermost-last."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class _DtypeTracker:
    """One forward pass over a function body, tracking ndarray dtypes."""

    def __init__(self, rule: LintRule, module: ModuleSource) -> None:
        self.rule = rule
        self.module = module
        self.env: Dict[str, Dtype] = {}
        self.findings: List[Finding] = []

    def run(self, scope: ast.AST) -> List[Finding]:
        body = scope.body if hasattr(scope, "body") else []
        for stmt in body:
            self._stmt(stmt)
        return self.findings

    # -- statements ---------------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are visited separately
        if isinstance(stmt, ast.Assign):
            dtype = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, dtype)
        elif isinstance(stmt, ast.AnnAssign):
            dtype = self._eval(stmt.value) if stmt.value is not None else None
            self._bind(stmt.target, dtype)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id)
                self.env[stmt.target.id] = self._combine(stmt, current, value)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
                elif isinstance(child, ast.stmt):
                    self._stmt(child)
                elif isinstance(child, (ast.excepthandler, ast.withitem)):
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.stmt):
                            self._stmt(sub)
                        elif isinstance(sub, ast.expr):
                            self._eval(sub)

    def _bind(self, target: ast.expr, dtype: Dtype) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = dtype
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, dtype)

    # -- expressions --------------------------------------------------------

    def _eval(self, expr: ast.expr) -> Dtype:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, complex):
                return CPLX
            return None  # python floats adapt to either precision
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._eval(expr.value)
            if expr.attr in ("real", "imag"):
                return F64 if base == CPLX else base
            if expr.attr == "T":
                return base
            return None
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.BinOp):
            left = self._eval(expr.left)
            right = self._eval(expr.right)
            if isinstance(expr.op, ast.Pow) and right is None:
                return left  # x ** 2 keeps x's dtype
            return self._combine(expr, left, right)
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.Compare):
            dtypes = [self._eval(expr.left)]
            dtypes.extend(self._eval(cmp) for cmp in expr.comparators)
            simple_ops = (ast.Is, ast.IsNot, ast.In, ast.NotIn, ast.Eq, ast.NotEq)
            ordered = any(not isinstance(op, simple_ops) for op in expr.ops)
            if ordered and CPLX in dtypes:
                self._report(expr, "ordering comparison on a complex value; "
                             "take np.abs()/.real first — complex has no "
                             "order and the magnitude is almost always what "
                             "is meant")
            return None
        if isinstance(expr, ast.Subscript):
            self._eval(expr.slice)
            return self._eval(expr.value)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            left = self._eval(expr.body)
            right = self._eval(expr.orelse)
            return left if left == right else None
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            dtypes = {self._eval(element) for element in expr.elts}
            return dtypes.pop() if len(dtypes) == 1 else None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in expr.generators:
                self._eval(gen.iter)
            return None
        if isinstance(expr, ast.NamedExpr):
            dtype = self._eval(expr.value)
            self._bind(expr.target, dtype)
            return dtype
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._eval(child)
        return None

    def _eval_call(self, call: ast.Call) -> Dtype:
        arg_dtypes = [self._eval(arg) for arg in call.args]
        explicit: Dtype = None
        for keyword in call.keywords:
            value_dtype = self._eval(keyword.value)
            if keyword.arg == "dtype":
                explicit = _dtype_from_expr(keyword.value)
            elif keyword.arg is None and value_dtype is not None:
                arg_dtypes.append(value_dtype)
        name = _call_simple_name(call)
        if name == "astype" or name == "view":
            target = None
            if call.args:
                target = _dtype_from_expr(call.args[0])
            return target if target is not None else explicit
        if explicit is not None and name in _F64_DEFAULT_CTORS | {"asarray", "array"}:
            return explicit
        if name in _COMPLEX_CALLS:
            return CPLX
        if name in _REALIZING_CALLS:
            first = arg_dtypes[0] if arg_dtypes else None
            return F64 if first in (CPLX, F64, None) else first
        if name in _ORDERING_CALLS and CPLX in arg_dtypes:
            self._report(call, f"{name}() applied to a complex value; "
                         "reduce with np.abs()/.real first — ordering is "
                         "undefined for complex dtypes")
            return None
        if name in _F64_DEFAULT_CTORS:
            return F64
        if name in _PRESERVING_CALLS:
            first = arg_dtypes[0] if arg_dtypes else None
            if name == "exp" and first == CPLX:
                return CPLX
            known = [d for d in arg_dtypes if d is not None]
            if len(set(known)) == 1:
                return known[0]
            if len(set(known)) > 1:
                return self._combine(call, known[0], known[1])
            return first
        return None

    def _combine(self, node: ast.AST, left: Dtype, right: Dtype) -> Dtype:
        if left is None:
            return right
        if right is None:
            return left
        if left == right:
            return left
        if CPLX in (left, right):
            return CPLX
        # the only remaining mix is f32 with f64 — the drift we hunt
        self._report(node, f"{_LABELS[left]} meets {_LABELS[right]} in one "
                     "expression; numpy promotes silently and the float32 "
                     "side loses its meaning — pick one dtype (astype) at "
                     "the boundary")
        return F64

    def _report(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.finding(self.module, node, message))


@register
class DtypeDriftRule(LintRule):
    """float32/float64 mixing and complex leaking past ``abs``."""

    id = "dtype-drift"
    title = "no silent float32/float64 mixing or ordered complex values"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for scope in _functions(module.tree):
            tracker = _DtypeTracker(self, module)
            yield from tracker.run(scope)


# ---------------------------------------------------------------------------
# silent-broadcast
# ---------------------------------------------------------------------------

#: constructors whose scalar size argument names the 1-D axis length
_AXIS_CTORS = frozenset({"fftfreq", "rfftfreq", "arange", "zeros", "ones",
                         "empty"})


def _axis_token(call: ast.Call) -> Optional[str]:
    """Symbolic length of a 1-D constructor call (``fftfreq(nx)`` → nx)."""
    name = _call_simple_name(call)
    if name in _AXIS_CTORS and call.args:
        size = call.args[0]
    elif name == "linspace" and len(call.args) >= 3:
        size = call.args[2]
    else:
        return None
    if isinstance(size, ast.Name):
        return size.id
    if isinstance(size, ast.Attribute):
        return ast.unparse(size)
    return None


class _AxisTracker:
    """Track 1-D arrays with a known symbolic length inside one scope."""

    def __init__(self, rule: LintRule, module: ModuleSource) -> None:
        self.rule = rule
        self.module = module
        self.env: Dict[str, str] = {}
        self.findings: List[Finding] = []

    def run(self, scope: ast.AST) -> List[Finding]:
        for stmt in getattr(scope, "body", []):
            self._stmt(stmt)
        return self.findings

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            token = self._eval(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if token is not None:
                        self.env[target.id] = token
                    else:
                        self.env.pop(target.id, None)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    # meshgrid unpacking (2-D results) clears the axis tags
                    for element in target.elts:
                        if isinstance(element, ast.Name):
                            self.env.pop(element.id, None)
        else:
            for child in ast.walk(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
                    break  # _eval walks its own subtree via BinOp recursion
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._stmt(child)

    def _eval(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Call):
            for arg in expr.args:
                self._eval(arg)
            for keyword in expr.keywords:
                self._eval(keyword.value)
            return _axis_token(expr)
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
        ):
            left = self._eval(expr.left)
            right = self._eval(expr.right)
            if left is not None and right is not None and left != right:
                self.findings.append(self.rule.finding(
                    self.module, expr,
                    f"elementwise op between 1-D arrays of independent "
                    f"lengths ({left} vs {right}); this broadcasts or "
                    "errors silently — build the 2-D grid explicitly "
                    "(np.meshgrid / np.outer / reshape)",
                ))
                return None
            return left if left == right else None
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._eval(child)
        return None


@register
class SilentBroadcastRule(LintRule):
    """Mismatched 1-D FFT/meshgrid axes combined elementwise."""

    id = "silent-broadcast"
    title = "no elementwise ops across independent 1-D axis lengths"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for scope in _functions(module.tree):
            tracker = _AxisTracker(self, module)
            yield from tracker.run(scope)


# ---------------------------------------------------------------------------
# python-loop-over-ndarray
# ---------------------------------------------------------------------------

#: numpy calls that produce an ndarray worth vectorizing over
_ARRAY_CTORS = frozenset({
    "zeros", "ones", "empty", "full", "linspace", "arange", "asarray",
    "array", "fftfreq", "rfftfreq", "meshgrid", "concatenate", "stack",
})

_NDARRAY_ANNOTATIONS = frozenset({"ndarray", "np.ndarray", "numpy.ndarray"})


def _annotation_is_ndarray(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _NDARRAY_ANNOTATIONS
    try:
        return ast.unparse(node) in _NDARRAY_ANNOTATIONS
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return False


class _NdarrayNames(ast.NodeVisitor):
    """Names bound to ndarrays inside one function (params + np.* calls)."""

    def __init__(self, func: ast.AST) -> None:
        self.names: Set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if _annotation_is_ndarray(arg.annotation):
                    self.names.add(arg.arg)
        for stmt in getattr(func, "body", []):
            self._scan(stmt)

    def _scan(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            if _call_simple_name(stmt.value) in _ARRAY_CTORS:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.names.add(target.id)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan(child)


def _loop_over_ndarray(iter_expr: ast.expr, names: Set[str]) -> Optional[str]:
    """Which ndarray (if any) a ``for``'s iterable walks element-wise."""
    if isinstance(iter_expr, ast.Name) and iter_expr.id in names:
        return iter_expr.id
    if isinstance(iter_expr, ast.Call):
        name = _call_simple_name(iter_expr)
        if name in ("range", "enumerate", "zip", "reversed", "map"):
            for node in ast.walk(iter_expr):
                if isinstance(node, ast.Name) and node.id in names:
                    # range(len(arr)), zip(a, b), enumerate(arr), ...
                    return node.id
        if name in _ARRAY_CTORS:
            return name + "(...)"
    return None


@register
class PythonLoopOverNdarrayRule(LintRule):
    """Per-element python loops where the per-gate scale lives."""

    id = "python-loop-over-ndarray"
    title = "vectorize python-level loops over ndarrays"

    _SCOPES = ("repro/timing/mc.py", "repro/metrology/", "repro/variation/")

    def applies_to(self, path: str) -> bool:
        return any(fragment in path for fragment in self._SCOPES)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for scope in _functions(module.tree):
            names = _NdarrayNames(scope).names
            if not names:
                continue
            for stmt in ast.walk(scope):
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if stmt is not scope:
                        continue
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    hit = _loop_over_ndarray(stmt.iter, names)
                    if hit is not None:
                        yield self.finding(
                            module, stmt,
                            f"python-level loop over ndarray {hit!r}; "
                            "per-element interpreter dispatch dominates at "
                            "per-gate scale — replace with vectorized numpy "
                            "ops (see ROADMAP item 4)",
                        )
                elif isinstance(stmt, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp, ast.DictComp)):
                    for gen in stmt.generators:
                        hit = _loop_over_ndarray(gen.iter, names)
                        if hit is not None:
                            yield self.finding(
                                module, stmt,
                                f"comprehension over ndarray {hit!r}; "
                                "replace with vectorized numpy ops (see "
                                "ROADMAP item 4)",
                            )
