"""The built-in rule set of the determinism/contract checker.

Every rule documents the invariant it protects; scopes follow the
guarantees, not the directory layout for its own sake — e.g. unordered
iteration only corrupts behaviour where order reaches an artifact key,
a journal line, or an export stream, so that rule pins ``repro/flow/``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lintcheck.core import Finding, LintRule, ModuleSource, register


def _dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _walk_skipping_functions(nodes: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function bodies
    (a ``raise`` inside a nested def does not re-raise for the handler)."""
    stack: List[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _inside_sorted_call(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    """True when ``node`` sits under the arguments of a ``sorted(...)``
    call — the sort re-establishes a deterministic order downstream."""
    current: Optional[ast.AST] = node
    while current is not None:
        parent = parents.get(current)
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
            and current is not parent.func
        ):
            return True
        current = parent
    return False


# ---------------------------------------------------------------------------
# Rule 1: unseeded-rng
# ---------------------------------------------------------------------------

#: the only sanctioned constructors of randomness; everything else on the
#: ``random`` / ``numpy.random`` modules draws from hidden global state
_RANDOM_ALLOWED = {"Random"}
_NUMPY_RANDOM_ALLOWED = {
    "default_rng", "RandomState", "Generator", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}


@register
class UnseededRngRule(LintRule):
    """All randomness must flow from an explicitly seeded generator.

    Module-level calls (``random.gauss``, ``np.random.normal``,
    ``random.seed``) draw from interpreter-global state that any import
    or test-ordering change silently perturbs — which breaks
    bit-identical resume.  Constructing a generator *without* a seed
    (``random.Random()``, ``default_rng()``) is flagged for the same
    reason.
    """

    id = "unseeded-rng"
    title = "RNG must be an explicit seeded generator"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        random_aliases: Set[str] = set()
        numpy_aliases: Set[str] = set()
        nprandom_aliases: Set[str] = set()
        banned_names: Dict[str, str] = {}
        seeded_ctor_names: Set[str] = set()

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        random_aliases.add(bound)
                    elif alias.name == "numpy":
                        numpy_aliases.add(bound)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            nprandom_aliases.add(alias.asname)
                        else:
                            numpy_aliases.add("numpy")
            elif isinstance(node, ast.ImportFrom) and not node.level:
                if node.module == "random":
                    for alias in node.names:
                        bound = alias.asname or alias.name
                        if alias.name in _RANDOM_ALLOWED:
                            seeded_ctor_names.add(bound)
                        else:
                            banned_names[bound] = f"random.{alias.name}"
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            nprandom_aliases.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        bound = alias.asname or alias.name
                        if alias.name in _NUMPY_RANDOM_ALLOWED:
                            seeded_ctor_names.add(bound)
                        else:
                            banned_names[bound] = f"numpy.random.{alias.name}"

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            label = ".".join(dotted)
            if len(dotted) == 2 and dotted[0] in random_aliases:
                if dotted[1] in _RANDOM_ALLOWED:
                    if not self._has_seed(node):
                        yield self.finding(
                            module, node,
                            f"`{label}()` constructed without a seed; pass an "
                            "explicit seed so reruns are bit-identical",
                        )
                else:
                    yield self.finding(
                        module, node,
                        f"module-level RNG call `{label}` uses hidden global "
                        "state; draw from an explicit `random.Random(seed)`",
                    )
            elif (
                (len(dotted) == 3 and dotted[0] in numpy_aliases
                 and dotted[1] == "random")
                or (len(dotted) == 2 and dotted[0] in nprandom_aliases)
            ):
                attr = dotted[-1]
                if attr in _NUMPY_RANDOM_ALLOWED:
                    if not self._has_seed(node):
                        yield self.finding(
                            module, node,
                            f"`{label}()` constructed without a seed; pass an "
                            "explicit seed so reruns are bit-identical",
                        )
                else:
                    yield self.finding(
                        module, node,
                        f"module-level RNG call `{label}` uses hidden global "
                        "state; draw from `numpy.random.default_rng(seed)`",
                    )
            elif len(dotted) == 1:
                name = dotted[0]
                if name in banned_names:
                    yield self.finding(
                        module, node,
                        f"module-level RNG call `{banned_names[name]}` uses "
                        "hidden global state; draw from an explicit seeded "
                        "generator",
                    )
                elif name in seeded_ctor_names and not self._has_seed(node):
                    yield self.finding(
                        module, node,
                        f"`{name}()` constructed without a seed; pass an "
                        "explicit seed so reruns are bit-identical",
                    )

    @staticmethod
    def _has_seed(call: ast.Call) -> bool:
        if call.args:
            first = call.args[0]
            return not (isinstance(first, ast.Constant) and first.value is None)
        return any(kw.arg == "seed" and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        ) for kw in call.keywords)


# ---------------------------------------------------------------------------
# Rule 2: hash-entropy
# ---------------------------------------------------------------------------

#: dotted calls that differ between two otherwise identical runs
_ENTROPY_DOTTED = {
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("os", "urandom"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
}
_ENTROPY_DATETIME_ATTRS = {"now", "utcnow", "today"}
_ENTROPY_BUILTINS = {"id", "hash"}
#: function names that feed artifact keys by contract even though the
#: ``stable_hash`` call happens in their caller
_KEY_FEEDING_FUNCTIONS = {"config_slice", "fingerprint", "_fingerprint"}


@register
class HashEntropyRule(LintRule):
    """No per-run entropy may reach ``stable_hash`` or artifact keys.

    ``time.time()``, ``datetime.now()``, ``os.urandom()``, ``uuid4()``,
    ``id()`` and the salted builtin ``hash()`` differ between two
    otherwise identical runs; one of them inside a key computation makes
    every cache lookup a miss (or, worse, a false hit after a collision).
    Checked inside any function that calls ``stable_hash`` or is named
    ``config_slice``/``fingerprint``, plus the argument expressions of
    every ``stable_hash(...)`` call.
    """

    id = "hash-entropy"
    title = "no wall-clock/address entropy near stable_hash"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        seen: Set[Tuple[int, int]] = set()
        for scope_node, scope_label in self._key_feeding_scopes(module.tree):
            for found in self._scan(module, scope_node, scope_label):
                key = (found.line, found.col)
                if key not in seen:
                    seen.add(key)
                    yield found

    def _key_feeding_scopes(
        self, tree: ast.Module
    ) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in _KEY_FEEDING_FUNCTIONS or any(
                    self._is_stable_hash_call(child) for child in ast.walk(node)
                ):
                    yield node, f"function {node.name!r}"
            elif self._is_stable_hash_call(node):
                # Covers module-level key computations outside any def.
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    yield arg, "stable_hash argument"

    @staticmethod
    def _is_stable_hash_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = _dotted_name(node.func)
        return bool(dotted) and dotted[-1] == "stable_hash"

    def _scan(
        self, module: ModuleSource, scope: ast.AST, scope_label: str
    ) -> Iterator[Finding]:
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            label = ".".join(dotted)
            entropic = (
                dotted[-2:] in _ENTROPY_DOTTED
                or (len(dotted) == 1 and dotted[0] in _ENTROPY_BUILTINS)
                or (
                    dotted[-1] in _ENTROPY_DATETIME_ATTRS
                    and any(part in ("datetime", "date") for part in dotted[:-1])
                )
            )
            if entropic:
                yield self.finding(
                    module, node,
                    f"`{label}` is per-run entropy inside {scope_label}, which "
                    "feeds stable_hash/artifact keys; derive the value from "
                    "run inputs instead",
                )


# ---------------------------------------------------------------------------
# Rule 3: unordered-iteration
# ---------------------------------------------------------------------------


@register
class UnorderedIterationRule(LintRule):
    """Set iteration in hashing/journaling/export paths needs ``sorted``.

    ``repro/flow/`` turns iteration order into artifact keys, journal
    lines and export streams; iterating a ``set``/``frozenset`` there
    leaks ``PYTHONHASHSEED`` into supposedly content-addressed output.
    Flagged: ``for`` loops and comprehensions whose iterable is a set
    literal, a set/frozenset constructor, a set-typed annotation, or a
    local assigned from one — unless the iteration sits under a
    ``sorted(...)`` call.
    """

    id = "unordered-iteration"
    title = "sort set iteration in hash/journal/export paths"

    def applies_to(self, path: str) -> bool:
        return "repro/flow/" in path or "repro/flow" == path.rstrip("/")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        parents = _parent_map(module.tree)
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(
            node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            set_vars = self._set_origin_locals(scope)
            for node in self._own_nodes(scope):
                iters: List[ast.expr] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.GeneratorExp, ast.DictComp)):
                    iters.extend(gen.iter for gen in node.generators)
                for iterable in iters:
                    if not self._is_set_like(iterable, set_vars):
                        continue
                    if _inside_sorted_call(iterable, parents):
                        continue
                    yield self.finding(
                        module, iterable,
                        "iteration order of a set/frozenset depends on "
                        "PYTHONHASHSEED and poisons hashes/journals/exports; "
                        "wrap the iterable in sorted(...)",
                    )

    def _own_nodes(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk a scope without re-entering nested function scopes (they
        are visited as scopes of their own, with their own locals)."""
        children = (
            scope.body if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
            else [scope]
        )
        for found in _walk_skipping_functions(list(children)):
            yield found

    def _set_origin_locals(self, scope: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in self._own_nodes(scope):
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value, names):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if self._is_set_annotation(node.annotation) or (
                    node.value is not None and self._is_set_expr(node.value, names)
                ):
                    names.add(node.target.id)
        return names

    def _is_set_like(self, node: ast.expr, set_vars: Set[str]) -> bool:
        if isinstance(node, ast.Name):
            return node.id in set_vars
        return self._is_set_expr(node, set_vars)

    def _is_set_expr(self, node: ast.expr, set_vars: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp):
            return (
                self._is_set_like(node.left, set_vars)
                or self._is_set_like(node.right, set_vars)
            )
        return False

    @staticmethod
    def _is_set_annotation(annotation: ast.expr) -> bool:
        target = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        dotted = _dotted_name(target)
        return bool(dotted) and dotted[-1] in (
            "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"
        )


# ---------------------------------------------------------------------------
# Rule 4: stage-contract
# ---------------------------------------------------------------------------


@register
class StageContractRule(LintRule):
    """Every FlowStage subclass declares its cache-key contract statically.

    ``name`` and an integer ``version`` are folded into every artifact
    key; a subclass inheriting them silently shares (or silently
    invalidates) cache entries.  Artifact dicts returned by ``run`` must
    use string-literal keys so the declared artifact names stay
    statically auditable.
    """

    id = "stage-contract"
    title = "FlowStage subclasses declare name + integer version"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(
                (dotted := _dotted_name(base)) and dotted[-1] == "FlowStage"
                for base in node.bases
            ):
                continue
            name_value = self._class_constant(node, "name")
            version_value = self._class_constant(node, "version")
            if not (isinstance(name_value, str) and name_value):
                yield self.finding(
                    module, node,
                    f"stage {node.name!r} must declare a non-empty class-level "
                    "string `name` (it is part of every artifact key)",
                )
            if not (isinstance(version_value, int)
                    and not isinstance(version_value, bool)):
                yield self.finding(
                    module, node,
                    f"stage {node.name!r} must declare a class-level integer "
                    "`version` (bump it when output semantics change, so "
                    "persistent caches recompute instead of serving stale "
                    "artifacts)",
                )
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == "run":
                    yield from self._check_artifact_keys(module, node, item)

    @staticmethod
    def _class_constant(node: ast.ClassDef, attr: str) -> object:
        for item in node.body:
            value: Optional[ast.expr] = None
            if isinstance(item, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == attr for t in item.targets
            ):
                value = item.value
            elif (isinstance(item, ast.AnnAssign)
                  and isinstance(item.target, ast.Name)
                  and item.target.id == attr):
                value = item.value
            if isinstance(value, ast.Constant):
                return value.value
        return None

    def _check_artifact_keys(
        self, module: ModuleSource, cls: ast.ClassDef, run: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in _walk_skipping_functions(list(run.body)):
            if not isinstance(node, ast.Return) or not isinstance(node.value, ast.Dict):
                continue
            for key in node.value.keys:
                if key is None:
                    continue  # dict unpacking merges already-checked dicts
                if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                    yield self.finding(
                        module, key,
                        f"stage {cls.name!r}: artifact keys returned by run() "
                        "must be string literals so the stage's outputs are "
                        "statically auditable",
                    )


# ---------------------------------------------------------------------------
# Rule 5: broad-except
# ---------------------------------------------------------------------------


@register
class BroadExceptRule(LintRule):
    """Broad catches in the flow layer must re-raise or be waived.

    The exit-code contract only holds if failures travel through the
    FlowError taxonomy; an ``except Exception`` that swallows is a latent
    contract hole.  Compliant handlers contain a ``raise`` (bare re-raise
    or wrapping in a FlowError subclass); deliberate tolerance (cache
    corruption, top-level CLI mapping) carries an explicit waiver with
    its justification.
    """

    id = "broad-except"
    title = "flow-layer broad except must re-raise, wrap, or waive"

    def applies_to(self, path: str) -> bool:
        return "repro/flow/" in path or path.endswith("repro/__main__.py")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if any(isinstance(inner, ast.Raise)
                   for inner in _walk_skipping_functions(list(node.body))):
                continue
            yield self.finding(
                module, node,
                "broad except swallows the failure outside the FlowError "
                "taxonomy; re-raise, wrap in a FlowError subclass, or waive "
                "with a one-line justification",
            )

    def _is_broad(self, type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True  # bare except
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(item) for item in type_node.elts)
        dotted = _dotted_name(type_node)
        return bool(dotted) and dotted[-1] in ("Exception", "BaseException")


# ---------------------------------------------------------------------------
# Rule 6: mutable-default
# ---------------------------------------------------------------------------

_MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict"}


@register
class MutableDefaultRule(LintRule):
    """No mutable default arguments, anywhere.

    A mutable default is shared across calls: state leaks between flow
    runs and between tests, the classic source of
    works-alone-fails-in-suite bugs.  Use ``None`` plus an inside-the-
    function default (or ``dataclasses.field(default_factory=...)``).
    """

    id = "mutable-default"
    title = "no mutable default arguments"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            label = getattr(node, "name", "<lambda>")
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module, default,
                        f"mutable default argument in {label!r} is shared "
                        "across calls; default to None and create the value "
                        "inside the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            return bool(dotted) and dotted[-1] in _MUTABLE_CTORS
        return False
