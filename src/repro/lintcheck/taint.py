"""Inter-procedural entropy taint analysis.

The syntactic ``hash-entropy`` rule only sees a source and a sink in the
same function.  This module follows a value: every project function gets
a *taint summary* — which entropy sources (and which of its own
parameters) can reach its return value — computed to a fixpoint over the
call graph, so ``time.time()`` laundered through two helpers is still
attached to the ``stable_hash`` argument it finally lands in.  Findings
carry the full source→sink path::

    entropy-taint time.time() (corpus/taint_chain.py:6) -> _now -> _label
    -> stable_hash() argument

Sources: ``time.*``, unseeded ``random``/``numpy.random``,
``os.urandom``, ``uuid.*``, ``secrets.*``, wall-clock ``datetime``
constructors, builtin ``id()``/``hash()``, and unsorted iteration over a
set (dict iteration is insertion-ordered on every supported Python and
is exempt).  Seeded constructors (``random.Random(0)``,
``default_rng(7)``) are not sources, and ``sorted()``/``min()``/``max()``
sanitize order-taint.

Sinks: arguments of ``stable_hash`` (the Merkle artifact key), values of
the dict a ``FlowStage.run()`` returns (cached artifacts), and arguments
of ``record_*`` journal methods (the replayable run journal).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.lintcheck.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Project,
)
from repro.lintcheck.core import Finding, ProjectRule, register

KIND_ENTROPY = "entropy"
KIND_ORDER = "order"

#: dotted-prefix sources (resolved through each module's import aliases)
_SOURCE_PREFIXES = ("time.", "random.", "numpy.random.", "uuid.", "secrets.")
#: exact dotted sources
_SOURCE_EXACT = frozenset({"os.urandom", "os.getpid", "os.times", "time", "uuid"})
#: builtins that depend on interpreter state (addresses, PYTHONHASHSEED)
_SOURCE_BUILTINS = frozenset({"id", "hash"})
#: wall-clock datetime constructors (``datetime.datetime.now()`` etc.)
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
#: RNG constructors/seeders that are deterministic *when given a seed*
_SEEDABLE = frozenset({
    "random.Random", "random.seed",
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.seed",
})
#: calls whose result does not depend on argument order or entropy
_SCRUB_ALL = frozenset({"len", "isinstance", "issubclass", "type", "callable"})
#: calls that erase iteration-order dependence but keep entropy
_SCRUB_ORDER = frozenset({"sorted", "min", "max", "sum", "any", "all",
                          "set", "frozenset"})

#: hard cap on summary fixpoint rounds (call-graph cycles converge fast;
#: this is a backstop, not a tuning knob)
_MAX_ROUNDS = 10


@dataclass(frozen=True, order=True)
class TaintLabel:
    """One entropy source observed to reach a value."""

    kind: str
    source: str            # human description incl. path:line
    chain: Tuple[str, ...]  # functions the value passed through

    def through(self, func_display: str) -> "TaintLabel":
        return TaintLabel(self.kind, self.source, self.chain + (func_display,))

    def describe(self, sink: str) -> str:
        hops: Tuple[str, ...] = self.chain + (sink,)
        return f"{self.source} -> {' -> '.join(hops)}"


@dataclass(frozen=True, order=True)
class ParamTaint:
    """Summary placeholder: 'whatever taint parameter ``index`` carries'."""

    index: int


Label = Union[TaintLabel, ParamTaint]
Labels = FrozenSet[Label]
_EMPTY: Labels = frozenset()


def _dotted(module: ModuleInfo, expr: ast.expr) -> Optional[str]:
    """Fully-qualified dotted name of ``expr`` via the module's imports.

    ``np.random.default_rng`` -> ``numpy.random.default_rng`` when the
    module did ``import numpy as np``; a bare imported name resolves to
    its target (``from time import time`` makes ``time`` ->
    ``time.time``)."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = module.imports.get(node.id)
    if root is None:
        return node.id if not parts else None
    return ".".join([root] + list(reversed(parts)))


def _is_source(dotted: str, call: ast.Call) -> bool:
    if dotted in _SEEDABLE:
        return not (call.args or call.keywords)  # seedless => entropy
    if dotted in _SOURCE_EXACT or dotted in _SOURCE_BUILTINS:
        return True
    if any(dotted.startswith(prefix) for prefix in _SOURCE_PREFIXES):
        return True
    if dotted.startswith("datetime.") and dotted.rsplit(".", 1)[-1] in _DATETIME_ATTRS:
        return True
    return False


def _root_name(expr: ast.expr) -> Optional[str]:
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


class _Sink:
    """Callback target for sink hits during an evaluation pass."""

    def hit(self, node: ast.AST, sink_desc: str, labels: Labels) -> None:
        raise NotImplementedError


class _Evaluator:
    """Single forward pass over one function body.

    Tracks per-variable label sets and which variables hold sets (so
    iterating one adds order-taint).  Branches are merged by executing
    both arms against the same environment — an over-approximation that
    errs toward reporting."""

    def __init__(
        self,
        project: Project,
        module: ModuleInfo,
        func: Optional[FunctionInfo],
        summaries: Dict[str, Labels],
        sink: Optional[_Sink] = None,
    ) -> None:
        self.project = project
        self.module = module
        self.func = func
        self.summaries = summaries
        self.sink = sink
        self.env: Dict[str, Labels] = {}
        self.setvars: Set[str] = set()
        self.returns: Labels = _EMPTY

    # -- statements ---------------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            labels = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, labels, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            labels = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = self.env.get(stmt.target.id, _EMPTY) | labels
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns = self.returns | self.eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            labels = self.eval(stmt.iter)
            if self._is_setlike(stmt.iter):
                labels = labels | frozenset({self._order_label(stmt.iter)})
            self._bind(stmt.target, labels, None)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels, None)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
        # nested defs/classes get their own summaries; imports/pass/etc.
        # carry no dataflow

    def _bind(self, target: ast.expr, labels: Labels,
              value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = labels
            if value is not None and self._is_setlike(value):
                self.setvars.add(target.id)
            else:
                self.setvars.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, labels, None)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels, None)

    # -- expressions --------------------------------------------------------

    def eval(self, expr: ast.expr) -> Labels:
        if isinstance(expr, ast.Constant):
            return _EMPTY
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, _EMPTY)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Attribute):
            return self.eval(expr.value)
        if isinstance(expr, ast.Subscript):
            return self.eval(expr.value) | self.eval(expr.slice)
        if isinstance(expr, ast.BinOp):
            return self.eval(expr.left) | self.eval(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand)
        if isinstance(expr, ast.BoolOp):
            out: Labels = _EMPTY
            for value in expr.values:
                out = out | self.eval(value)
            return out
        if isinstance(expr, ast.Compare):
            out = self.eval(expr.left)
            for comparator in expr.comparators:
                out = out | self.eval(comparator)
            return out
        if isinstance(expr, ast.IfExp):
            return self.eval(expr.test) | self.eval(expr.body) | self.eval(expr.orelse)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = _EMPTY
            for element in expr.elts:
                out = out | self.eval(element)
            return out
        if isinstance(expr, ast.Dict):
            out = _EMPTY
            for key in expr.keys:
                if key is not None:
                    out = out | self.eval(key)
            for value in expr.values:
                out = out | self.eval(value)
            return out
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(expr.generators, [expr.elt])
        if isinstance(expr, ast.DictComp):
            return self._eval_comprehension(expr.generators,
                                            [expr.key, expr.value])
        if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
            out = _EMPTY
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    out = out | self.eval(child)
            return out
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value)
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self.eval(expr.value)
        if isinstance(expr, ast.Yield):
            return self.eval(expr.value) if expr.value is not None else _EMPTY
        if isinstance(expr, ast.Lambda):
            return _EMPTY
        if isinstance(expr, ast.NamedExpr):
            labels = self.eval(expr.value)
            self._bind(expr.target, labels, expr.value)
            return labels
        return _EMPTY

    def _eval_comprehension(
        self, generators: Sequence[ast.comprehension], elts: Sequence[ast.expr]
    ) -> Labels:
        out: Labels = _EMPTY
        for gen in generators:
            labels = self.eval(gen.iter)
            if self._is_setlike(gen.iter):
                labels = labels | frozenset({self._order_label(gen.iter)})
            self._bind(gen.target, labels, None)
            for condition in gen.ifs:
                self.eval(condition)
        for elt in elts:
            out = out | self.eval(elt)
        return out

    def _is_setlike(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Set) or isinstance(expr, ast.SetComp):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in ("set", "frozenset"):
                return True
        if isinstance(expr, ast.Name):
            return expr.id in self.setvars
        return False

    def _order_label(self, expr: ast.expr) -> TaintLabel:
        return TaintLabel(
            KIND_ORDER,
            f"unsorted set iteration ({self.module.path}:{expr.lineno})",
            (),
        )

    def _eval_call(self, call: ast.Call) -> Labels:
        arg_labels: List[Labels] = [self.eval(arg) for arg in call.args]
        kw_labels: Dict[str, Labels] = {}
        anon_kw: Labels = _EMPTY
        for keyword in call.keywords:
            labels = self.eval(keyword.value)
            if keyword.arg is None:
                anon_kw = anon_kw | labels
            else:
                kw_labels[keyword.arg] = labels
        everything: Labels = anon_kw
        for labels in arg_labels:
            everything = everything | labels
        for labels in kw_labels.values():
            everything = everything | labels

        dotted = _dotted(self.module, call.func)
        self._check_sinks(call, dotted, arg_labels, kw_labels, anon_kw)

        if dotted is not None and _is_source(dotted, call):
            return frozenset({TaintLabel(
                KIND_ENTROPY,
                f"{dotted}() ({self.module.path}:{call.lineno})",
                (),
            )}) | everything
        if dotted in _SCRUB_ALL:
            return _EMPTY
        if dotted in _SCRUB_ORDER:
            return frozenset(
                label for label in everything
                if not (isinstance(label, TaintLabel) and label.kind == KIND_ORDER)
            )
        if dotted in ("list", "tuple"):
            # list(s)/tuple(s) of a set materializes its arbitrary order
            if call.args and self._is_setlike(call.args[0]):
                return everything | frozenset({self._order_label(call.args[0])})
            return everything

        callee = self._resolve(call)
        if callee is not None:
            return self._apply_summary(call, callee, arg_labels, kw_labels,
                                       everything)
        # Opaque call: taint flows through, receiver included — and a
        # mutating method (`out.append(name)`) taints its receiver.
        receiver = _root_name(call.func)
        if receiver is not None:
            everything = everything | self.env.get(receiver, _EMPTY)
            if isinstance(call.func, ast.Attribute) and everything:
                self.env[receiver] = self.env.get(receiver, _EMPTY) | everything
        return everything

    def _resolve(self, call: ast.Call) -> Optional[FunctionInfo]:
        if self.func is None:
            return None
        return self.project.resolve_call(self.func, call.func, None)

    def _apply_summary(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        arg_labels: List[Labels],
        kw_labels: Dict[str, Labels],
        fallback: Labels,
    ) -> Labels:
        summary = self.summaries.get(callee.qualname)
        if summary is None:
            return fallback
        params = callee.params
        offset = 1 if (
            callee.class_qualname is not None
            and isinstance(call.func, ast.Attribute)
        ) else 0
        out: Labels = _EMPTY
        for label in summary:
            if isinstance(label, ParamTaint):
                position = label.index - offset
                param = params[label.index] if label.index < len(params) else None
                if 0 <= position < len(arg_labels):
                    out = out | arg_labels[position]
                elif param is not None and param in kw_labels:
                    out = out | kw_labels[param]
            else:
                out = out | frozenset({label})
        return out

    def _check_sinks(
        self,
        call: ast.Call,
        dotted: Optional[str],
        arg_labels: List[Labels],
        kw_labels: Dict[str, Labels],
        anon_kw: Labels,
    ) -> None:
        if self.sink is None:
            return
        tainted: Labels = anon_kw
        for labels in arg_labels:
            tainted = tainted | labels
        for labels in kw_labels.values():
            tainted = tainted | labels
        if not tainted:
            return
        if dotted is not None and dotted.rsplit(".", 1)[-1] == "stable_hash":
            self.sink.hit(call, "stable_hash() argument", tainted)
        elif (
            isinstance(call.func, ast.Attribute)
            and call.func.attr.startswith("record_")
        ):
            self.sink.hit(call, f"journal {call.func.attr}()", tainted)


# ---------------------------------------------------------------------------
# Summaries (fixpoint) and the rule
# ---------------------------------------------------------------------------


def compute_summaries(project: Project) -> Dict[str, Labels]:
    """Return-taint summary per function qualname, to a fixpoint."""
    cached = project.analysis_cache.get("taint-summaries")
    if isinstance(cached, dict):
        return cached
    summaries: Dict[str, Labels] = {name: _EMPTY for name in project.functions}
    for _ in range(_MAX_ROUNDS):
        changed = False
        for qualname in sorted(project.functions):
            func = project.functions[qualname]
            module = project.modules.get(func.module)
            if module is None:
                continue
            evaluator = _Evaluator(project, module, func, summaries)
            for index, param in enumerate(func.params):
                evaluator.env[param] = frozenset({ParamTaint(index)})
            evaluator.exec_block(func.node.body)
            summary: Labels = frozenset(
                label.through(func.display)
                if isinstance(label, TaintLabel) else label
                for label in evaluator.returns
            )
            if summary != summaries[qualname]:
                summaries[qualname] = summary
                changed = True
        if not changed:
            break
    project.analysis_cache["taint-summaries"] = summaries
    return summaries


class _CollectingSink(_Sink):
    def __init__(self) -> None:
        self.hits: List[Tuple[ast.AST, str, Labels]] = []

    def hit(self, node: ast.AST, sink_desc: str, labels: Labels) -> None:
        self.hits.append((node, sink_desc, labels))


def _stage_run_qualnames(project: Project) -> Set[str]:
    out: Set[str] = set()
    for cls in project.iter_subclasses("FlowStage"):
        if "run" in cls.methods:
            out.add(cls.methods["run"])
    return out


@register
class EntropyTaintRule(ProjectRule):
    """No entropy may reach a determinism sink, however indirectly.

    Subsumes the syntactic ``hash-entropy`` rule at the dataflow level:
    the source may live any number of calls away from the sink, and the
    finding names every hop in between.
    """

    id = "entropy-taint"
    title = "entropy flows into a determinism sink (hash/artifact/journal)"

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = compute_summaries(project)
        run_methods = _stage_run_qualnames(project)
        for module in project.iter_selected_modules():
            for qualname in sorted(project.functions):
                func = project.functions[qualname]
                if func.module != module.name or func.path != module.path:
                    continue
                yield from self._check_function(
                    project, module, func, summaries,
                    is_stage_run=qualname in run_methods,
                )

    def _check_function(
        self,
        project: Project,
        module: ModuleInfo,
        func: FunctionInfo,
        summaries: Dict[str, Labels],
        is_stage_run: bool,
    ) -> Iterator[Finding]:
        sink = _CollectingSink()
        evaluator = _Evaluator(project, module, func, summaries, sink=sink)
        evaluator.exec_block(func.node.body)
        emitted: Set[Tuple[int, str, str]] = set()
        for node, sink_desc, labels in sink.hits:
            yield from self._emit(module, node, sink_desc, labels, emitted)
        if is_stage_run:
            yield from self._check_run_returns(module, func, evaluator, emitted)

    def _check_run_returns(
        self,
        module: ModuleInfo,
        func: FunctionInfo,
        evaluator: _Evaluator,
        emitted: Set[Tuple[int, str, str]],
    ) -> Iterator[Finding]:
        for node in ast.walk(func.node):
            if not (isinstance(node, ast.Return) and node.value is not None):
                continue
            labels = evaluator.eval(node.value)
            yield from self._emit(
                module, node, "stage run() artifact dict", labels, emitted
            )

    def _emit(
        self,
        module: ModuleInfo,
        node: ast.AST,
        sink_desc: str,
        labels: Labels,
        emitted: Set[Tuple[int, str, str]],
    ) -> Iterator[Finding]:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        for label in sorted(
            label for label in labels if isinstance(label, TaintLabel)
        ):
            key = (line, sink_desc, label.source)
            if key in emitted:
                continue
            emitted.add(key)
            if label.kind == KIND_ORDER:
                consequence = "the value depends on set iteration order"
            else:
                consequence = "the value changes run to run"
            yield Finding(
                module.path, line, col, self.id,
                f"{label.describe(sink_desc)} — {consequence}; seed, sort, "
                "or drop the nondeterministic input (waive with a "
                "justification if the flow is deliberate telemetry)",
            )
