"""Physical-unit abstract interpretation over the call graph.

The pipeline's values live in a handful of physical unit spaces — wafer
lengths in **nm**, raster positions in **px**, the conversion factor
``pixel`` (nm per px), timing in **ps**/**ns** — and the signal chain is
one long transport between them.  This module runs a small abstract
interpreter over that unit lattice::

    nm   um   px   nm_per_px   ps   ns   1 (dimensionless)   ?

seeded from three places (see :mod:`repro.units`):

* ``Annotated`` unit aliases on parameters, returns and dataclass fields
  (``x: Nanometers``, ``pixel: NmPerPixel``);
* naming conventions (``defocus_nm``, ``*_px``, ``period_ps``, the exact
  name ``pixel``);
* an interprocedural fixpoint of per-function *return-unit summaries*
  over :class:`~repro.lintcheck.callgraph.Project`, so a helper that
  returns ``value_nm / pixel`` is known to yield px at every call site.

The algebra is deliberately small: addition/subtraction/comparison
require matching units, multiplication and division transport across the
raster boundary (``nm / pixel -> px``, ``px * pixel -> nm``) and cancel
equal units to dimensionless; anything else is unknown (never reported).

Three rules consume the events:

* ``unit-mismatch`` — adding/subtracting/comparing two *different* known
  dimensional units anywhere (nm vs ps, px vs ns, ...).
* ``missing-grid-conversion`` — the nm/px flavour of the same event
  inside the raster-boundary modules (``repro/litho/``): crossing
  between wafer and sample space without a ``pixel`` multiply/divide.
* ``unit-unsafe-return`` — a public litho/metrology/timing API returns a
  bare ``float`` whose unit the interpreter cannot establish; annotate
  it with a :mod:`repro.units` alias (or fix the leak it exposes).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lintcheck.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Project,
    annotation_simple_name,
)
from repro.lintcheck.core import Finding, ProjectRule, register
from repro.units import ALIAS_UNITS, NAME_UNITS, SUFFIX_UNITS

#: lattice elements (``None`` is unknown/top — never reported)
NM = "nm"
UM = "um"
PX = "px"
NM_PER_PX = "nm_per_px"
PS = "ps"
NS = "ns"
DIMLESS = "1"

Unit = Optional[str]

#: units that carry a physical dimension (mismatches are only reported
#: between two of these; dimensionless and unknown combine silently) —
#: every vocabulary unit except the explicit "1"
_DIMENSIONAL = frozenset(ALIAS_UNITS.values()) - {DIMLESS}

#: human labels for messages
_LABELS = {
    NM: "nm (wafer length)",
    UM: "um (wafer length)",
    PX: "px (raster samples)",
    NM_PER_PX: "nm/px (raster pitch)",
    PS: "ps (timing)",
    NS: "ns (timing)",
    "fF": "fF (capacitance)",
    "kohm": "kohm (resistance)",
    "inv_nm": "1/nm (spatial frequency)",
    DIMLESS: "dimensionless",
}

#: the raster-boundary pair that ``missing-grid-conversion`` owns inside
#: the grid modules
_GRID_PAIR = frozenset({NM, PX})

#: modules where the nm<->px boundary is crossed by design
_GRID_PATH_FRAGMENT = "repro/litho/"

#: builtins/numpy calls that preserve the unit of their first argument
_UNIT_PRESERVING = frozenset({
    "int", "float", "abs", "round", "sorted", "list", "tuple",
    "floor", "ceil", "rint", "trunc", "absolute", "asarray", "array",
    "copy", "ravel", "flip", "sort", "squeeze", "atleast_1d",
})
#: calls whose result combines every argument's unit (all must agree)
_UNIT_COMBINING = frozenset({
    "min", "max", "sum", "minimum", "maximum", "hypot", "interp",
    "clip", "mean", "median", "std", "ptp", "diff", "concatenate",
})
#: calls that are dimensionless whatever their input
_UNIT_SCRUBBING = frozenset({"len", "sign", "isfinite", "isnan", "bool"})

_MAX_ROUNDS = 8


def _name_unit(identifier: str) -> Unit:
    """Unit conveyed by an identifier's naming convention, if any."""
    if identifier in NAME_UNITS:
        return NAME_UNITS[identifier]
    for suffix, unit in SUFFIX_UNITS.items():
        if identifier.endswith(suffix) and len(identifier) > len(suffix):
            return unit
    return None


def _annotation_unit(node: Optional[ast.expr]) -> Unit:
    """Unit declared by an annotation using a :mod:`repro.units` alias."""
    simple = annotation_simple_name(node)
    if simple is None:
        return None
    return ALIAS_UNITS.get(simple)


def declared_param_unit(func: FunctionInfo, param: str) -> Unit:
    """Annotation unit first, then the parameter's naming convention."""
    args = func.node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg == param:
            unit = _annotation_unit(arg.annotation)
            if unit is not None:
                return unit
    return _name_unit(param)


def combine_add(a: Unit, b: Unit) -> Tuple[Unit, bool]:
    """Unit of ``a + b`` (or ``-``/comparison) and whether it mismatches.

    Unknown and dimensionless sides are permissive — a bare numeric
    constant may legitimately carry any unit — so only two *different*
    dimensional units report.
    """
    if a in _DIMENSIONAL and b in _DIMENSIONAL and a != b:
        return None, True
    if a in _DIMENSIONAL:
        return a, False
    if b in _DIMENSIONAL:
        return b, False
    if a == DIMLESS and b == DIMLESS:
        return DIMLESS, False
    return None, False


def combine_mul(a: Unit, b: Unit) -> Unit:
    """Unit of ``a * b`` — the raster transport plus scaling identities."""
    pair = {a, b}
    if pair == {PX, NM_PER_PX}:
        return NM
    if a == DIMLESS:
        return b
    if b == DIMLESS:
        return a
    return None


def combine_div(a: Unit, b: Unit) -> Unit:
    """Unit of ``a / b`` — cancellation and the raster transport."""
    if a is not None and a == b:
        return DIMLESS
    if a == NM and b == NM_PER_PX:
        return PX
    if a == NM and b == PX:
        return NM_PER_PX
    if b == DIMLESS:
        return a
    return None


@dataclass(frozen=True, order=True)
class UnitEvent:
    """One observed unit mismatch at a source location."""

    path: str
    line: int
    col: int
    left: str
    right: str
    context: str  # "addition" | "subtraction" | "comparison"

    @property
    def pair(self) -> frozenset:
        return frozenset({self.left, self.right})

    def describe(self) -> str:
        return (
            f"{self.context} of {_LABELS.get(self.left, self.left)} and "
            f"{_LABELS.get(self.right, self.right)}"
        )


class _UnitEvaluator:
    """Single forward pass over one function body, tracking var units."""

    def __init__(
        self,
        project: Project,
        module: ModuleInfo,
        func: Optional[FunctionInfo],
        summaries: Dict[str, Unit],
        attr_units: Dict[str, Dict[str, Unit]],
        events: Optional[List[UnitEvent]] = None,
    ) -> None:
        self.project = project
        self.module = module
        self.func = func
        self.summaries = summaries
        self.attr_units = attr_units
        self.events = events
        self.env: Dict[str, Unit] = {}
        self.local_classes: Dict[str, str] = {}
        self.return_unit: Unit = None
        self._return_seen = False

    # -- statements ---------------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            unit = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, unit, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            unit = _annotation_unit(stmt.annotation)
            if unit is None and stmt.value is not None:
                unit = self.eval(stmt.value)
            elif stmt.value is not None:
                self.eval(stmt.value)
            self._bind(stmt.target, unit, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value_unit = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id)
                if isinstance(stmt.op, (ast.Add, ast.Sub)):
                    unit, mismatch = combine_add(current, value_unit)
                    if mismatch:
                        self._record(stmt, current, value_unit,
                                     "addition" if isinstance(stmt.op, ast.Add)
                                     else "subtraction")
                    self.env[stmt.target.id] = unit
                elif isinstance(stmt.op, ast.Mult):
                    self.env[stmt.target.id] = combine_mul(current, value_unit)
                elif isinstance(stmt.op, ast.Div):
                    self.env[stmt.target.id] = combine_div(current, value_unit)
                else:
                    self.env[stmt.target.id] = None
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                unit = self.eval(stmt.value)
                if not self._return_seen:
                    self.return_unit = unit
                    self._return_seen = True
                elif unit != self.return_unit:
                    self.return_unit = None
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            unit = self.eval(stmt.iter)
            # iterating a sequence of X yields X per element
            self._bind(stmt.target, unit, None)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                unit = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, unit, None)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _bind(self, target: ast.expr, unit: Unit,
              value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            # a naming convention on the target pins the unit when the
            # value's unit is unknown (`width_px = compute()`), and a
            # known value unit wins otherwise
            declared = _name_unit(target.id)
            self.env[target.id] = unit if unit is not None else declared
            if isinstance(value, ast.Call):
                cls_name = self._constructed_class(value)
                if cls_name is not None:
                    self.local_classes[target.id] = cls_name
                else:
                    self.local_classes.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, None, None)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, unit, None)

    def _constructed_class(self, call: ast.Call) -> Optional[str]:
        if isinstance(call.func, ast.Name):
            name = call.func.id
        elif isinstance(call.func, ast.Attribute):
            name = call.func.attr
        else:
            return None
        prefer = self.func.module if self.func is not None else self.module.name
        if self.project.resolve_class(name, prefer_module=prefer) is not None:
            return name
        return None

    # -- expressions --------------------------------------------------------

    def eval(self, expr: ast.expr) -> Unit:
        if isinstance(expr, ast.Constant):
            # Numeric literals are dimensionless scalars: `width_nm / 2`
            # stays in nm.  Everything else (strings, None) is unknown.
            if not isinstance(expr.value, bool) and isinstance(expr.value, (int, float)):
                return DIMLESS
            return None
        if isinstance(expr, ast.Name):
            unit = self.env.get(expr.id)
            if unit is not None:
                return unit
            if expr.id in self.env:
                return None
            return _name_unit(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand)
        if isinstance(expr, ast.Compare):
            self._eval_compare(expr)
            return None
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self.eval(value)
            return None
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test)
            left = self.eval(expr.body)
            right = self.eval(expr.orelse)
            return left if left == right else None
        if isinstance(expr, ast.Subscript):
            # an element of a sequence of X is an X
            unit = self.eval(expr.value)
            self.eval(expr.slice)
            return unit
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            units = {self.eval(element) for element in expr.elts}
            return units.pop() if len(units) == 1 else None
        if isinstance(expr, ast.Dict):
            for key in expr.keys:
                if key is not None:
                    self.eval(key)
            for value in expr.values:
                self.eval(value)
            return None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(expr.generators, expr.elt)
        if isinstance(expr, ast.DictComp):
            self._eval_comprehension(expr.generators, expr.value)
            return None
        if isinstance(expr, ast.NamedExpr):
            unit = self.eval(expr.value)
            self._bind(expr.target, unit, expr.value)
            return unit
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self.eval(expr.value)
        if isinstance(expr, ast.Yield):
            return self.eval(expr.value) if expr.value is not None else None
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value)
        if isinstance(expr, (ast.JoinedStr, ast.FormattedValue, ast.Lambda)):
            return None
        return None

    def _eval_comprehension(
        self, generators: Sequence[ast.comprehension], elt: ast.expr
    ) -> Unit:
        for gen in generators:
            unit = self.eval(gen.iter)
            self._bind(gen.target, unit, None)
            for condition in gen.ifs:
                self.eval(condition)
        return self.eval(elt)

    def _eval_attribute(self, expr: ast.Attribute) -> Unit:
        self.eval(expr.value)
        named = _name_unit(expr.attr)
        if named is not None:
            return named
        cls = self._receiver_class_info(expr.value)
        if cls is not None:
            table = self.attr_units.get(cls.qualname)
            if table and expr.attr in table:
                return table[expr.attr]
            getter = self.project.resolve_method(cls, expr.attr)
            if getter is not None and getter.is_property:
                return self.summaries.get(getter.qualname)
        return None

    def _receiver_class_info(self, receiver: ast.expr):
        if not isinstance(receiver, ast.Name) or self.func is None:
            return None
        return self.project._receiver_class(
            self.func, receiver.id, self.local_classes
        )

    def _eval_binop(self, expr: ast.BinOp) -> Unit:
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            unit, mismatch = combine_add(left, right)
            if mismatch:
                context = "addition" if isinstance(expr.op, ast.Add) else "subtraction"
                self._record(expr, left, right, context)
            return unit
        if isinstance(expr.op, ast.Mult):
            return combine_mul(left, right)
        if isinstance(expr.op, (ast.Div, ast.FloorDiv)):
            return combine_div(left, right)
        if isinstance(expr.op, ast.Mod):
            return left
        return None

    def _eval_compare(self, expr: ast.Compare) -> None:
        units = [self.eval(expr.left)]
        units.extend(self.eval(comparator) for comparator in expr.comparators)
        known = [u for u in units if u in _DIMENSIONAL]
        for index in range(len(units) - 1):
            a, b = units[index], units[index + 1]
            if a in _DIMENSIONAL and b in _DIMENSIONAL and a != b:
                self._record(expr, a, b, "comparison")
        # membership/identity chains with one dimensional side are fine
        del known

    def _eval_call(self, call: ast.Call) -> Unit:
        arg_units = [self.eval(arg) for arg in call.args]
        kw_units: Dict[str, Unit] = {}
        for keyword in call.keywords:
            kw_units[keyword.arg or "**"] = self.eval(keyword.value)

        name = self._call_simple_name(call)
        if name in _UNIT_SCRUBBING:
            return DIMLESS
        if name in _UNIT_PRESERVING:
            return arg_units[0] if arg_units else None
        if name in _UNIT_COMBINING:
            known = {u for u in arg_units if u is not None and u != DIMLESS}
            if len(known) == 1:
                return known.pop()
            return None

        callee = None
        if self.func is not None:
            callee = self.project.resolve_call(
                self.func, call.func, self.local_classes
            )
        if callee is not None:
            unit = self.summaries.get(callee.qualname)
            if unit is not None:
                return unit
            declared = _annotation_unit(callee.node.returns)
            if declared is not None:
                return declared
            return _name_unit(callee.name)
        if name is not None:
            return _name_unit(name)
        return None

    @staticmethod
    def _call_simple_name(call: ast.Call) -> Optional[str]:
        if isinstance(call.func, ast.Name):
            return call.func.id
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        return None

    def _record(self, node: ast.AST, left: Unit, right: Unit,
                context: str) -> None:
        if self.events is None or left is None or right is None:
            return
        self.events.append(UnitEvent(
            path=self.module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            left=left,
            right=right,
            context=context,
        ))


# ---------------------------------------------------------------------------
# Project-level analysis (shared by the three rules)
# ---------------------------------------------------------------------------


def class_attr_units(project: Project) -> Dict[str, Dict[str, Unit]]:
    """Per-class field units from annotated class bodies + conventions."""
    cached = project.analysis_cache.get("unit-attr-units")
    if isinstance(cached, dict):
        return cached
    tables: Dict[str, Dict[str, Unit]] = {}
    for qualname in sorted(project.classes):
        cls = project.classes[qualname]
        table: Dict[str, Unit] = {}
        for item in cls.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                unit = _annotation_unit(item.annotation)
                if unit is None:
                    unit = _name_unit(item.target.id)
                if unit is not None:
                    table[item.target.id] = unit
        if table:
            tables[qualname] = table
    project.analysis_cache["unit-attr-units"] = tables
    return tables


def compute_unit_summaries(project: Project) -> Dict[str, Unit]:
    """Return-unit summary per function qualname, to a fixpoint."""
    cached = project.analysis_cache.get("unit-summaries")
    if isinstance(cached, dict):
        return cached
    attr_units = class_attr_units(project)
    summaries: Dict[str, Unit] = {}
    for qualname in sorted(project.functions):
        func = project.functions[qualname]
        declared = _annotation_unit(func.node.returns)
        summaries[qualname] = declared
    for _ in range(_MAX_ROUNDS):
        changed = False
        for qualname in sorted(project.functions):
            func = project.functions[qualname]
            declared = _annotation_unit(func.node.returns)
            if declared is not None:
                continue  # annotation is authoritative
            module = project.modules.get(func.module)
            if module is None:
                continue
            evaluator = _UnitEvaluator(project, module, func, summaries,
                                       attr_units)
            for param in func.params:
                evaluator.env[param] = declared_param_unit(func, param)
            evaluator.exec_block(func.node.body)
            inferred = evaluator.return_unit
            if inferred is None:
                inferred = _name_unit(func.name)
            if inferred != summaries[qualname]:
                summaries[qualname] = inferred
                changed = True
        if not changed:
            break
    project.analysis_cache["unit-summaries"] = summaries
    return summaries


def unit_events(project: Project) -> List[UnitEvent]:
    """Every unit-mismatch event in the selected modules (cached)."""
    cached = project.analysis_cache.get("unit-events")
    if isinstance(cached, list):
        return cached
    summaries = compute_unit_summaries(project)
    attr_units = class_attr_units(project)
    events: List[UnitEvent] = []
    for module in project.iter_selected_modules():
        for qualname in sorted(project.functions):
            func = project.functions[qualname]
            if func.module != module.name or func.path != module.path:
                continue
            evaluator = _UnitEvaluator(project, module, func, summaries,
                                       attr_units, events=events)
            for param in func.params:
                evaluator.env[param] = declared_param_unit(func, param)
            evaluator.exec_block(func.node.body)
    deduped: Dict[Tuple[str, int, int, frozenset, str], UnitEvent] = {}
    for event in events:
        key = (event.path, event.line, event.col, event.pair, event.context)
        deduped.setdefault(key, event)
    out = sorted(deduped.values())
    project.analysis_cache["unit-events"] = out
    return out


def _is_grid_event(event: UnitEvent) -> bool:
    return (
        event.pair == _GRID_PAIR
        and _GRID_PATH_FRAGMENT in event.path.replace("\\", "/")
    )


@register
class UnitMismatchRule(ProjectRule):
    """Two different physical units may not be added or compared.

    nm + px, ps < ns, um - nm: each is a silent scale error the type
    checker cannot see (every one of these is ``float``).  The nm/px
    flavour inside the raster modules is reported separately as
    ``missing-grid-conversion``.
    """

    id = "unit-mismatch"
    title = "no addition/comparison across physical units"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for event in unit_events(project):
            if _is_grid_event(event):
                continue
            yield Finding(
                event.path, event.line, event.col, self.id,
                f"{event.describe()} — same-unit operands required; convert "
                "explicitly (see repro.units) or annotate the intended unit",
            )


@register
class MissingGridConversionRule(ProjectRule):
    """Crossing the raster boundary requires a ``pixel`` multiply/divide.

    Inside ``repro/litho/`` the nm<->px transition is routine — and every
    crossing must go through the grid pitch (``x_px = x_nm / pixel``,
    ``x_nm = x_px * pixel``).  An nm value meeting a px value in a sum or
    comparison skipped that conversion.
    """

    id = "missing-grid-conversion"
    title = "nm<->px crossing without a pixel multiply/divide"

    def applies_to(self, path: str) -> bool:
        return _GRID_PATH_FRAGMENT in path

    def check_project(self, project: Project) -> Iterator[Finding]:
        for event in unit_events(project):
            if not _is_grid_event(event):
                continue
            yield Finding(
                event.path, event.line, event.col, self.id,
                f"{event.describe()} crosses the raster boundary without a "
                "grid conversion; multiply/divide by the pixel pitch "
                "(nm/px) on one side first",
            )


#: path fragments whose public float-returning APIs must carry a unit
_RETURN_SCOPES = ("repro/litho/", "repro/metrology/", "repro/timing/")


@register
class UnitUnsafeReturnRule(ProjectRule):
    """Public physics APIs must say what unit their floats are in.

    A bare ``-> float`` from a litho/metrology/timing API is how nm
    quietly becomes px three calls later.  The rule fires when the
    interpreter cannot establish the unit either (no alias annotation,
    no naming convention, no inferable flow); annotate the return with a
    :mod:`repro.units` alias — ``Dimensionless`` is an explicit answer
    too.
    """

    id = "unit-unsafe-return"
    title = "public litho/metrology/timing API returns unit-less float"

    def applies_to(self, path: str) -> bool:
        return any(fragment in path for fragment in _RETURN_SCOPES)

    def check_project(self, project: Project) -> Iterator[Finding]:
        summaries = compute_unit_summaries(project)
        for module in project.iter_selected_modules():
            norm = module.path.replace("\\", "/")
            if not any(fragment in norm for fragment in _RETURN_SCOPES):
                continue
            for qualname in sorted(project.functions):
                func = project.functions[qualname]
                if func.module != module.name or func.path != module.path:
                    continue
                if func.name.startswith("_"):
                    continue
                returns = func.node.returns
                if annotation_simple_name(returns) != "float":
                    continue  # only bare floats are unit-unsafe
                if _annotation_unit(returns) is not None:
                    continue
                if summaries.get(qualname) is not None:
                    continue
                if _name_unit(func.name) is not None:
                    continue
                yield Finding(
                    func.path, func.node.lineno, func.node.col_offset,
                    self.id,
                    f"public API {func.display!r} returns a bare float with "
                    "no establishable unit; annotate the return with a "
                    "repro.units alias (Nanometers, Picoseconds, "
                    "Dimensionless, ...)",
                )
