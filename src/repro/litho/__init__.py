"""Partially-coherent optical lithography simulation.

The imaging chain mirrors a production litho simulator of the paper's era:

* :mod:`repro.litho.source` — illumination pupil fill (conventional,
  annular, quadrupole) discretized into weighted source points,
* :mod:`repro.litho.pupil` — projection pupil with defocus and low-order
  aberrations,
* :mod:`repro.litho.raster` — polygon-to-pixel mask transmission with
  analytic area coverage (1 nm edge moves stay visible on an 8 nm grid),
* :mod:`repro.litho.imaging` — Abbe sum-over-source imaging (reference) and
  the SOCS/TCC eigen-kernel fast path,
* :mod:`repro.litho.resist` — constant-threshold resist with Gaussian
  acid-diffusion blur and dose scaling,
* :mod:`repro.litho.contour` — marching-squares printed-contour extraction,
* :mod:`repro.litho.simulator` — the tile-based high-level driver.
"""

from repro.litho.source import SourcePoint, make_source
from repro.litho.pupil import Pupil
from repro.litho.raster import MaskGrid, rasterize
from repro.litho.imaging import AerialImage, OpticalModel
from repro.litho.resist import ProcessCondition, ResistModel
from repro.litho.contour import marching_squares
from repro.litho.simulator import LithographySimulator, TileSpec
from repro.litho.shard import (
    DEFAULT_MAX_SHARD_PX,
    ShardContourTask,
    ShardGrid,
    plan_shard_contours,
    plan_shard_grid,
    shard_contour_chunk,
    stitched_printed_contours,
)
from repro.litho.window import BossungData, ProcessWindow, bossung_data, extract_process_window
from repro.litho.metrics import (
    dose_latitude_percent,
    grating_meef,
    grating_nils,
    nils_at_edge,
)

__all__ = [
    "SourcePoint",
    "make_source",
    "Pupil",
    "MaskGrid",
    "rasterize",
    "AerialImage",
    "OpticalModel",
    "ProcessCondition",
    "ResistModel",
    "marching_squares",
    "LithographySimulator",
    "TileSpec",
    "DEFAULT_MAX_SHARD_PX",
    "ShardGrid",
    "ShardContourTask",
    "plan_shard_grid",
    "plan_shard_contours",
    "shard_contour_chunk",
    "stitched_printed_contours",
    "nils_at_edge",
    "grating_nils",
    "grating_meef",
    "dose_latitude_percent",
    "BossungData",
    "ProcessWindow",
    "bossung_data",
    "extract_process_window",
]
