"""Marching-squares contour extraction.

Turns a latent resist image into printed-feature contours (closed polygons
in nanometre coordinates).  The implementation pads the field with the
background level so every contour closes, uses linear interpolation for
sub-pixel edge placement, and resolves saddle cells with the cell-average
rule.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.geometry import Point, Polygon
from repro.units import Dimensionless, Nanometers, NmPerPixel

# For each marching-squares case, the crossed edge pairs (entry, exit).
# Edges are numbered 0=bottom, 1=right, 2=top, 3=left of the cell.
_SEGMENTS: Dict[int, List[Tuple[int, int]]] = {
    0: [], 15: [],
    1: [(3, 0)], 14: [(0, 3)],
    2: [(0, 1)], 13: [(1, 0)],
    3: [(3, 1)], 12: [(1, 3)],
    4: [(1, 2)], 11: [(2, 1)],
    6: [(0, 2)], 9: [(2, 0)],
    7: [(3, 2)], 8: [(2, 3)],
    5: [(3, 0), (1, 2)],      # saddle, resolved at runtime
    10: [(0, 1), (2, 3)],     # saddle, resolved at runtime
}


def marching_squares(
    field: np.ndarray,
    level: Dimensionless,
    x0: Nanometers = 0.0,
    y0: Nanometers = 0.0,
    pixel: NmPerPixel = 1.0,
    pad_value: float = None,
) -> List[Polygon]:
    """Extract closed iso-``level`` contours of a 2-D scalar field.

    ``field[j, i]`` is the sample at pixel-center ``(x0 + (i+0.5)*pixel,
    y0 + (j+0.5)*pixel)``.  The field is padded with ``pad_value`` (default:
    the field maximum, i.e. background-bright for dark features) so that
    features touching the window edge still produce closed loops.  Only
    loops with at least 3 vertices are returned.
    """
    if field.ndim != 2:
        raise ValueError("field must be 2-D")
    if pad_value is None:
        pad_value = float(field.max())
    padded = np.pad(field, 1, constant_values=pad_value)
    ny, nx = padded.shape

    below = padded < level  # "inside" for dark features
    segments: Dict[Tuple, Tuple] = {}

    def edge_point(j: int, i: int, edge: int) -> Tuple[Tuple, Point]:
        """Interpolated crossing on an edge; returns (edge key, point).

        Pixel-center coordinates: sample (j, i) of the *padded* array sits
        at ((i - 0.5) * pixel + x0, (j - 0.5) * pixel + y0).
        """
        if edge == 0:
            a, b = (j, i), (j, i + 1)
        elif edge == 1:
            a, b = (j, i + 1), (j + 1, i + 1)
        elif edge == 2:
            a, b = (j + 1, i), (j + 1, i + 1)
        else:
            a, b = (j, i), (j + 1, i)
        va, vb = padded[a], padded[b]
        t = 0.5 if vb == va else (level - va) / (vb - va)
        t = min(max(t, 0.0), 1.0)
        ax, ay = (a[1] - 0.5) * pixel + x0, (a[0] - 0.5) * pixel + y0
        bx, by = (b[1] - 0.5) * pixel + x0, (b[0] - 0.5) * pixel + y0
        key = (a, b)
        return key, Point(ax + t * (bx - ax), ay + t * (by - ay))

    # Build directed segments: from entry-edge to exit-edge per cell, with
    # "inside" (below level) kept to the left so loops share orientation.
    links: Dict[Tuple, Tuple[Tuple, Point, Point]] = {}
    for j in range(ny - 1):
        for i in range(nx - 1):
            case = (
                (1 if below[j, i] else 0)
                | (2 if below[j, i + 1] else 0)
                | (4 if below[j + 1, i + 1] else 0)
                | (8 if below[j + 1, i] else 0)
            )
            pairs = _SEGMENTS[case]
            if case in (5, 10):
                center = 0.25 * (
                    padded[j, i] + padded[j, i + 1] + padded[j + 1, i] + padded[j + 1, i + 1]
                )
                center_below = center < level
                if case == 5:
                    pairs = [(3, 2), (1, 0)] if center_below else [(3, 0), (1, 2)]
                else:
                    pairs = [(0, 1), (2, 3)] if not center_below else [(0, 3), (2, 1)]
            for entry, exit_ in pairs:
                k_in, p_in = edge_point(j, i, entry)
                k_out, p_out = edge_point(j, i, exit_)
                links[k_in] = (k_out, p_in, p_out)

    # Chain segments into closed loops.
    polygons: List[Polygon] = []
    visited = set()
    for start in list(links):
        if start in visited:
            continue
        chain: List[Point] = []
        key = start
        while key not in visited:
            visited.add(key)
            nxt, p_in, _ = links[key]
            chain.append(p_in)
            if nxt not in links:
                break  # open chain (should not happen with padding)
            key = nxt
        if len(chain) >= 3 and key == start:
            try:
                polygons.append(Polygon(chain))
            except ValueError:
                pass  # degenerate sliver below resolution
    return polygons


def contours_of_latent(latent, threshold: Dimensionless) -> List[Polygon]:
    """Printed contours of a latent image (see :class:`ResistModel`)."""
    return marching_squares(
        latent.intensity, threshold, x0=latent.x0, y0=latent.y0, pixel=latent.pixel
    )
