"""Partially-coherent aerial-image computation.

Two engines compute the same Hopkins integral:

* **Abbe** (sum over source): one coherent image per source point.  Exact
  for the discretized source; used as the reference in tests.
* **SOCS** (sum of coherent systems): the transmission cross coefficients
  are assembled on the band-limited frequency support, eigendecomposed
  once per (grid, defocus) and cached; each aerial image then costs one
  FFT per retained kernel.  This is the production path, exactly as in
  the OPC tools of the paper's era.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.litho.pupil import Pupil
from repro.litho.raster import MaskGrid
from repro.litho.source import SourcePoint, make_source
from repro.pdk import LithoSettings
from repro.units import Dimensionless, Nanometers, NmPerPixel


@dataclass
class AerialImage:
    """Sampled image intensity over a simulation window (clear field = 1)."""

    x0: Nanometers
    y0: Nanometers
    pixel: NmPerPixel
    intensity: np.ndarray  # (ny, nx)

    @property
    def nx(self) -> int:
        return self.intensity.shape[1]

    @property
    def ny(self) -> int:
        return self.intensity.shape[0]

    def value_at(self, x: Nanometers, y: Nanometers) -> Dimensionless:
        """Bilinear interpolation at an arbitrary point (pixel centers)."""
        gx = (x - self.x0) / self.pixel - 0.5
        gy = (y - self.y0) / self.pixel - 0.5
        i0 = int(np.floor(gx))
        j0 = int(np.floor(gy))
        tx = gx - i0
        ty = gy - j0
        i0 = min(max(i0, 0), self.nx - 1)
        j0 = min(max(j0, 0), self.ny - 1)
        i1 = min(i0 + 1, self.nx - 1)
        j1 = min(j0 + 1, self.ny - 1)
        tx = min(max(tx, 0.0), 1.0)
        ty = min(max(ty, 0.0), 1.0)
        inten = self.intensity
        top = inten[j1, i0] * (1 - tx) + inten[j1, i1] * tx
        bottom = inten[j0, i0] * (1 - tx) + inten[j0, i1] * tx
        return float(bottom * (1 - ty) + top * ty)

    def values_at(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized bilinear interpolation (same convention as value_at)."""
        from scipy import ndimage

        cols = np.asarray(xs, dtype=float)
        rows = np.asarray(ys, dtype=float)
        coords = np.stack(
            [(rows - self.y0) / self.pixel - 0.5, (cols - self.x0) / self.pixel - 0.5]
        )
        return ndimage.map_coordinates(
            self.intensity, coords.reshape(2, -1), order=1, mode="nearest"
        ).reshape(np.shape(xs))

    def profile(
        self,
        x_start: Nanometers,
        y_start: Nanometers,
        x_end: Nanometers,
        y_end: Nanometers,
        samples: int = 64,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Intensity along a cutline; returns (distances, intensities)."""
        ts = np.linspace(0.0, 1.0, samples)
        xs = x_start + ts * (x_end - x_start)
        ys = y_start + ts * (y_end - y_start)
        values = self.values_at(xs, ys)
        length = float(np.hypot(x_end - x_start, y_end - y_start))
        return ts * length, values


class OpticalModel:
    """The imaging engine for one optical setup (source + lens)."""

    def __init__(
        self,
        settings: LithoSettings,
        zernike: Optional[Dict[str, float]] = None,
        max_kernels: int = 40,
        energy_cutoff: float = 0.998,
    ):
        self.settings = settings
        self.zernike = dict(zernike or {})
        self.max_kernels = max_kernels
        self.energy_cutoff = energy_cutoff
        self.source: List[SourcePoint] = make_source(settings)
        self._kernel_cache: Dict[tuple, tuple] = {}

    def __getstate__(self):
        """Pickle without the SOCS kernel cache.

        The cache is pure derived data and can be tens of megabytes;
        dropping it keeps worker dispatch cheap — each parallel worker
        rebuilds the kernels for its tile geometry exactly once.
        """
        state = self.__dict__.copy()
        state["_kernel_cache"] = {}
        return state

    # -- public API ----------------------------------------------------------

    def aerial_image(
        self,
        mask: MaskGrid,
        defocus_nm: float = 0.0,
        method: str = "socs",
        background: complex = 1.0,
        feature: complex = 0.0,
    ) -> AerialImage:
        """Image the ``mask`` grid (clear-field normalized to 1.0)."""
        transmission = mask.transmission(background=background, feature=feature)
        if method == "abbe":
            intensity = self._abbe(transmission, mask.pixel, defocus_nm)
        elif method == "socs":
            intensity = self._socs(transmission, mask.pixel, defocus_nm)
        else:
            raise ValueError(f"unknown imaging method {method!r}")
        return AerialImage(mask.x0, mask.y0, mask.pixel, intensity)

    def kernel_count(self, nx: int, ny: int, pixel: float, defocus_nm: float = 0.0) -> int:
        """Number of SOCS kernels retained for a grid (diagnostics)."""
        eigvals, _, _ = self._kernels(nx, ny, pixel, defocus_nm)
        return len(eigvals)

    # -- Abbe path -------------------------------------------------------------

    def _abbe(self, transmission: np.ndarray, pixel: float, defocus_nm: float) -> np.ndarray:
        ny, nx = transmission.shape
        fx = np.fft.fftfreq(nx, d=pixel)
        fy = np.fft.fftfreq(ny, d=pixel)
        fxg, fyg = np.meshgrid(fx, fy)
        pupil = Pupil(self.settings, defocus_nm, self.zernike)
        sigma_to_f = self.settings.numerical_aperture / self.settings.wavelength
        edge_width = self._pupil_edge_width(nx, ny, pixel)
        spectrum = np.fft.fft2(transmission)
        intensity = np.zeros((ny, nx))
        clear = 0.0
        for point in self.source:
            shifted = pupil.evaluate(
                fxg - point.sx * sigma_to_f, fyg - point.sy * sigma_to_f,
                edge_width=edge_width,
            )
            field = np.fft.ifft2(spectrum * shifted)
            intensity += point.weight * np.abs(field) ** 2
            clear += point.weight * abs(
                pupil.evaluate(
                    np.array([-point.sx * sigma_to_f]),
                    np.array([-point.sy * sigma_to_f]),
                    edge_width=edge_width,
                )[0]
            ) ** 2
        return intensity / clear

    def _pupil_edge_width(self, nx: int, ny: int, pixel: float) -> float:
        """Anti-aliasing span for the pupil cutoff: one frequency-grid cell,
        clamped so coarse grids (tiny windows) keep a physical pupil."""
        df = max(1.0 / (nx * pixel), 1.0 / (ny * pixel))
        f_max = self.settings.numerical_aperture / self.settings.wavelength
        return min(df, 0.12 * f_max)

    # -- SOCS path -------------------------------------------------------------

    def _socs(self, transmission: np.ndarray, pixel: float, defocus_nm: float) -> np.ndarray:
        ny, nx = transmission.shape
        eigvals, support, vectors = self._kernels(nx, ny, pixel, defocus_nm)
        spectrum = np.fft.fft2(transmission)
        masked_spectrum = spectrum[support]
        intensity = np.zeros((ny, nx))
        kernel_grid = np.zeros((ny, nx), dtype=complex)
        for value, vec in zip(eigvals, vectors):
            kernel_grid[:] = 0.0
            kernel_grid[support] = masked_spectrum * vec
            field = np.fft.ifft2(kernel_grid)
            intensity += value * np.abs(field) ** 2
        return intensity

    def _kernels(self, nx: int, ny: int, pixel: float, defocus_nm: float):
        """Cached TCC eigen-kernels for a grid geometry.

        Returns (eigvals, support_index_tuple, list_of_eigvecs); the clear
        field of the truncated kernel set is renormalized to exactly 1.
        """
        key = (nx, ny, round(pixel, 9), round(defocus_nm, 6),
               tuple(sorted(self.zernike.items())))
        if key in self._kernel_cache:
            return self._kernel_cache[key]

        fx = np.fft.fftfreq(nx, d=pixel)
        fy = np.fft.fftfreq(ny, d=pixel)
        fxg, fyg = np.meshgrid(fx, fy)
        sigma_to_f = self.settings.numerical_aperture / self.settings.wavelength
        f_support = (1.0 + self.settings.sigma_outer) * sigma_to_f * 1.0001
        support = np.nonzero(fxg * fxg + fyg * fyg <= f_support * f_support)
        sup_fx = fxg[support]
        sup_fy = fyg[support]
        n_sup = sup_fx.size

        pupil = Pupil(self.settings, defocus_nm, self.zernike)
        edge_width = self._pupil_edge_width(nx, ny, pixel)
        # Rows are conjugated so that (A^H A)[m, n] = sum_s w P(f_m - s) P*(f_n - s),
        # the Hopkins TCC orientation whose eigenvectors are the SOCS kernels.
        amplitudes = np.empty((len(self.source), n_sup), dtype=complex)
        for row, point in enumerate(self.source):
            amplitudes[row] = np.sqrt(point.weight) * np.conj(
                pupil.evaluate(sup_fx - point.sx * sigma_to_f, sup_fy - point.sy * sigma_to_f,
                               edge_width=edge_width)
            )
        # The TCC = A^H A has rank <= n_source_points, so its eigenpairs come
        # from the SVD of the small A matrix (n_src x n_sup) directly — far
        # cheaper than eigendecomposing the n_sup x n_sup TCC itself.
        _, singular, vh = np.linalg.svd(amplitudes, full_matrices=False)
        eigvals = singular ** 2
        total = eigvals.sum()
        keep = 1
        running = eigvals[0]
        while keep < min(self.max_kernels, len(eigvals)) and running < self.energy_cutoff * total:
            running += eigvals[keep]
            keep += 1

        kept_vals = eigvals[:keep]
        kept_vecs = [np.conj(vh[k]) for k in range(keep)]

        # Renormalize so a clear mask images to exactly 1.0 despite truncation.
        zero_index = np.nonzero((sup_fx == 0.0) & (sup_fy == 0.0))[0]
        clear = sum(
            val * abs(vec[zero_index[0]]) ** 2 for val, vec in zip(kept_vals, kept_vecs)
        ) if zero_index.size else 1.0
        if clear <= 0:
            raise RuntimeError("SOCS truncation lost the DC response")
        kept_vals = kept_vals / clear

        result = (kept_vals, support, kept_vecs)
        self._kernel_cache[key] = result
        return result
