"""Image-quality metrics: NILS and MEEF.

* **NILS** (normalized image log slope): ``w * d(ln I)/dx`` at the feature
  edge — the canonical dose-latitude predictor.  NILS > ~2 is considered
  manufacturable; low-NILS sites are the hotspots flexible design rules
  flag.
* **MEEF** (mask error enhancement factor): d(printed CD)/d(mask CD).  In
  the low-k1 regime MEEF > 1, so mask CD errors are amplified on wafer;
  OPC stability and mask-spec budgets both hinge on it.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.geometry import Polygon, Rect
from repro.litho.imaging import AerialImage
from repro.litho.resist import NOMINAL, ProcessCondition
from repro.litho.simulator import LithographySimulator, measure_cd_on_cutline
from repro.units import Dimensionless, Nanometers


def nils_at_edge(
    latent: AerialImage,
    x_edge: Nanometers,
    y: Nanometers,
    feature_width: Nanometers,
    span: Nanometers = 12.0,
    horizontal: bool = True,
) -> Dimensionless:
    """NILS at a vertical (default) feature edge located at ``x_edge``.

    The log-slope is estimated by central difference over ``span`` nm;
    ``feature_width`` normalizes it to the feature size.
    """
    if horizontal:
        lo = latent.value_at(x_edge - span / 2, y)
        hi = latent.value_at(x_edge + span / 2, y)
    else:
        lo = latent.value_at(y, x_edge - span / 2)
        hi = latent.value_at(y, x_edge + span / 2)
    if lo <= 0 or hi <= 0:
        return 0.0
    slope = (np.log(hi) - np.log(lo)) / span
    return float(feature_width * abs(slope))


def grating_nils(
    simulator: LithographySimulator,
    line_width: Nanometers,
    pitch: Nanometers,
    n_lines: int = 7,
    condition: ProcessCondition = NOMINAL,
) -> Dimensionless:
    """NILS of the center line of a grating at its drawn edge."""
    length = 10 * pitch
    lines = [
        Polygon.from_rect(
            Rect(i * pitch - line_width / 2, -length / 2,
                 i * pitch + line_width / 2, length / 2)
        )
        for i in range(-(n_lines // 2), n_lines // 2 + 1)
    ]
    region = Rect(-pitch / 2, -200, pitch / 2, 200)
    latent = simulator.latent_image(lines, region, condition)
    return nils_at_edge(latent, line_width / 2, 0.0, line_width)


def grating_meef(
    simulator: LithographySimulator,
    line_width: Nanometers,
    pitch: Nanometers,
    mask_bias: Nanometers = 2.0,
    n_lines: int = 7,
    condition: ProcessCondition = NOMINAL,
) -> Dimensionless:
    """MEEF of the center grating line via a symmetric mask-CD perturbation.

    All lines are biased together (the standard through-pitch MEEF
    definition): MEEF = (CD(+b) - CD(-b)) / (2b).
    """
    cds: List[float] = []
    for bias in (+mask_bias, -mask_bias):
        width = line_width + bias
        length = 10 * pitch
        lines = [
            Polygon.from_rect(
                Rect(i * pitch - width / 2, -length / 2,
                     i * pitch + width / 2, length / 2)
            )
            for i in range(-(n_lines // 2), n_lines // 2 + 1)
        ]
        region = Rect(-pitch / 2, -200, pitch / 2, 200)
        latent = simulator.latent_image(lines, region, condition)
        cds.append(measure_cd_on_cutline(
            latent, simulator.resist.threshold, -pitch / 2, pitch / 2, 0.0
        ))
    return (cds[0] - cds[1]) / (2 * mask_bias)


def dose_latitude_percent(
    simulator: LithographySimulator,
    line_width: Nanometers,
    pitch: Nanometers,
    cd_tolerance: Nanometers = None,
    probe_step: Dimensionless = 0.02,
    condition: ProcessCondition = NOMINAL,
) -> Dimensionless:
    """Exposure latitude: the +-dose range (in %) keeping the printed CD
    within ``cd_tolerance`` (default 10% of the drawn CD)."""
    if cd_tolerance is None:
        cd_tolerance = 0.1 * line_width
    length = 10 * pitch
    lines = [
        Polygon.from_rect(
            Rect(i * pitch - line_width / 2, -length / 2,
                 i * pitch + line_width / 2, length / 2)
        )
        for i in range(-3, 4)
    ]
    region = Rect(-pitch / 2, -200, pitch / 2, 200)
    nominal = _grating_cd(simulator, lines, region, condition)

    latitude = 0.0
    for sign in (+1, -1):
        step = 1
        while step * probe_step < 0.25:
            dose = condition.dose * (1 + sign * step * probe_step)
            probe = ProcessCondition(dose=dose, defocus_nm=condition.defocus_nm)
            cd = _grating_cd(simulator, lines, region, probe)
            if cd == 0.0 or abs(cd - nominal) > cd_tolerance:
                break
            step += 1
        latitude += (step - 1) * probe_step
    return 100.0 * latitude / 2.0  # average of the two sides, in percent


def _grating_cd(simulator, lines: Sequence[Polygon], region: Rect,
                condition: ProcessCondition) -> float:
    latent = simulator.latent_image(lines, region, condition)
    return measure_cd_on_cutline(
        latent, simulator.resist.threshold, region.x0, region.x1, 0.0
    )
