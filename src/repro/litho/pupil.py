"""Projection pupil with defocus and low-order Zernike aberrations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.pdk import LithoSettings
from repro.units import PerNanometer


@dataclass(frozen=True)
class Pupil:
    """The projection-lens pupil function.

    Evaluated on spatial-frequency grids (1/nm); the amplitude is a hard
    circular cutoff at NA/lambda and the phase carries defocus plus any
    Zernike terms.  ``zernike`` maps Noll-style names to coefficients in
    waves: supported terms are ``"spherical"`` (Z9), ``"astig"`` (Z5,
    0-degree astigmatism) and ``"coma_x"`` (Z7).
    """

    settings: LithoSettings
    defocus_nm: float = 0.0
    zernike: Dict[str, float] = field(default_factory=dict)

    def evaluate(
        self, fx: np.ndarray, fy: np.ndarray, edge_width: float = 0.0
    ) -> np.ndarray:
        """Complex pupil values at frequency coordinates (broadcastable).

        ``edge_width`` anti-aliases the hard NA cutoff over the given
        frequency span (callers pass their frequency-grid spacing); this
        suppresses simulation-window-size dependence caused by grid samples
        popping in and out of a binary pupil edge.
        """
        na = self.settings.numerical_aperture
        lam = self.settings.wavelength
        f_max = na / lam
        rho2 = (fx * fx + fy * fy) / (f_max * f_max)
        inside = rho2 <= 1.0 + 1e-12
        if edge_width > 0.0:
            rho_f = np.sqrt(fx * fx + fy * fy)
            amplitude = np.clip((f_max + edge_width / 2 - rho_f) / edge_width, 0.0, 1.0)
        else:
            amplitude = np.where(inside, 1.0, 0.0)

        opd = np.zeros(np.broadcast(fx, fy).shape, dtype=float)
        if self.defocus_nm:
            # Paraxial defocus OPD: 0.5 * z * NA^2 * rho^2 (nm).
            opd = opd + 0.5 * self.defocus_nm * na * na * rho2
        if self.zernike:
            rho = np.sqrt(np.clip(rho2, 0.0, 1.0))
            theta = np.arctan2(fy, fx)
            waves = np.zeros_like(opd)
            if "spherical" in self.zernike:
                waves += self.zernike["spherical"] * (6 * rho**4 - 6 * rho**2 + 1)
            if "astig" in self.zernike:
                waves += self.zernike["astig"] * (rho**2 * np.cos(2 * theta))
            if "coma_x" in self.zernike:
                waves += self.zernike["coma_x"] * ((3 * rho**3 - 2 * rho) * np.cos(theta))
            opd = opd + waves * lam

        phase = np.exp(1j * 2.0 * np.pi * opd / lam)
        if edge_width > 0.0:
            return amplitude * phase
        return np.where(inside, phase, 0.0 + 0.0j)

    @property
    def cutoff(self) -> PerNanometer:
        """Pupil cutoff frequency NA/lambda in 1/nm."""
        return self.settings.numerical_aperture / self.settings.wavelength
