"""Analytic-coverage mask rasterization.

OPC moves edges in 1 nm steps while the image grid is ~8 nm, so binary
(in/out) rasterization would quantize away the very corrections being
applied.  Rasterizing the rectangle decomposition with *analytic per-pixel
area coverage* makes the transmission grid an exact (band-unlimited)
sampling of the polygon indicator, accurate to machine precision for
Manhattan shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry import Polygon, Rect, decompose_rectilinear
from repro.units import Nanometers, NmPerPixel


@dataclass
class MaskGrid:
    """Pixel grid of polygon coverage over a simulation region.

    ``data[j, i]`` is the covered area fraction of the pixel whose lower
    left corner is ``(x0 + i*pixel, y0 + j*pixel)``.
    """

    x0: Nanometers
    y0: Nanometers
    pixel: NmPerPixel
    data: np.ndarray  # shape (ny, nx), float64 in [0, 1]

    @property
    def nx(self) -> int:
        return self.data.shape[1]

    @property
    def ny(self) -> int:
        return self.data.shape[0]

    @property
    def region(self) -> Rect:
        return Rect(
            self.x0, self.y0, self.x0 + self.nx * self.pixel, self.y0 + self.ny * self.pixel
        )

    def transmission(self, background: complex = 1.0, feature: complex = 0.0) -> np.ndarray:
        """Mask transmission: ``background`` where empty, ``feature`` where
        covered (a chrome-on-glass dark feature uses the defaults)."""
        return background * (1.0 - self.data) + feature * self.data

    def pixel_centers(self):
        """(x, y) center coordinate arrays, shapes (nx,), (ny,)."""
        xs = self.x0 + (np.arange(self.nx) + 0.5) * self.pixel
        ys = self.y0 + (np.arange(self.ny) + 0.5) * self.pixel
        return xs, ys


def _interval_coverage(a: Nanometers, b: Nanometers, start: Nanometers,
                       pixel: NmPerPixel, n: int) -> np.ndarray:
    """Fractional 1-D coverage of interval [a, b] over n bins of width
    ``pixel`` beginning at ``start``."""
    cov = np.zeros(n)
    if b <= a:
        return cov
    lo = (a - start) / pixel
    hi = (b - start) / pixel
    i0 = int(np.floor(lo))
    i1 = int(np.floor(hi))
    if i1 == hi and i1 > i0:
        i1 -= 1  # b exactly on a bin boundary belongs to the bin below
    i0c = max(i0, 0)
    i1c = min(i1, n - 1)
    if i0c > i1c:
        return cov
    if i0 == i1:
        cov[i0c] = hi - lo
        return cov
    cov[i0c:i1c + 1] = 1.0
    if i0 == i0c:
        cov[i0] = (i0 + 1) - lo
    if i1 == i1c:
        cov[i1] = hi - i1
    return cov


def rasterize(
    polygons: Sequence[Polygon], region: Rect, pixel: NmPerPixel
) -> MaskGrid:
    """Rasterize rectilinear ``polygons`` clipped to ``region``.

    The region is expanded to a whole number of pixels (anchored at its
    lower-left corner).
    """
    if pixel <= 0:
        raise ValueError("pixel must be positive")
    nx = max(1, int(np.ceil(region.width / pixel - 1e-9)))
    ny = max(1, int(np.ceil(region.height / pixel - 1e-9)))
    data = np.zeros((ny, nx))
    grid = MaskGrid(region.x0, region.y0, pixel, data)
    for poly in polygons:
        if poly.bbox.intersection(region) is None:
            continue
        for rect in decompose_rectilinear(poly):
            clipped = rect.intersection(grid.region)
            if clipped is None or clipped.area == 0.0:
                continue
            cx = _interval_coverage(clipped.x0, clipped.x1, region.x0, pixel, nx)
            cy = _interval_coverage(clipped.y0, clipped.y1, region.y0, pixel, ny)
            data += np.outer(cy, cx)
    np.clip(data, 0.0, 1.0, out=data)
    return grid


def rasterize_rects(rects: Sequence[Rect], region: Rect, pixel: NmPerPixel) -> MaskGrid:
    """Rasterize plain rectangles (no polygon decomposition step)."""
    polys = [Polygon.from_rect(r) for r in rects if not r.is_degenerate()]
    return rasterize(polys, region, pixel)
