"""Constant-threshold resist model with diffusion and dose/defocus handling.

The CTR (constant-threshold resist) model of the era: the aerial image is
blurred by a Gaussian (acid diffusion during post-exposure bake) and the
resist edge sits where the blurred, dose-scaled intensity crosses a fixed
threshold.  For the dark-feature layers studied here (poly gates), resist
*remains* where the image is below threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.litho.imaging import AerialImage
from repro.pdk import LithoSettings
from repro.units import Dimensionless


@dataclass(frozen=True)
class ProcessCondition:
    """One exposure condition of the process window."""

    dose: Dimensionless = 1.0       # relative to nominal
    defocus_nm: float = 0.0

    def __post_init__(self):
        if self.dose <= 0:
            raise ValueError("dose must be positive")

    @property
    def label(self) -> str:
        return f"dose={self.dose:.3f}, defocus={self.defocus_nm:.0f}nm"


NOMINAL = ProcessCondition()


@dataclass
class ResistModel:
    """CTR resist: Gaussian diffusion plus a dose-scaled threshold."""

    threshold: Dimensionless
    diffusion_nm: float = 20.0
    #: dark features (chrome lines) leave resist where intensity < threshold
    dark_feature: bool = True

    @staticmethod
    def from_settings(settings: LithoSettings) -> "ResistModel":
        return ResistModel(
            threshold=settings.resist_threshold,
            diffusion_nm=settings.resist_diffusion_nm,
        )

    def __post_init__(self):
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {self.threshold}")
        if self.diffusion_nm < 0:
            raise ValueError("diffusion must be non-negative")

    def latent_image(self, image: AerialImage, dose: Dimensionless = 1.0) -> AerialImage:
        """Diffused, dose-scaled image whose ``threshold`` level set is the
        resist edge."""
        blurred = image.intensity
        if self.diffusion_nm > 0:
            sigma_px = self.diffusion_nm / image.pixel
            blurred = ndimage.gaussian_filter(blurred, sigma=sigma_px, mode="nearest")
        return AerialImage(image.x0, image.y0, image.pixel, blurred * dose)

    def effective_threshold(self) -> Dimensionless:
        return self.threshold

    def develop(self, image: AerialImage, dose: Dimensionless = 1.0) -> np.ndarray:
        """Boolean resist map: True where resist (the printed feature) remains."""
        latent = self.latent_image(image, dose)
        if self.dark_feature:
            return latent.intensity < self.threshold
        return latent.intensity >= self.threshold

    def edge_level(self) -> Dimensionless:
        """The intensity level of the printed edge in the latent image."""
        return self.threshold
