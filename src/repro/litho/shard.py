"""Scale-aware litho sharding: large overlapping windows over a layout.

The classic tile decomposition (:meth:`LithographySimulator.plan_tiles`)
fixes the window at ``max_tile_px`` = 512 pixels; with the default 1200 nm
ambit halo, more than half of every 512-pixel window is halo, so most of
the FFT work images geometry whose results are thrown away.  A *shard* is
the same construction at a larger window — interior plus the same ambit —
so the fixed halo cost is amortized over a much larger valid interior.
Measured on this repo's SOCS stack (39 kernels, 8 nm pixels), 1024-pixel
windows cost ~2.2x less per unit interior area than the 512-pixel tile
path; beyond ~1024 pixels the N^2 log N FFT growth wins and the advantage
fades, hence :data:`DEFAULT_MAX_SHARD_PX`.

Shard interiors partition the region (row-major grid); every shard window
extends one ambit beyond its interior, so results sampled inside an
interior have full proximity context ("halo-stitched").  Shards are plain
picklable values dispatched through any ``map_chunks`` executor, and the
task list is deterministic, so serial and process-parallel dispatch of
the same plan are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.geometry import GridIndex, Polygon, Rect
from repro.litho.contour import contours_of_latent
from repro.litho.resist import NOMINAL, ProcessCondition
from repro.litho.simulator import LithographySimulator, TileSpec
from repro.units import Nanometers

#: largest shard window (pixels per side, halo included).  The sweet spot
#: of halo amortization vs FFT N^2 log N growth measured on this stack.
DEFAULT_MAX_SHARD_PX = 1024


@dataclass(frozen=True)
class ShardGrid:
    """A row-major partition of a region into shard interiors.

    ``conditions`` holds the already-resolved exposure condition of each
    shard (index ``j * nx + i``), so the grid is a plain picklable value —
    the same no-callables discipline as :class:`TileSpec`.
    """

    region: Rect
    nx: int
    ny: int
    conditions: Tuple[ProcessCondition, ...]

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError("shard grid needs nx, ny >= 1")
        if len(self.conditions) != self.nx * self.ny:
            raise ValueError("need one condition per shard")

    @property
    def count(self) -> int:
        return self.nx * self.ny

    @property
    def span_x(self) -> Nanometers:
        return self.region.width / self.nx

    @property
    def span_y(self) -> Nanometers:
        return self.region.height / self.ny

    def interior(self, index: int) -> Rect:
        """Interior rect of shard ``index`` (row-major)."""
        j, i = divmod(index, self.nx)
        if not 0 <= j < self.ny:
            raise IndexError(f"shard {index} outside {self.count}-shard grid")
        return Rect(
            self.region.x0 + i * self.span_x,
            self.region.y0 + j * self.span_y,
            self.region.x0 + (i + 1) * self.span_x,
            self.region.y0 + (j + 1) * self.span_y,
        )

    def locate(self, x: float, y: float) -> int:
        """Row-major index of the shard interior owning point (x, y).

        Half-open assignment (a point on a shared edge belongs to the
        higher shard, clamped at the region boundary), so every point maps
        to exactly one shard — the stitching rule that keeps shard results
        a partition.
        """
        i = min(self.nx - 1, max(0, int((x - self.region.x0) / self.span_x)))
        j = min(self.ny - 1, max(0, int((y - self.region.y0) / self.span_y)))
        return j * self.nx + i

    def spec(self, index: int) -> TileSpec:
        return TileSpec(interior=self.interior(index),
                        condition=self.conditions[index])


def plan_shard_grid(
    simulator: LithographySimulator,
    region: Rect,
    shards: int = 1,
    condition: ProcessCondition = NOMINAL,
    condition_fn: Any = None,
    max_shard_px: int = DEFAULT_MAX_SHARD_PX,
) -> ShardGrid:
    """Partition ``region`` into at least ``shards`` shard interiors.

    The grid is the coarsest one that (a) has at least ``shards`` cells
    and (b) keeps every window (interior + ambit) within ``max_shard_px``
    pixels per side.  Cells are uniform, so all windows quantize to the
    same pixel geometry and share one SOCS kernel cache entry.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    pixel = simulator.settings.pixel_nm
    span_cap = max_shard_px * pixel - 2 * simulator.ambit
    if span_cap <= 0:
        raise ValueError(
            f"max_shard_px={max_shard_px} cannot fit the "
            f"{simulator.ambit} nm ambit at {pixel} nm pixels"
        )
    nx = max(1, int(-(-region.width // span_cap)))
    ny = max(1, int(-(-region.height // span_cap)))
    while nx * ny < shards:
        if region.width / nx >= region.height / ny:
            nx += 1
        else:
            ny += 1
    conditions: List[ProcessCondition] = []
    probe = ShardGrid(region=region, nx=nx, ny=ny,
                      conditions=(condition,) * (nx * ny))
    for index in range(nx * ny):
        conditions.append(
            condition_fn(probe.interior(index)) if condition_fn else condition
        )
    return ShardGrid(region=region, nx=nx, ny=ny, conditions=tuple(conditions))


@dataclass(frozen=True)
class ShardContourTask:
    """Self-contained contour-extraction work for one shard (picklable)."""

    grid: ShardGrid
    index: int
    polygons: Tuple[Polygon, ...]


def plan_shard_contours(
    simulator: LithographySimulator,
    polygons: Sequence[Polygon],
    grid: ShardGrid,
) -> List[ShardContourTask]:
    """Pair each shard with the geometry its window needs."""
    index = GridIndex(cell_size=max(grid.span_x, grid.span_y, 1000.0))
    for poly in polygons:
        index.insert(poly.bbox, poly)
    tasks: List[ShardContourTask] = []
    for shard in range(grid.count):
        window = grid.interior(shard).expanded(simulator.ambit)
        local = index.query(window, strict=False)
        if not local:
            continue
        tasks.append(ShardContourTask(
            grid=grid, index=shard, polygons=tuple(local)))
    return tasks


def shard_contour_chunk(
    payload: Tuple[LithographySimulator, Sequence[ShardContourTask]],
) -> List[List[Polygon]]:
    """Chunk worker: printed contours owned by each shard in the chunk.

    A contour is *owned* by the shard whose interior contains its bbox
    center (:meth:`ShardGrid.locate`).  Adjacent windows extract the same
    boundary-straddling feature with sub-pixel coordinate differences (the
    quantized FFT windows differ), so a center within one pixel of a
    boundary could land on either side depending on which window measured
    it.  Each shard therefore also keeps contours in a one-pixel band
    around its interior — a deliberate overlap, never a loss — and
    :func:`stitched_printed_contours` suppresses the resulting
    near-duplicates.  Module-level and picklable for process-pool dispatch.
    """
    simulator, tasks = payload
    tol = simulator.settings.pixel_nm
    results: List[List[Polygon]] = []
    for task in tasks:
        spec = task.grid.spec(task.index)
        band = spec.interior.expanded(tol)
        latent = simulator.latent_image(
            list(task.polygons), spec.interior, spec.condition)
        contours = contours_of_latent(latent, simulator.resist.threshold)
        kept: List[Polygon] = []
        for c in contours:
            center = c.bbox.center
            if (task.grid.locate(center.x, center.y) == task.index
                    or band.contains_point(center)):
                kept.append(c)
        results.append(kept)
    return results


def stitched_printed_contours(
    simulator: LithographySimulator,
    polygons: Sequence[Polygon],
    region: Rect,
    shards: int = 1,
    condition: ProcessCondition = NOMINAL,
    condition_fn: Any = None,
    max_shard_px: int = DEFAULT_MAX_SHARD_PX,
    executor: Optional[Any] = None,
) -> List[Polygon]:
    """Printed contours of ``region`` via halo-stitched shards.

    ``executor`` is any ``map_chunks(worker, shared, tasks)`` object
    (duck-typed, like :func:`repro.metrology.measure_layout_gate_cds`);
    ``None`` runs serially.  Shards are independent and the task list is
    deterministic, so every backend returns the same contours in the same
    (row-major shard, extraction) order.

    Shards deliberately overlap by a one-pixel band at interior boundaries
    (see :func:`shard_contour_chunk`), so a feature straddling a boundary
    can arrive from both neighbours; the stitch keeps the first (row-major
    lowest shard) and drops later extractions whose centers sit within two
    pixels of one already kept — far below the resolvable feature pitch,
    so only re-extractions of the same feature are ever suppressed.
    """
    grid = plan_shard_grid(simulator, region, shards, condition,
                           condition_fn, max_shard_px)
    tasks = plan_shard_contours(simulator, polygons, grid)
    if executor is None:
        chunks = shard_contour_chunk((simulator, tasks))
    else:
        chunks = executor.map_chunks(shard_contour_chunk, simulator, tasks)
    tol = 2.0 * simulator.settings.pixel_nm
    stitched: List[Polygon] = []
    centers: List[Any] = []
    for kept in chunks:
        for contour in kept:
            center = contour.bbox.center
            if any(abs(center.x - c.x) < tol and abs(center.y - c.y) < tol
                   for c in centers):
                continue
            stitched.append(contour)
            centers.append(center)
    return stitched
