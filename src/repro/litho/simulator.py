"""High-level lithography driver: windows, tiling, calibration.

``LithographySimulator`` owns one optical model + resist model pair and
produces latent images (diffused, dose-scaled aerial images whose threshold
level-set is the resist edge) for arbitrary layout windows.  Large regions
are processed in overlapping tiles: each tile carries an *ambit* halo of
surrounding geometry so proximity effects are correct in the tile interior,
exactly how production OPC/verification tools partition a chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.geometry import GridIndex, Polygon, Rect
from repro.litho.contour import contours_of_latent
from repro.litho.imaging import AerialImage, OpticalModel
from repro.litho.raster import rasterize
from repro.litho.resist import NOMINAL, ProcessCondition, ResistModel
from repro.pdk import LithoSettings, Technology
from repro.units import Dimensionless, Nanometers

#: default interaction halo; ~4x lambda/NA — beyond the proximity range, and
#: big enough that periodic-replica (FFT wrap) CD noise stays under ~0.5 nm
DEFAULT_AMBIT = 1200.0


@dataclass
class TileResult:
    """Latent image of one tile plus the interior where results are valid."""

    latent: AerialImage
    interior: Rect


@dataclass(frozen=True)
class TileSpec:
    """One tile of a tiled simulation, before any imaging happens.

    The spec is a plain, picklable value — the work-list unit that
    parallel executors ship to worker processes.  ``condition`` is already
    resolved (per-tile ACLV maps are evaluated at planning time), so
    workers never see closures.
    """

    interior: Rect
    condition: ProcessCondition


class LithographySimulator:
    """Images layout polygons under a process condition."""

    def __init__(
        self,
        settings: LithoSettings,
        resist: Optional[ResistModel] = None,
        ambit: float = DEFAULT_AMBIT,
        max_tile_px: int = 512,
    ):
        self.settings = settings
        self.optics = OpticalModel(settings)
        self.resist = resist or ResistModel.from_settings(settings)
        self.ambit = ambit
        self.max_tile_px = max_tile_px

    @staticmethod
    def for_tech(tech: Technology, **kwargs) -> "LithographySimulator":
        return LithographySimulator(tech.litho, **kwargs)

    # -- single-window simulation ---------------------------------------------

    def latent_image(
        self,
        polygons: Sequence[Polygon],
        region: Rect,
        condition: ProcessCondition = NOMINAL,
        method: str = "socs",
    ) -> AerialImage:
        """Latent (diffused, dose-scaled) image over ``region`` plus ambit.

        The returned image covers the *expanded* window; sampling inside
        ``region`` is guaranteed free of FFT wrap-around artifacts.  Window
        dimensions are rounded up to a multiple of 64 pixels so repeated
        calls share cached SOCS kernels.
        """
        window = self._quantized_window(region)
        mask = rasterize(polygons, window, self.settings.pixel_nm)
        aerial = self.optics.aerial_image(
            mask,
            defocus_nm=condition.defocus_nm,
            method=method,
            feature=self.feature_amplitude,
        )
        return self.resist.latent_image(aerial, dose=condition.dose)

    @property
    def feature_amplitude(self) -> complex:
        """Mask amplitude inside drawn features.

        Binary chrome is opaque (0); an attenuated PSM absorber leaks a
        small, 180-degree-shifted field (-sqrt(T)) that steepens the image
        slope at feature edges.
        """
        if self.settings.mask_type == "binary":
            return 0.0
        if self.settings.mask_type == "attpsm":
            return -(self.settings.psm_transmission ** 0.5)
        raise ValueError(f"unknown mask_type {self.settings.mask_type!r}")

    def _quantized_window(self, region: Rect, quantum_px: int = 64) -> Rect:
        """Region plus ambit, grown (symmetrically) to a pixel-count multiple
        of ``quantum_px`` so the SOCS kernel cache is reused across calls."""
        pixel = self.settings.pixel_nm
        window = region.expanded(self.ambit)
        nx = int(-(-window.width // (quantum_px * pixel))) * quantum_px
        ny = int(-(-window.height // (quantum_px * pixel))) * quantum_px
        grow_x = (nx * pixel - window.width) / 2
        grow_y = (ny * pixel - window.height) / 2
        return Rect(
            window.x0 - grow_x, window.y0 - grow_y,
            window.x1 + grow_x, window.y1 + grow_y,
        )

    def printed_contours(
        self,
        polygons: Sequence[Polygon],
        region: Rect,
        condition: ProcessCondition = NOMINAL,
    ) -> List[Polygon]:
        """Printed resist contours whose bbox intersects ``region``."""
        latent = self.latent_image(polygons, region, condition)
        contours = contours_of_latent(latent, self.resist.threshold)
        return [c for c in contours if c.bbox.intersection(region) is not None]

    # -- tiled full-layout simulation -------------------------------------------

    @property
    def tile_span(self) -> float:
        """Interior side length of one simulation tile."""
        span = self.max_tile_px * self.settings.pixel_nm - 2 * self.ambit
        if span <= 0:
            raise ValueError("max_tile_px too small for the ambit")
        return span

    def plan_tiles(
        self,
        region: Rect,
        condition: ProcessCondition = NOMINAL,
        condition_fn=None,
    ) -> List[TileSpec]:
        """The tile decomposition of ``region`` as a picklable work-list.

        Tile interiors partition ``region``; each tile's exposure condition
        is resolved here (``condition_fn`` maps an interior Rect to its own
        :class:`ProcessCondition` for across-chip dose/defocus maps), so the
        specs carry no callables.
        """
        span = self.tile_span
        nx = max(1, int(-(-region.width // span)))
        ny = max(1, int(-(-region.height // span)))
        specs: List[TileSpec] = []
        for j in range(ny):
            for i in range(nx):
                interior = Rect(
                    region.x0 + i * span,
                    region.y0 + j * span,
                    min(region.x0 + (i + 1) * span, region.x1),
                    min(region.y0 + (j + 1) * span, region.y1),
                )
                if interior.width == 0 or interior.height == 0:
                    continue
                tile_condition = condition_fn(interior) if condition_fn else condition
                specs.append(TileSpec(interior=interior, condition=tile_condition))
        return specs

    def tile_workload(
        self,
        polygons: Sequence[Polygon],
        region: Rect,
        condition: ProcessCondition = NOMINAL,
        condition_fn=None,
    ) -> List[Tuple[TileSpec, List[Polygon]]]:
        """Tile specs paired with the geometry each tile needs.

        Each tile gets every polygon whose bbox touches its ambit-expanded
        window — a self-contained, picklable unit of work for a parallel
        executor.
        """
        specs = self.plan_tiles(region, condition, condition_fn)
        index = GridIndex(cell_size=max(self.tile_span, 1000.0))
        for poly in polygons:
            index.insert(poly.bbox, poly)
        return [
            (spec, index.query(spec.interior.expanded(self.ambit), strict=False))
            for spec in specs
        ]

    def simulate_tile(self, spec: TileSpec, polygons: Sequence[Polygon]) -> TileResult:
        """Image one planned tile (the work a parallel worker performs)."""
        latent = self.latent_image(polygons, spec.interior, spec.condition)
        return TileResult(latent=latent, interior=spec.interior)

    def iter_tiles(
        self,
        polygons: Sequence[Polygon],
        region: Rect,
        condition: ProcessCondition = NOMINAL,
        condition_fn=None,
    ) -> Iterator[TileResult]:
        """Simulate ``region`` in tiles; yields latent images with interiors.

        Tile interiors partition ``region``; the latent image of each tile
        extends one ambit beyond its interior on every side.
        """
        for spec, local in self.tile_workload(polygons, region, condition, condition_fn):
            yield self.simulate_tile(spec, local)

    # -- calibration --------------------------------------------------------------

    def calibrate_to_anchor(
        self,
        line_width: Nanometers,
        pitch: Nanometers,
        n_lines: int = 7,
        condition: ProcessCondition = NOMINAL,
    ) -> Dimensionless:
        """Re-anchor the resist threshold so the anchor grating prints on
        target.

        Production CTR models are calibrated so that a chosen anchor feature
        (here: a dense line of the gate layer) prints at its drawn CD at the
        nominal condition.  Returns the new threshold (and installs it).
        """
        # Build one exact period count so the FFT wrap-around continues the
        # grating seamlessly: the anchor is a truly infinite dense grating.
        pixel = self.settings.pixel_nm
        half_lines = max(n_lines // 2, 3)
        window = Rect(
            -(half_lines + 0.5) * pitch, -(half_lines + 0.5) * pitch,
            (half_lines + 0.5) * pitch, (half_lines + 0.5) * pitch,
        )
        lines = [
            Polygon.from_rect(
                Rect(i * pitch - line_width / 2, window.y0,
                     i * pitch + line_width / 2, window.y1)
            )
            for i in range(-half_lines, half_lines + 1)
        ]
        mask = rasterize(lines, window, pixel)
        aerial = self.optics.aerial_image(
            mask, defocus_nm=condition.defocus_nm, feature=self.feature_amplitude
        )
        latent = self.resist.latent_image(aerial, dose=condition.dose)
        edge = latent.value_at(line_width / 2, 0.0)
        if not 0.0 < edge < 1.0:
            raise RuntimeError(f"anchor edge intensity {edge} outside (0, 1)")
        self.resist = ResistModel(
            threshold=edge,
            diffusion_nm=self.resist.diffusion_nm,
            dark_feature=self.resist.dark_feature,
        )
        return edge


def cd_through_pitch(
    simulator: LithographySimulator,
    line_width: float,
    pitches: Sequence[float],
    condition: ProcessCondition = NOMINAL,
    n_lines: int = 7,
) -> List[Tuple[float, float]]:
    """Printed CD of the center line of a grating, versus pitch.

    The classic proximity signature: iso-dense bias through pitch.
    Returns (pitch, printed CD) pairs measured on a horizontal cutline.
    """
    results = []
    for pitch in pitches:
        length = 8 * max(pitches)
        lines = [
            Polygon.from_rect(
                Rect(i * pitch - line_width / 2, -length / 2,
                     i * pitch + line_width / 2, length / 2)
            )
            for i in range(-(n_lines // 2), n_lines // 2 + 1)
        ]
        region = Rect(-pitch / 2, -200, pitch / 2, 200)
        latent = simulator.latent_image(lines, region, condition)
        cd = measure_cd_on_cutline(
            latent, simulator.resist.threshold,
            x_start=-pitch / 2, x_end=pitch / 2, y=0.0,
        )
        results.append((pitch, cd))
    return results


def measure_cd_on_cutline(
    latent: AerialImage,
    threshold: Dimensionless,
    x_start: Nanometers,
    x_end: Nanometers,
    y: Nanometers,
    samples: int = 256,
) -> Nanometers:
    """Width of the below-threshold (dark feature) span on a horizontal
    cutline, located with linear sub-sample interpolation.

    Returns 0.0 if the feature does not print (no below-threshold span).
    """
    positions, values = latent.profile(x_start, y, x_end, y, samples)
    below = values < threshold
    if not below.any():
        return 0.0
    first = int(below.argmax())
    last = len(below) - 1 - int(below[::-1].argmax())
    left = positions[first]
    if first > 0:
        v0, v1 = values[first - 1], values[first]
        t = (threshold - v0) / (v1 - v0)
        left = positions[first - 1] + t * (positions[first] - positions[first - 1])
    right = positions[last]
    if last < len(positions) - 1:
        v0, v1 = values[last], values[last + 1]
        t = (threshold - v0) / (v1 - v0)
        right = positions[last] + t * (positions[last + 1] - positions[last])
    return float(right - left)
