"""Illumination source models.

A source is discretized into weighted points in the sigma plane (pupil
coordinates, |sigma| = 1 at the condenser NA edge).  The Abbe imaging loop
integrates one coherent image per point; the TCC/SOCS builder integrates
the same points into the transmission cross coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.pdk import LithoSettings


@dataclass(frozen=True)
class SourcePoint:
    """One illumination direction: sigma coordinates plus its weight."""

    sx: float
    sy: float
    weight: float


def make_source(settings: LithoSettings) -> List[SourcePoint]:
    """Discretize the illumination shape of ``settings`` into source points.

    Points are laid on a ``source_grid`` x ``source_grid`` Cartesian grid
    over the unit sigma square; points outside the shape are discarded and
    the surviving weights normalized to sum to one (so an unpatterned clear
    mask images to intensity 1.0).
    """
    n = settings.source_grid
    if n < 1:
        raise ValueError("source_grid must be >= 1")
    if not 0.0 < settings.sigma_outer <= 1.0:
        raise ValueError(f"sigma_outer must be in (0, 1], got {settings.sigma_outer}")

    if n == 1:
        coords = [0.0]
    else:
        step = 2.0 / (n - 1)
        coords = [-1.0 + i * step for i in range(n)]

    accept = _shape_predicate(settings)
    points = [
        SourcePoint(sx, sy, 1.0)
        for sx in coords
        for sy in coords
        if accept(sx, sy)
    ]
    if not points:
        raise ValueError(
            f"source discretization produced no points for {settings.source_type} "
            f"(grid {n}, sigma {settings.sigma_inner}/{settings.sigma_outer})"
        )
    total = sum(p.weight for p in points)
    return [SourcePoint(p.sx, p.sy, p.weight / total) for p in points]


def _shape_predicate(settings: LithoSettings):
    outer = settings.sigma_outer
    inner = settings.sigma_inner
    kind = settings.source_type
    if kind == "conventional":
        return lambda sx, sy: sx * sx + sy * sy <= outer * outer + 1e-12
    if kind == "annular":
        if not 0.0 <= inner < outer:
            raise ValueError(f"need 0 <= sigma_inner < sigma_outer, got {inner}/{outer}")
        return lambda sx, sy: (
            inner * inner - 1e-12 <= sx * sx + sy * sy <= outer * outer + 1e-12
        )
    if kind == "quadrupole":
        # Four poles on the diagonals (cQuad-style), radius from the sigma span.
        radius = max((outer - inner) / 2, 0.1)
        center = (outer + inner) / 2 / 2 ** 0.5
        centers = [(center, center), (-center, center), (center, -center), (-center, -center)]
        return lambda sx, sy: any(
            (sx - cx) ** 2 + (sy - cy) ** 2 <= radius * radius + 1e-12 for cx, cy in centers
        )
    raise ValueError(f"unknown source_type {kind!r}")
