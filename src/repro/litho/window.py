"""Process-window extraction (Bossung analysis).

Sweeps the dose x defocus plane, records the printed CD of a target
feature, and extracts the classical process-window summary: per-focus
exposure latitude, and the depth of focus available at a required
exposure latitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.geometry import Polygon, Rect
from repro.litho.resist import ProcessCondition
from repro.litho.simulator import LithographySimulator, measure_cd_on_cutline
from repro.units import Dimensionless, Nanometers


@dataclass
class BossungData:
    """CD(dose, defocus) samples for one feature."""

    line_width: float
    pitch: float
    #: (dose, defocus) -> printed CD
    cd: Dict[Tuple[float, float], float] = field(default_factory=dict)

    def doses(self) -> List[float]:
        return sorted({d for d, _ in self.cd})

    def defoci(self) -> List[float]:
        return sorted({z for _, z in self.cd})

    def curve_at_defocus(self, defocus: float) -> List[Tuple[float, float]]:
        """(dose, CD) points of one Bossung curve."""
        return sorted(
            (dose, cd) for (dose, z), cd in self.cd.items() if z == defocus
        )


def bossung_data(
    simulator: LithographySimulator,
    line_width: float,
    pitch: float,
    doses: Sequence[float] = (0.92, 0.96, 1.0, 1.04, 1.08),
    defoci: Sequence[float] = (0.0, 100.0, 200.0, 300.0),
    n_lines: int = 7,
) -> BossungData:
    """Measure the grating CD over the full dose x defocus grid."""
    length = 10 * pitch
    lines = [
        Polygon.from_rect(
            Rect(i * pitch - line_width / 2, -length / 2,
                 i * pitch + line_width / 2, length / 2)
        )
        for i in range(-(n_lines // 2), n_lines // 2 + 1)
    ]
    region = Rect(-pitch / 2, -200, pitch / 2, 200)
    data = BossungData(line_width=line_width, pitch=pitch)
    for defocus in defoci:
        for dose in doses:
            latent = simulator.latent_image(
                lines, region, ProcessCondition(dose=dose, defocus_nm=defocus)
            )
            data.cd[(dose, defocus)] = measure_cd_on_cutline(
                latent, simulator.resist.threshold, -pitch / 2, pitch / 2, 0.0
            )
    return data


@dataclass(frozen=True)
class ProcessWindow:
    """Per-defocus exposure latitude, and the overall depth of focus."""

    cd_tolerance: Nanometers
    #: defocus -> (min passing dose, max passing dose); missing = no window
    latitude: Dict[float, Tuple[float, float]]

    def exposure_latitude_percent(self, defocus: Nanometers) -> Dimensionless:
        if defocus not in self.latitude:
            return 0.0
        lo, hi = self.latitude[defocus]
        return 100.0 * (hi - lo) / ((hi + lo) / 2)

    def depth_of_focus(self, min_latitude_percent: Dimensionless = 3.0) -> Nanometers:
        """Largest defocus still offering the required exposure latitude.

        Defocus is sampled one-sided (the pupil is symmetric in z to first
        order), so the usable DOF is twice the returned value.
        """
        passing = [
            z for z in self.latitude
            if self.exposure_latitude_percent(z) >= min_latitude_percent
        ]
        return max(passing) if passing else 0.0


def extract_process_window(
    data: BossungData, cd_tolerance_fraction: float = 0.1
) -> ProcessWindow:
    """The dose range keeping |CD - drawn| within tolerance, per defocus."""
    tolerance = cd_tolerance_fraction * data.line_width
    latitude: Dict[float, Tuple[float, float]] = {}
    for defocus in data.defoci():
        passing = [
            dose for dose, cd in data.curve_at_defocus(defocus)
            if cd > 0 and abs(cd - data.line_width) <= tolerance
        ]
        if passing:
            latitude[defocus] = (min(passing), max(passing))
    return ProcessWindow(cd_tolerance=tolerance, latitude=latitude)
