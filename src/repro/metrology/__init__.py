"""Design-based metrology: printed gate-CD extraction and statistics."""

from repro.metrology.gate_cd import (
    GateCdMeasurement,
    MetrologyTileTask,
    measure_gate_cds,
    measurement_fault,
    measure_layout_gate_cds,
    measure_tile_chunk,
    plan_metrology_tiles,
    quarantine_measurements,
)
from repro.metrology.shard import plan_metrology_shards
from repro.metrology.sites import MetrologySite, select_sites
from repro.metrology.statistics import CdStatistics, summarize_cds

__all__ = [
    "GateCdMeasurement",
    "MetrologyTileTask",
    "measure_gate_cds",
    "measurement_fault",
    "measure_layout_gate_cds",
    "measure_tile_chunk",
    "plan_metrology_tiles",
    "plan_metrology_shards",
    "quarantine_measurements",
    "MetrologySite",
    "select_sites",
    "CdStatistics",
    "summarize_cds",
]
