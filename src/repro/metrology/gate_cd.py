"""Printed gate-CD extraction.

This is the paper's "post-OPC extraction of critical dimensions": for every
transistor of every placed gate, cutlines across the printed poly image
measure the local channel length.  Several slices along the gate width
capture the non-rectangular printed shape (corner rounding, flare near the
gate contact), feeding the non-rectangular-transistor model downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.geometry import Polygon, Rect
from repro.litho.imaging import AerialImage
from repro.litho.resist import NOMINAL, ProcessCondition
from repro.litho.simulator import LithographySimulator, TileSpec
from repro.units import Dimensionless, Nanometers


@dataclass
class GateCdMeasurement:
    """Printed CDs of one transistor gate.

    ``slice_positions`` run along the gate width (the transistor W axis),
    each with the locally measured channel length in ``slice_cds``.  A CD of
    0.0 records a catastrophic open (the gate did not print at that slice).
    """

    gate_rect: Rect
    drawn_cd: Nanometers
    slice_positions: List[float] = field(default_factory=list)
    slice_cds: List[float] = field(default_factory=list)

    @property
    def mid_cd(self) -> Nanometers:
        """CD at the slice closest to the middle of the gate width."""
        if not self.slice_cds:
            return float("nan")
        middle = (self.slice_positions[0] + self.slice_positions[-1]) / 2
        index = int(np.argmin([abs(p - middle) for p in self.slice_positions]))
        return self.slice_cds[index]

    @property
    def mean_cd(self) -> Nanometers:
        return float(np.mean(self.slice_cds)) if self.slice_cds else float("nan")

    @property
    def min_cd(self) -> Nanometers:
        return float(np.min(self.slice_cds)) if self.slice_cds else float("nan")

    @property
    def cd_range(self) -> Nanometers:
        if not self.slice_cds:
            return float("nan")
        return float(np.max(self.slice_cds) - np.min(self.slice_cds))

    @property
    def printed(self) -> bool:
        return bool(self.slice_cds) and all(cd > 0 for cd in self.slice_cds)

    @property
    def error(self) -> Nanometers:
        """Mean printed-minus-drawn CD error."""
        return self.mean_cd - self.drawn_cd

    def slice_widths(self) -> List[float]:
        """Width (along W) represented by each slice, for current weighting."""
        n = len(self.slice_positions)
        if n == 0:
            return []
        total = self.gate_rect.height if self.gate_rect.height >= self.gate_rect.width \
            else self.gate_rect.width
        return [total / n] * n


def _span_containing_center(
    positions: np.ndarray,
    values: np.ndarray,
    threshold: Dimensionless,
    center: Nanometers,
) -> Nanometers:
    """Width of the below-threshold span that contains ``center``.

    Unlike a global dark-span measure, this rejects neighbouring gates that
    share the cutline.  Returns 0.0 if the image at ``center`` is cleared
    (catastrophic open).

    Fully vectorized (this runs once per slice per gate, so per-element
    python dispatch dominated metrology time on multi-thousand-gate
    layouts); elementwise float64 arithmetic is exactly rounded, so the
    crossings are bit-identical to the per-segment loop it replaced.
    """
    center_value = np.interp(center, positions, values)
    if center_value >= threshold:
        return 0.0
    v0, v1 = values[:-1], values[1:]
    deltas = values - threshold
    cross = (deltas[:-1] * deltas[1:] <= 0.0) & (v0 != v1)
    t = (threshold - v0[cross]) / (v1[cross] - v0[cross])
    p0 = positions[:-1][cross]
    crossings = p0 + t * (positions[1:][cross] - p0)
    left = crossings[crossings <= center]
    right = crossings[crossings >= center]
    left_edge = left.max() if left.size else positions[0]
    right_edge = right.min() if right.size else positions[-1]
    return float(right_edge - left_edge)


def measure_gate_cds(
    latent: AerialImage,
    threshold: Dimensionless,
    gate_rects: Mapping[Hashable, Rect],
    n_slices: int = 5,
    edge_margin: Nanometers = 20.0,
    search: Nanometers = 80.0,
    samples: int = 96,
) -> Dict[Hashable, GateCdMeasurement]:
    """Measure printed CDs for gates whose rects lie inside ``latent``.

    The channel-length axis is the *short* axis of the gate rect; slices
    are stationed along the long axis, inset by ``edge_margin`` from the
    active edges to avoid endcap rounding.
    """
    results: Dict[Hashable, GateCdMeasurement] = {}
    for key, rect in gate_rects.items():
        vertical_gate = rect.height >= rect.width  # channel along x
        drawn = rect.width if vertical_gate else rect.height
        length_axis = rect.height if vertical_gate else rect.width
        measurement = GateCdMeasurement(gate_rect=rect, drawn_cd=drawn)
        span = length_axis - 2 * edge_margin
        if span <= 0 or n_slices < 1:
            stations = [length_axis / 2]
        else:
            stations = list(np.linspace(edge_margin, length_axis - edge_margin, n_slices))
        for station in stations:
            if vertical_gate:
                y = rect.y0 + station
                xs = np.linspace(rect.x0 - search, rect.x1 + search, samples)
                ys = np.full(samples, y)
                positions = xs
                center = rect.center.x
            else:
                x = rect.x0 + station
                ys = np.linspace(rect.y0 - search, rect.y1 + search, samples)
                xs = np.full(samples, x)
                positions = ys
                center = rect.center.y
            values = latent.values_at(xs, ys)
            cd = _span_containing_center(positions, values, threshold, center)
            measurement.slice_positions.append(station)
            measurement.slice_cds.append(cd)
        results[key] = measurement
    return results


#: printed-CD sanity band as multiples of the drawn CD: a measurement
#: whose mean printed CD falls outside ``[lo * drawn, hi * drawn]`` is
#: untrustworthy (wrong feature captured, contour artifact) and is
#: quarantined rather than back-annotated.  Catastrophic opens (CD 0.0)
#: are *not* quarantined — they are real printability failures, reported
#: through the failed-gate path.
QUARANTINE_BAND = (0.25, 4.0)


def measurement_fault(
    measurement: GateCdMeasurement,
    band: Tuple[float, float] = QUARANTINE_BAND,
) -> Optional[str]:
    """Why this measurement cannot be trusted (``None`` if it is sound).

    Faults: no contour slices at all, a non-finite or negative CD, a
    non-positive drawn reference, or a mean printed CD outside ``band``
    times the drawn CD.  Zero CDs (the gate did not print) are sound
    data — the printability-failure path owns those.
    """
    if not measurement.slice_cds:
        return "no contour slices measured"
    cds = np.asarray(measurement.slice_cds, dtype=float)
    if not np.all(np.isfinite(cds)):
        return "non-finite CD slice"
    if np.any(cds < 0):
        return "negative CD slice"
    if not (measurement.drawn_cd > 0):
        return f"non-positive drawn CD ({measurement.drawn_cd!r})"
    printed = cds[cds > 0]
    if printed.size:
        mean = float(printed.mean())
        lo, hi = band
        if not (lo * measurement.drawn_cd <= mean <= hi * measurement.drawn_cd):
            return (
                f"printed CD {mean:.1f} nm outside "
                f"[{lo:g}x, {hi:g}x] of drawn {measurement.drawn_cd:.1f} nm"
            )
    return None


def quarantine_measurements(
    measurements: Mapping[Hashable, GateCdMeasurement],
    band: Tuple[float, float] = QUARANTINE_BAND,
) -> Tuple[Dict[Hashable, GateCdMeasurement], Dict[Hashable, str]]:
    """Split measurements into (sound, quarantined-with-reason).

    Quarantined sites fall back to drawn CDs downstream (the derate
    builder treats a missing measurement as drawn), so one garbled
    extraction degrades coverage instead of aborting the run.
    """
    clean: Dict[Hashable, GateCdMeasurement] = {}
    faults: Dict[Hashable, str] = {}
    for key, measurement in measurements.items():
        fault = measurement_fault(measurement, band)
        if fault is None:
            clean[key] = measurement
        else:
            faults[key] = fault
    return clean, faults


@dataclass(frozen=True)
class MetrologyTileTask:
    """Self-contained metrology work for one tile (picklable)."""

    spec: TileSpec
    polygons: Tuple[Polygon, ...]
    gate_rects: Tuple[Tuple[Hashable, Rect], ...]
    n_slices: int


def plan_metrology_tiles(
    simulator: LithographySimulator,
    mask_polygons: Sequence[Polygon],
    gate_rects: Mapping[Hashable, Rect],
    condition: ProcessCondition = NOMINAL,
    region: Optional[Rect] = None,
    n_slices: int = 5,
    condition_fn: Optional[Callable[[Rect], ProcessCondition]] = None,
) -> List[MetrologyTileTask]:
    """Extract the per-tile metrology work-list.

    Each gate is assigned to the tile whose interior contains its center
    (first tile wins on boundaries, matching the serial scan order), so
    every measurement has a full ambit of real context.  Tiles with no
    gates produce no task — they are never simulated.
    """
    if region is None:
        boxes = [r for r in gate_rects.values()]
        if not boxes:
            return []
        region = Rect.bounding(boxes).expanded(simulator.settings.pixel_nm)
    pending = dict(gate_rects)
    tasks: List[MetrologyTileTask] = []
    for spec, local_polys in simulator.tile_workload(
        mask_polygons, region, condition, condition_fn=condition_fn
    ):
        local = {
            key: rect
            for key, rect in pending.items()
            if spec.interior.contains_point(rect.center)
        }
        if not local:
            continue
        for key in local:
            del pending[key]
        tasks.append(MetrologyTileTask(
            spec=spec,
            polygons=tuple(local_polys),
            gate_rects=tuple(local.items()),
            n_slices=n_slices,
        ))
    return tasks


def measure_tile_chunk(
    payload: Tuple[LithographySimulator, Sequence[MetrologyTileTask]],
) -> List[Dict[Hashable, GateCdMeasurement]]:
    """Chunk worker: measure a list of tiles with one simulator.

    ``payload`` is ``(simulator, [MetrologyTileTask, ...])``.  Module-level
    and fully picklable so process-pool executors can dispatch it; each
    worker builds its SOCS kernel cache on the first tile and reuses it
    for the rest of the chunk.
    """
    simulator, tasks = payload
    results: List[Dict[Hashable, GateCdMeasurement]] = []
    for task in tasks:
        tile = simulator.simulate_tile(task.spec, list(task.polygons))
        results.append(measure_gate_cds(
            tile.latent,
            simulator.resist.threshold,
            dict(task.gate_rects),
            n_slices=task.n_slices,
        ))
    return results


def measure_layout_gate_cds(
    simulator: LithographySimulator,
    mask_polygons: Sequence[Polygon],
    gate_rects: Mapping[Hashable, Rect],
    condition: ProcessCondition = NOMINAL,
    region: Optional[Rect] = None,
    n_slices: int = 5,
    condition_fn: Optional[Callable[[Rect], ProcessCondition]] = None,
    executor: Optional[Any] = None,
) -> Dict[Hashable, GateCdMeasurement]:
    """Full-layout gate metrology via tiled simulation.

    An optional ``condition_fn`` gives each tile its own exposure
    condition (ACLV).  ``executor`` is any object with the
    ``map_chunks(worker, shared, tasks)`` protocol of
    ``repro.flow.parallel.ParallelExecutor`` (duck-typed — this layer
    never imports the flow); ``None`` runs serially.  Tiles are
    independent, so every backend returns bit-identical measurements.
    """
    tasks = plan_metrology_tiles(
        simulator, mask_polygons, gate_rects, condition, region, n_slices,
        condition_fn=condition_fn,
    )
    if executor is None:
        tile_results = measure_tile_chunk((simulator, tasks))
    else:
        tile_results = executor.map_chunks(measure_tile_chunk, simulator, tasks)
    results: Dict[Hashable, GateCdMeasurement] = {}
    for measured in tile_results:
        results.update(measured)
    return results
