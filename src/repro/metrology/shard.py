"""Shard-based full-layout gate metrology.

The tile planner (:func:`repro.metrology.plan_metrology_tiles`) walks
every tile over the remaining un-assigned gates — an O(tiles x gates)
scan whose planning time alone dominates at a few thousand gates — and
its 512-pixel windows spend most of their FFT work on the ambit halo.
The shard planner fixes both: gates are binned to shards in O(gates) via
:meth:`ShardGrid.locate` arithmetic, and the windows are the large
halo-amortizing shards of :mod:`repro.litho.shard`.

Shard tasks reuse :class:`MetrologyTileTask` and the
:func:`measure_tile_chunk` worker unchanged — a shard *is* a tile spec
with a bigger interior — so every ``map_chunks`` backend (serial, thread,
process) returns bit-identical measurements for the same plan.  Note the
measured CD values differ slightly from the 512-pixel tile path (the FFT
window geometry differs), which is why the flow keys its cache on the
shard count.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.geometry import GridIndex, Polygon, Rect
from repro.litho.resist import NOMINAL, ProcessCondition
from repro.litho.shard import DEFAULT_MAX_SHARD_PX, plan_shard_grid
from repro.litho.simulator import LithographySimulator
from repro.metrology.gate_cd import MetrologyTileTask


def plan_metrology_shards(
    simulator: LithographySimulator,
    mask_polygons: Sequence[Polygon],
    gate_rects: Mapping[Hashable, Rect],
    shards: int = 1,
    condition: ProcessCondition = NOMINAL,
    region: Optional[Rect] = None,
    n_slices: int = 5,
    condition_fn: Optional[Callable[[Rect], ProcessCondition]] = None,
    max_shard_px: int = DEFAULT_MAX_SHARD_PX,
) -> List[MetrologyTileTask]:
    """The per-shard metrology work-list (picklable, deterministic).

    Each gate is assigned to the unique shard whose interior owns its
    center (half-open grid arithmetic — no boundary double-counting), and
    every shard window carries a full ambit of real geometry, so each
    measurement has complete proximity context.  Shards with no gates
    produce no task and are never simulated.
    """
    if region is None:
        boxes = [r for r in gate_rects.values()]
        if not boxes:
            return []
        region = Rect.bounding(boxes).expanded(simulator.settings.pixel_nm)
    grid = plan_shard_grid(simulator, region, shards, condition,
                           condition_fn, max_shard_px)

    by_shard: Dict[int, List[Tuple[Hashable, Rect]]] = {}
    for key, rect in gate_rects.items():
        center = rect.center
        by_shard.setdefault(grid.locate(center.x, center.y), []).append(
            (key, rect))

    index = GridIndex(cell_size=max(grid.span_x, grid.span_y, 1000.0))
    for poly in mask_polygons:
        index.insert(poly.bbox, poly)

    tasks: List[MetrologyTileTask] = []
    for shard in range(grid.count):
        local = by_shard.get(shard)
        if not local:
            continue
        window = grid.interior(shard).expanded(simulator.ambit)
        tasks.append(MetrologyTileTask(
            spec=grid.spec(shard),
            polygons=tuple(index.query(window, strict=False)),
            gate_rects=tuple(local),
            n_slices=n_slices,
        ))
    return tasks
