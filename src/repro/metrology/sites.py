"""Design-based metrology site selection.

The paper's companion work introduced Design-Driven Metrology: measurement
jobs generated from layout coordinates instead of hand-picked SEM sites.
``select_sites`` turns the placed design's transistor map into a metrology
job, optionally restricted to tagged (critical) gates or subsampled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.geometry import Rect


@dataclass(frozen=True)
class MetrologySite:
    """One CD-SEM-style measurement site."""

    key: Tuple[str, str]   # (gate instance, transistor)
    rect: Rect
    tag: str = "standard"  # "standard" | "critical" | "matching"

    @property
    def gate_name(self) -> str:
        return self.key[0]

    @property
    def transistor_name(self) -> str:
        return self.key[1]


def select_sites(
    gate_rects: Mapping[Tuple[str, str], Rect],
    critical_gates: Optional[Set[str]] = None,
    sample_fraction: float = 1.0,
    seed: int = 0,
    critical_only: bool = False,
) -> List[MetrologySite]:
    """Build the metrology job.

    ``critical_gates`` tags sites on those instances as "critical"; with
    ``critical_only`` every other site is dropped (the selective-extraction
    mode of the paper).  ``sample_fraction`` subsamples the *non-critical*
    population — critical sites are always kept.
    """
    if not 0.0 <= sample_fraction <= 1.0:
        raise ValueError("sample_fraction must be within [0, 1]")
    critical = critical_gates or set()
    rng = random.Random(seed)
    sites: List[MetrologySite] = []
    for key in sorted(gate_rects):
        gate_name, _ = key
        is_critical = gate_name in critical
        if critical_only and not is_critical:
            continue
        if not is_critical and rng.random() > sample_fraction:
            continue
        sites.append(
            MetrologySite(
                key=key,
                rect=gate_rects[key],
                tag="critical" if is_critical else "standard",
            )
        )
    return sites


def sites_as_gate_rects(sites: Sequence[MetrologySite]) -> Dict[Tuple[str, str], Rect]:
    """Back to the mapping form the measurement engine consumes."""
    return {site.key: site.rect for site in sites}
