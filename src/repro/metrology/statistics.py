"""CD population statistics.

Summaries the flow reports: mean/sigma/extremes of printed-vs-drawn error,
plus a systematic/random split by grouping repeated instances of the same
cell context (the systematic part is what OPC left behind; the residual
within a group behaves like random CD noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.metrology.gate_cd import GateCdMeasurement
from repro.units import Nanometers


@dataclass(frozen=True)
class CdStatistics:
    """Population summary of CD errors (printed minus drawn, nm)."""

    count: int
    mean: Nanometers
    sigma: Nanometers
    minimum: Nanometers
    maximum: Nanometers

    @property
    def range(self) -> Nanometers:
        return self.maximum - self.minimum

    @property
    def three_sigma(self) -> Nanometers:
        return 3.0 * self.sigma

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:+.2f} sigma={self.sigma:.2f} "
            f"range=[{self.minimum:+.2f}, {self.maximum:+.2f}] nm"
        )


def summarize_cds(measurements: Mapping[Hashable, GateCdMeasurement]) -> CdStatistics:
    """Statistics of mean-CD error over a measurement population."""
    errors = [m.error for m in measurements.values() if m.printed]
    if not errors:
        return CdStatistics(0, float("nan"), float("nan"), float("nan"), float("nan"))
    arr = np.asarray(errors)
    return CdStatistics(
        count=len(arr),
        mean=float(arr.mean()),
        sigma=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def histogram_of_errors(
    measurements: Mapping[Hashable, GateCdMeasurement],
    bin_width: Nanometers = 1.0,
) -> List[Tuple[float, int]]:
    """(bin center, count) histogram of CD errors for report printing."""
    errors = [m.error for m in measurements.values() if m.printed]
    if not errors:
        return []
    arr = np.asarray(errors)
    lo = np.floor(arr.min() / bin_width) * bin_width
    hi = np.ceil(arr.max() / bin_width) * bin_width + bin_width / 2
    edges = np.arange(lo, hi + bin_width, bin_width)
    counts, edges = np.histogram(arr, bins=edges)
    centers = (edges[:-1] + edges[1:]) / 2
    return [(float(c), int(n)) for c, n in zip(centers, counts)]


def systematic_random_split(
    groups: Mapping[Hashable, Sequence[float]],
) -> Tuple[float, float]:
    """Split CD error variance into systematic and random components.

    ``groups`` maps a context signature (e.g. cell name + transistor name)
    to the CD errors of its instances.  The variance of group means is the
    systematic (context-driven) part; the pooled within-group variance is
    the random part.  Returns (sigma_systematic, sigma_random).
    """
    means = []
    residuals: List[float] = []
    for errors in groups.values():
        arr = np.asarray(list(errors), dtype=float)
        if arr.size == 0:
            continue
        means.append(arr.mean())
        residuals.extend(arr - arr.mean())
    if not means:
        return (float("nan"), float("nan"))
    sigma_sys = float(np.std(means))
    sigma_rand = float(np.std(residuals)) if residuals else 0.0
    return (sigma_sys, sigma_rand)
