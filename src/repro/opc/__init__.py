"""Optical proximity correction: rule-based, model-based, SRAF, and ORC."""

from repro.opc.rules import RuleOpcRecipe, apply_rule_opc
from repro.opc.model_based import (
    ModelOpcRecipe,
    OpcResult,
    OpcTileTask,
    apply_model_opc,
    correct_tile_chunk,
)
from repro.opc.sraf import SrafRecipe, insert_srafs
from repro.opc.orc import OrcReport, OrcViolation, run_orc
from repro.opc.mrc import MrcRecipe, check_mrc

__all__ = [
    "RuleOpcRecipe",
    "apply_rule_opc",
    "ModelOpcRecipe",
    "OpcResult",
    "OpcTileTask",
    "apply_model_opc",
    "correct_tile_chunk",
    "SrafRecipe",
    "insert_srafs",
    "OrcReport",
    "OrcViolation",
    "run_orc",
    "MrcRecipe",
    "check_mrc",
]
