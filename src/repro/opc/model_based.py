"""Model-based OPC: iterative edge-placement-error correction.

Every boundary fragment of every target polygon is moved along its normal
to null the simulated edge-placement error (EPE) at its control point —
the simulate-then-move loop of production OPC engines.  Context shapes
(neighbouring cells) participate in the image but are not moved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry import (
    Fragment,
    Polygon,
    Rect,
    fragment_polygon,
    rebuild_polygon,
    snap,
)
from repro.litho.imaging import AerialImage
from repro.litho.resist import NOMINAL, ProcessCondition
from repro.litho.simulator import LithographySimulator


@dataclass(frozen=True)
class ModelOpcRecipe:
    """Tuning of the model-based OPC loop (distances in nm)."""

    iterations: int = 6
    damping: float = 0.7
    max_move_per_iteration: float = 8.0
    max_total_move: float = 40.0
    fragment_max_length: float = 60.0
    fragment_corner_length: float = 30.0
    fragment_line_end_max: float = 120.0
    #: how far to search for the printed edge around a control point
    epe_search: float = 80.0
    grid: float = 1.0
    #: stop early once max |EPE| falls below this
    target_epe: float = 1.0


@dataclass
class OpcResult:
    """Corrected mask polygons plus the convergence record."""

    polygons: List[Polygon]
    #: per-iteration (rms EPE, max |EPE|) *before* that iteration's move
    epe_history: List[Tuple[float, float]] = field(default_factory=list)
    iterations_run: int = 0

    @property
    def final_rms_epe(self) -> float:
        return self.epe_history[-1][0] if self.epe_history else float("nan")

    @property
    def final_max_epe(self) -> float:
        return self.epe_history[-1][1] if self.epe_history else float("nan")


def measure_epe(
    latent: AerialImage,
    threshold: float,
    fragment: Fragment,
    search: float = 80.0,
    samples: int = 41,
) -> Optional[float]:
    """Signed edge-placement error at a fragment's control point.

    Positive EPE means the printed edge lies *outside* the drawn edge
    (feature prints too big); negative means pullback.  Returns None when
    no printed edge crosses the search span (catastrophic failure: the
    feature vanished or merged at this site).
    """
    return measure_epes(latent, threshold, [fragment], search, samples)[0]


def measure_epes(
    latent: AerialImage,
    threshold: float,
    fragments: Sequence[Fragment],
    search: float = 80.0,
    samples: int = 41,
) -> List[Optional[float]]:
    """Batched :func:`measure_epe` — one interpolation call for all sites."""
    if not fragments:
        return []
    positions = np.linspace(-search, search, samples)
    origins = np.array([(f.control_point.x, f.control_point.y) for f in fragments])
    normals = np.array([(f.outward_normal.x, f.outward_normal.y) for f in fragments])
    xs = origins[:, 0:1] + positions[None, :] * normals[:, 0:1]
    ys = origins[:, 1:2] + positions[None, :] * normals[:, 1:2]
    values = latent.values_at(xs, ys)

    epes: List[Optional[float]] = []
    deltas = values - threshold
    sign_change = deltas[:, :-1] * deltas[:, 1:] <= 0.0
    moving = values[:, 1:] != values[:, :-1]
    step = positions[1] - positions[0]
    for row in range(len(fragments)):
        candidates = np.nonzero(sign_change[row] & moving[row])[0]
        if candidates.size == 0:
            epes.append(None)
            continue
        v0 = values[row, candidates]
        v1 = values[row, candidates + 1]
        crossing = positions[candidates] + (threshold - v0) / (v1 - v0) * step
        epes.append(float(crossing[np.argmin(np.abs(crossing))]))
    return epes


@dataclass(frozen=True)
class OpcTileTask:
    """Model-OPC work for one tile, as a picklable value.

    ``targets`` are the drawn polygons to correct (design intent);
    ``context`` is the fixed mask data sharing the tile's optical window.
    Tasks carry no simulator or callables, so a process-pool worker can
    receive them alongside one pickled simulator per chunk.
    """

    targets: Tuple[Polygon, ...]
    context: Tuple[Polygon, ...]
    recipe: ModelOpcRecipe
    condition: ProcessCondition


def correct_tile_chunk(payload) -> List[List[Polygon]]:
    """Chunk worker: run model OPC on a list of tile tasks.

    ``payload`` is ``(simulator, [OpcTileTask, ...])``.  Module-level and
    picklable for process-pool dispatch; the simulator's SOCS kernel
    cache is built once per worker and shared across the chunk's tiles.
    Returns the corrected polygons of each task, in task order.
    """
    simulator, tasks = payload
    results = []
    for task in tasks:
        corrected = apply_model_opc(
            simulator,
            list(task.targets),
            context=list(task.context),
            recipe=task.recipe,
            condition=task.condition,
        )
        results.append(corrected.polygons)
    return results


def apply_model_opc(
    simulator: LithographySimulator,
    targets: Sequence[Polygon],
    context: Sequence[Polygon] = (),
    recipe: Optional[ModelOpcRecipe] = None,
    condition: ProcessCondition = NOMINAL,
) -> OpcResult:
    """Iteratively correct ``targets`` so they print on their drawn edges.

    ``context`` polygons are imaged but not moved (already-final mask data,
    neighbouring tiles, SRAFs).
    """
    recipe = recipe or ModelOpcRecipe()
    if not targets:
        return OpcResult(polygons=[], iterations_run=0)
    all_fragments: List[List[Fragment]] = [
        fragment_polygon(
            poly,
            max_length=recipe.fragment_max_length,
            corner_length=recipe.fragment_corner_length,
            line_end_max=recipe.fragment_line_end_max,
        )
        for poly in targets
    ]
    region = Rect.bounding([p.bbox for p in targets])
    threshold = simulator.resist.threshold

    result = OpcResult(polygons=list(targets))
    flat_fragments = [frag for frags in all_fragments for frag in frags]
    for iteration in range(recipe.iterations):
        mask_polys = [rebuild_polygon(frags) for frags in all_fragments]
        latent = simulator.latent_image(list(mask_polys) + list(context), region, condition)
        measured = measure_epes(latent, threshold, flat_fragments, search=recipe.epe_search)
        epes = []
        for frag, epe in zip(flat_fragments, measured):
            if epe is None:
                # No printed edge found: push the mask edge outward to
                # recover the feature.
                move = recipe.max_move_per_iteration
            else:
                epes.append(epe)
                move = -recipe.damping * epe
                move = max(-recipe.max_move_per_iteration,
                           min(recipe.max_move_per_iteration, move))
            frag.offset = max(-recipe.max_total_move,
                              min(recipe.max_total_move, frag.offset + move))
        if epes:
            rms = float(np.sqrt(np.mean(np.square(epes))))
            worst = float(np.max(np.abs(epes)))
        else:
            rms = worst = float("nan")
        result.epe_history.append((rms, worst))
        result.iterations_run = iteration + 1
        if epes and worst <= recipe.target_epe:
            break

    for frags in all_fragments:
        for frag in frags:
            frag.offset = snap(frag.offset, recipe.grid)
    result.polygons = [rebuild_polygon(frags).snapped(recipe.grid) for frags in all_fragments]
    return result
