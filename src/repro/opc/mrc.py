"""Mask rule checks (MRC).

OPC output must still be writable by the mask shop: jogs, slivers, and
gaps below the mask-write resolution are rejected.  Dimensions are wafer
scale (the 4x reticle magnification is folded into the limits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.geometry import Polygon
from repro.pdk.rules import RuleViolation, check_min_space, check_min_width


@dataclass(frozen=True)
class MrcRecipe:
    """Mask manufacturing limits at wafer scale (nm)."""

    min_width: float = 50.0
    min_space: float = 50.0
    #: SRAFs are narrower by design; they get their own floor
    min_sraf_width: float = 30.0


def check_mrc(
    mask_polygons: Sequence[Polygon],
    recipe: Optional[MrcRecipe] = None,
    srafs: Sequence[Polygon] = (),
) -> List[RuleViolation]:
    """MRC over corrected mask shapes (and optionally their SRAFs)."""
    recipe = recipe or MrcRecipe()
    violations = check_min_width(mask_polygons, recipe.min_width, "mrc.width")
    violations += check_min_space(
        list(mask_polygons) + list(srafs), recipe.min_space, "mrc.space"
    )
    violations += check_min_width(srafs, recipe.min_sraf_width, "mrc.sraf_width")
    return violations
