"""Optical rule check (ORC): post-OPC printability verification.

ORC replays the lithography model over final mask data and flags sites
where the printed image violates printability limits: excessive EPE,
pinching (necking below a CD floor), bridging between distinct features,
and line-end pullback.  This is the "post-OPC verification" step whose
output the paper mines for CD back-annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry import Point, Polygon, Rect, fragment_polygon
from repro.litho.resist import NOMINAL, ProcessCondition
from repro.litho.simulator import LithographySimulator
from repro.opc.model_based import measure_epes


@dataclass(frozen=True)
class OrcViolation:
    """One flagged printability failure."""

    kind: str        # "epe" | "pinch" | "bridge" | "open"
    location: Point
    value: float
    limit: float

    def __str__(self):
        return (
            f"{self.kind} at ({self.location.x:.0f}, {self.location.y:.0f}): "
            f"{self.value:.1f} vs limit {self.limit:.1f}"
        )


@dataclass
class OrcReport:
    """ORC outcome: per-site EPE statistics plus violations."""

    epes: List[float] = field(default_factory=list)
    violations: List[OrcViolation] = field(default_factory=list)

    @property
    def rms_epe(self) -> float:
        return float(np.sqrt(np.mean(np.square(self.epes)))) if self.epes else float("nan")

    @property
    def max_epe(self) -> float:
        return float(np.max(np.abs(self.epes))) if self.epes else float("nan")

    @property
    def mean_epe(self) -> float:
        return float(np.mean(self.epes)) if self.epes else float("nan")

    @property
    def clean(self) -> bool:
        return not self.violations

    def violations_of(self, kind: str) -> List[OrcViolation]:
        return [v for v in self.violations if v.kind == kind]


@dataclass(frozen=True)
class OrcLimits:
    """Pass/fail thresholds (nm)."""

    max_epe: float = 8.0
    pinch_fraction: float = 0.6   # printed CD below this x drawn CD pinches
    epe_search: float = 80.0


def run_orc(
    simulator: LithographySimulator,
    mask_polygons: Sequence[Polygon],
    target_polygons: Sequence[Polygon],
    limits: Optional[OrcLimits] = None,
    condition: ProcessCondition = NOMINAL,
    context: Sequence[Polygon] = (),
) -> OrcReport:
    """Verify that ``mask_polygons`` print onto ``target_polygons``.

    Targets are the drawn (design-intent) shapes; masks are the OPC output.
    ``context`` adds non-target geometry (neighbour tiles, SRAFs) to the
    image.
    """
    limits = limits or OrcLimits()
    report = OrcReport()
    if not target_polygons:
        return report
    region = Rect.bounding([p.bbox for p in target_polygons])
    latent = simulator.latent_image(list(mask_polygons) + list(context), region, condition)
    threshold = simulator.resist.threshold

    for target in target_polygons:
        fragments = fragment_polygon(target)
        feature_found = False
        measured = measure_epes(latent, threshold, fragments, search=limits.epe_search)
        for frag, epe in zip(fragments, measured):
            if epe is None:
                report.violations.append(
                    OrcViolation("open", frag.control_point, float("nan"), limits.epe_search)
                )
                continue
            feature_found = True
            report.epes.append(epe)
            if abs(epe) > limits.max_epe:
                report.violations.append(
                    OrcViolation("epe", frag.control_point, epe, limits.max_epe)
                )
        if feature_found:
            _check_pinch(latent, threshold, target, limits, report)
    _check_bridges(latent, threshold, target_polygons, report)
    return report


def _check_pinch(latent, threshold, target: Polygon, limits: OrcLimits, report: OrcReport):
    """Probe printed CD across the feature's narrow axis at several stations."""
    box = target.bbox
    drawn = min(box.width, box.height)
    horizontal_cut = box.width <= box.height  # cut across the narrow axis
    stations = np.linspace(0.15, 0.85, 5)
    for t in stations:
        if horizontal_cut:
            y = box.y0 + t * box.height
            p0, p1 = (box.x0 - drawn, y), (box.x1 + drawn, y)
        else:
            x = box.x0 + t * box.width
            p0, p1 = (x, box.y0 - drawn), (x, box.y1 + drawn)
        _, values = latent.profile(p0[0], p0[1], p1[0], p1[1], samples=64)
        below = values < threshold
        if not below.any():
            continue
        # Longest dark run = printed CD at this station.
        runs = _longest_run(below)
        length = float(np.hypot(p1[0] - p0[0], p1[1] - p0[1]))
        printed = runs * length / (len(values) - 1)
        if printed < limits.pinch_fraction * drawn:
            mid = Point((p0[0] + p1[0]) / 2, (p0[1] + p1[1]) / 2)
            report.violations.append(
                OrcViolation("pinch", mid, printed, limits.pinch_fraction * drawn)
            )
            return


def _longest_run(mask: np.ndarray) -> int:
    best = run = 0
    for flag in mask:
        run = run + 1 if flag else 0
        best = max(best, run)
    return best


def _check_bridges(latent, threshold, targets: Sequence[Polygon], report: OrcReport):
    """Flag below-threshold image between distinct targets that face each
    other closely (resist bridging shorts the two features)."""
    boxes = [t.bbox for t in targets]
    for i in range(len(boxes)):
        for j in range(i + 1, len(boxes)):
            a, b = boxes[i], boxes[j]
            gap_rect = _facing_gap(a, b)
            if gap_rect is None:
                continue
            mid = gap_rect.center
            if latent.value_at(mid.x, mid.y) < threshold:
                report.violations.append(
                    OrcViolation("bridge", mid, latent.value_at(mid.x, mid.y), threshold)
                )


def _facing_gap(a: Rect, b: Rect, max_gap: float = 200.0):
    """The empty rectangle between two horizontally or vertically facing
    boxes, or None if they do not face within ``max_gap``."""
    # Horizontal facing: y-ranges overlap.
    y0, y1 = max(a.y0, b.y0), min(a.y1, b.y1)
    if y1 > y0:
        if a.x1 <= b.x0 and b.x0 - a.x1 <= max_gap:
            return Rect(a.x1, y0, b.x0, y1)
        if b.x1 <= a.x0 and a.x0 - b.x1 <= max_gap:
            return Rect(b.x1, y0, a.x0, y1)
    x0, x1 = max(a.x0, b.x0), min(a.x1, b.x1)
    if x1 > x0:
        if a.y1 <= b.y0 and b.y0 - a.y1 <= max_gap:
            return Rect(x0, a.y1, x1, b.y0)
        if b.y1 <= a.y0 and a.y0 - b.y1 <= max_gap:
            return Rect(x0, b.y1, x1, a.y0)
    return None
