"""Rule-based OPC.

The mid-1990s flavour of correction: a spacing-dependent edge bias (denser
edges get less bias, isolated edges more) plus line-end extension
(hammerheads).  No simulation in the loop — fast, but it leaves the
systematic residuals that the paper's flow extracts and back-annotates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geometry import (
    Fragment,
    FragmentKind,
    GridIndex,
    Point,
    Polygon,
    Rect,
    decompose_rectilinear,
    fragment_polygon,
    rebuild_polygon,
    snap,
)


@dataclass(frozen=True)
class RuleOpcRecipe:
    """Bias table for rule-based OPC (all values in nm).

    ``bias_table`` maps an upper spacing bound to the per-edge bias; edges
    with larger spacing than every bound get ``iso_bias``.
    """

    #: fitted to the through-pitch print error of the calibrated process:
    #: dense (anchor) edges need ~none, mid-pitch the most, isolated ~5 nm
    bias_table: Tuple[Tuple[float, float], ...] = (
        (260.0, 1.0),
        (450.0, 4.0),
        (800.0, 6.0),
    )
    iso_bias: float = 5.0
    line_end_extension: float = 25.0
    max_spacing_search: float = 2000.0
    grid: float = 1.0

    @staticmethod
    def for_tech(tech) -> "RuleOpcRecipe":
        """A bias table fitted to the node's through-pitch signature.

        The default table is the 90 nm (ArF) fit; the 130 nm (KrF) node has
        its own proximity valley (worst near a 600 nm pitch) and gentler
        isolated bias.
        """
        if tech.rules.gate_length >= 110.0:
            return RuleOpcRecipe(
                bias_table=(
                    (360.0, 1.0),
                    (550.0, 10.0),
                    (750.0, 6.0),
                    (1100.0, 3.0),
                ),
                iso_bias=2.5,
                line_end_extension=35.0,
            )
        return RuleOpcRecipe()


def apply_rule_opc(
    polygons: Sequence[Polygon],
    recipe: Optional[RuleOpcRecipe] = None,
    context: Sequence[Polygon] = (),
) -> List[Polygon]:
    """Correct ``polygons`` with spacing-dependent bias and line-end extension.

    ``context`` shapes influence spacing lookups but are not corrected.
    """
    recipe = recipe or RuleOpcRecipe()
    neighbours = _NeighbourField(list(polygons) + list(context), recipe.max_spacing_search)
    corrected = []
    for index, poly in enumerate(polygons):
        fragments = fragment_polygon(poly)
        for frag in fragments:
            if frag.kind == FragmentKind.LINE_END:
                frag.offset = recipe.line_end_extension
            else:
                spacing = neighbours.spacing_along_normal(frag, exclude=index)
                frag.offset = _bias_for_spacing(recipe, spacing)
            frag.offset = snap(frag.offset, recipe.grid)
        corrected.append(rebuild_polygon(fragments).snapped(recipe.grid))
    return corrected


def _bias_for_spacing(recipe: RuleOpcRecipe, spacing: float) -> float:
    for bound, bias in recipe.bias_table:
        if spacing <= bound:
            return bias
    return recipe.iso_bias


class _NeighbourField:
    """Answers "how far along this edge normal is the next shape?"."""

    def __init__(self, polygons: Sequence[Polygon], max_search: float):
        self.max_search = max_search
        self._index: GridIndex = GridIndex(cell_size=max(500.0, max_search / 2))
        for owner, poly in enumerate(polygons):
            for rect in decompose_rectilinear(poly):
                self._index.insert(rect, (owner, rect))

    def spacing_along_normal(self, fragment: Fragment, exclude: int) -> float:
        """Distance from the fragment to the nearest other shape along the
        outward normal (axis-aligned ray), capped at ``max_search``."""
        origin = fragment.control_point
        normal = fragment.outward_normal
        probe = self._probe_rect(origin, normal)
        best = self.max_search
        for owner, rect in self._index.query(probe, strict=False):
            if owner == exclude:
                continue
            distance = _ray_to_rect(origin, normal, rect)
            if distance is not None:
                best = min(best, distance)
        return best

    def _probe_rect(self, origin: Point, normal: Point) -> Rect:
        end = Point(origin.x + normal.x * self.max_search, origin.y + normal.y * self.max_search)
        return Rect.from_points(origin, end)


def _ray_to_rect(origin: Point, direction: Point, rect: Rect) -> Optional[float]:
    """Distance along an axis-aligned ray to an axis-aligned rect, if hit."""
    if abs(direction.x) > 0.5:  # horizontal ray
        if not (rect.y0 <= origin.y <= rect.y1):
            return None
        if direction.x > 0 and rect.x0 >= origin.x:
            return rect.x0 - origin.x
        if direction.x < 0 and rect.x1 <= origin.x:
            return origin.x - rect.x1
        return None
    if not (rect.x0 <= origin.x <= rect.x1):
        return None
    if direction.y > 0 and rect.y0 >= origin.y:
        return rect.y0 - origin.y
    if direction.y < 0 and rect.y1 <= origin.y:
        return origin.y - rect.y1
    return None
