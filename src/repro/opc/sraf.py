"""Sub-resolution assist feature (SRAF / scatter bar) insertion.

Isolated edges image with less aerial-image slope than dense ones; a thin
non-printing bar placed a set distance off the edge restores a dense-like
diffraction environment.  Rule-based placement, as in the paper's era.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.geometry import (
    EdgeOrientation,
    Fragment,
    FragmentKind,
    Polygon,
    Rect,
    polygon_edges,
)
from repro.opc.rules import _NeighbourField


@dataclass(frozen=True)
class SrafRecipe:
    """Scatter-bar placement rules (nm)."""

    bar_width: float = 40.0
    bar_distance: float = 180.0          # edge-to-bar-edge gap
    min_spacing_for_sraf: float = 520.0  # only edges at least this isolated
    end_trim: float = 40.0               # bar shorter than its edge by this per side
    min_bar_length: float = 120.0
    #: clearance required between a bar and any other shape or bar
    bar_clearance: float = 100.0


def insert_srafs(
    polygons: Sequence[Polygon],
    recipe: Optional[SrafRecipe] = None,
    context: Sequence[Polygon] = (),
) -> List[Polygon]:
    """Scatter bars for the isolated edges of ``polygons``.

    Returns only the new bar polygons (callers keep them on the SRAF layer
    so they can be imaged but excluded from metrology and ORC targets).
    """
    recipe = recipe or SrafRecipe()
    everything = list(polygons) + list(context)
    field = _NeighbourField(everything, max_search=recipe.min_spacing_for_sraf + 1)
    bars: List[Polygon] = []
    placed: List[Rect] = []
    for index, poly in enumerate(polygons):
        for edge in polygon_edges(poly):
            frag = Fragment(edge.start, edge.end, FragmentKind.NORMAL)
            if frag.length < recipe.min_bar_length + 2 * recipe.end_trim:
                continue
            spacing = field.spacing_along_normal(frag, exclude=index)
            if spacing < recipe.min_spacing_for_sraf:
                continue
            bar = _bar_for_edge(frag, recipe)
            if bar is None:
                continue
            if _clear_of(bar, placed, everything, recipe.bar_clearance):
                bars.append(Polygon.from_rect(bar))
                placed.append(bar)
    return bars


def _bar_for_edge(frag, recipe: SrafRecipe) -> Rect:
    normal = frag.outward_normal
    edge = frag.edge
    offset_lo = recipe.bar_distance
    offset_hi = recipe.bar_distance + recipe.bar_width
    if frag.orientation == EdgeOrientation.VERTICAL:
        y0 = min(edge.start.y, edge.end.y) + recipe.end_trim
        y1 = max(edge.start.y, edge.end.y) - recipe.end_trim
        if y1 - y0 < recipe.min_bar_length:
            return None
        if normal.x > 0:
            return Rect(edge.start.x + offset_lo, y0, edge.start.x + offset_hi, y1)
        return Rect(edge.start.x - offset_hi, y0, edge.start.x - offset_lo, y1)
    x0 = min(edge.start.x, edge.end.x) + recipe.end_trim
    x1 = max(edge.start.x, edge.end.x) - recipe.end_trim
    if x1 - x0 < recipe.min_bar_length:
        return None
    if normal.y > 0:
        return Rect(x0, edge.start.y + offset_lo, x1, edge.start.y + offset_hi)
    return Rect(x0, edge.start.y - offset_hi, x1, edge.start.y - offset_lo)


def _clear_of(bar: Rect, placed: Sequence[Rect], shapes: Sequence[Polygon],
              clearance: float) -> bool:
    grown = bar.expanded(clearance)
    for other in placed:
        if grown.overlaps(other, strict=True):
            return False
    for poly in shapes:
        if grown.overlaps(poly.bbox, strict=True):
            return False
    return True
