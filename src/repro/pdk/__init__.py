"""Process design kit: layers, design rules, and technology constants."""

from repro.pdk.layers import Layers
from repro.pdk.rules import DesignRules, RuleViolation, check_min_space, check_min_width
from repro.pdk.tech import (
    DeviceParams,
    LithoSettings,
    Technology,
    make_tech_90nm,
    make_tech_130nm,
)

__all__ = [
    "Layers",
    "DesignRules",
    "RuleViolation",
    "check_min_width",
    "check_min_space",
    "DeviceParams",
    "LithoSettings",
    "Technology",
    "make_tech_90nm",
    "make_tech_130nm",
]
