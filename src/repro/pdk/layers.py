"""Canonical layer map.

Layer numbers follow a simple foundry-flavoured convention; the datatype is
0 for drawn shapes and 1 for derived/OPC output shapes, so a post-OPC layout
can carry both the design-intent and the corrected mask polygons.
"""

from __future__ import annotations

from typing import Tuple

LayerKey = Tuple[int, int]


class Layers:
    """Static layer registry."""

    NWELL: LayerKey = (2, 0)
    ACTIVE: LayerKey = (1, 0)
    NIMPLANT: LayerKey = (3, 0)
    PIMPLANT: LayerKey = (4, 0)
    POLY: LayerKey = (10, 0)
    CONTACT: LayerKey = (20, 0)
    METAL1: LayerKey = (30, 0)
    VIA1: LayerKey = (40, 0)
    METAL2: LayerKey = (50, 0)
    BOUNDARY: LayerKey = (63, 0)

    #: OPC-corrected mask shapes (datatype 1 of the target layer).
    POLY_OPC: LayerKey = (10, 1)
    ACTIVE_OPC: LayerKey = (1, 1)
    METAL1_OPC: LayerKey = (30, 1)

    #: Sub-resolution assist features (never meant to print).
    POLY_SRAF: LayerKey = (10, 2)

    #: Simulated printed contours.
    POLY_PRINTED: LayerKey = (10, 9)

    _NAMES = {}

    @classmethod
    def name_of(cls, key: LayerKey) -> str:
        """Human-readable name for a layer key."""
        if not cls._NAMES:
            cls._NAMES = {
                value: name
                for name, value in vars(cls).items()
                if isinstance(value, tuple) and len(value) == 2
            }
        return cls._NAMES.get(key, f"L{key[0]}D{key[1]}")

    @staticmethod
    def opc_variant(key: LayerKey) -> LayerKey:
        """The datatype-1 (OPC output) twin of a drawn layer."""
        return (key[0], 1)

    @staticmethod
    def sraf_variant(key: LayerKey) -> LayerKey:
        """The datatype-2 (assist feature) twin of a drawn layer."""
        return (key[0], 2)

    @staticmethod
    def printed_variant(key: LayerKey) -> LayerKey:
        """The datatype-9 (simulated contour) twin of a drawn layer."""
        return (key[0], 9)
