"""Design rules and a small geometric DRC.

The rule set is deliberately the classical width/space/enclosure vocabulary
of the 90 nm era (the paper predates restrictive design rules).  The checks
here keep the standard-cell generators honest and let tests assert that
generated layout is legal before it is handed to OPC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.geometry import Polygon, Rect, Transform, decompose_rectilinear
from repro.pdk.layers import LayerKey, Layers


@dataclass(frozen=True)
class RuleViolation:
    """One DRC violation: which rule, where, and the offending value."""

    rule: str
    location: Rect
    actual: float
    required: float

    def __str__(self):
        return (
            f"{self.rule}: {self.actual:.1f} nm < {self.required:.1f} nm "
            f"near ({self.location.center.x:.0f}, {self.location.center.y:.0f})"
        )


@dataclass
class DesignRules:
    """Minimum width / spacing / enclosure rules, all in nanometres."""

    #: drawn transistor gate length (poly width over active)
    gate_length: float = 90.0
    #: minimum poly width outside the gate region
    poly_width: float = 90.0
    poly_space: float = 110.0
    #: contacted gate pitch used by the standard-cell row
    poly_pitch: float = 320.0
    #: poly endcap past active
    poly_endcap: float = 90.0
    active_width: float = 120.0
    active_space: float = 160.0
    #: active extension past the gate (source/drain landing)
    active_overhang: float = 180.0
    contact_size: float = 110.0
    contact_space: float = 130.0
    contact_to_gate: float = 60.0
    poly_contact_enclosure: float = 20.0
    active_contact_enclosure: float = 30.0
    metal1_width: float = 120.0
    metal1_space: float = 120.0
    metal1_contact_enclosure: float = 25.0
    #: standard cell row height (tracks of metal1 pitch)
    cell_height: float = 2880.0

    min_width: Dict[LayerKey, float] = field(default_factory=dict)
    min_space: Dict[LayerKey, float] = field(default_factory=dict)

    def __post_init__(self):
        if not self.min_width:
            self.min_width = {
                Layers.POLY: self.poly_width,
                Layers.ACTIVE: self.active_width,
                Layers.CONTACT: self.contact_size,
                Layers.METAL1: self.metal1_width,
            }
        if not self.min_space:
            self.min_space = {
                Layers.POLY: self.poly_space,
                Layers.ACTIVE: self.active_space,
                Layers.CONTACT: self.contact_space,
                Layers.METAL1: self.metal1_space,
            }


def polygon_min_width(poly: Polygon) -> float:
    """Minimum feature width of a rectilinear polygon.

    The horizontal-slab decomposition gives the exact horizontal chord of
    the polygon in each slab (the rectangle x-extent); decomposing the
    90-degree-rotated polygon gives the vertical chords.  The feature width
    is the smaller of the two chord minima — exact for rectilinear shapes.
    """
    horizontal = min(r.width for r in decompose_rectilinear(poly))
    rotated = Transform(rotation=90).apply_polygon(poly)
    vertical = min(r.width for r in decompose_rectilinear(rotated))
    return min(horizontal, vertical)


def check_min_width(
    polygons: Sequence[Polygon], minimum: float, rule: str = "min_width"
) -> List[RuleViolation]:
    """Flag polygons whose minimum feature width is below ``minimum``."""
    violations: List[RuleViolation] = []
    for poly in polygons:
        narrow = polygon_min_width(poly)
        if narrow < minimum - 1e-9:
            violations.append(RuleViolation(rule, poly.bbox, narrow, minimum))
    return violations


def check_min_space(
    polygons: Sequence[Polygon], minimum: float, rule: str = "min_space"
) -> List[RuleViolation]:
    """Flag pairs of polygons whose bounding regions come closer than ``minimum``.

    Uses rectangle decompositions so L/U shapes measure correctly; only
    disjoint polygons are compared (abutting/overlapping shapes merge
    electrically and are exempt from spacing).
    """
    decomposed: List[Tuple[Polygon, List[Rect]]] = [
        (poly, decompose_rectilinear(poly)) for poly in polygons
    ]
    violations: List[RuleViolation] = []
    for i in range(len(decomposed)):
        poly_a, rects_a = decomposed[i]
        for j in range(i + 1, len(decomposed)):
            poly_b, rects_b = decomposed[j]
            if poly_a.bbox.expanded(minimum).intersection(poly_b.bbox) is None:
                continue
            gap = _polygon_gap(rects_a, rects_b)
            if gap == 0.0:
                continue  # touching or overlapping: connected, not a spacing issue
            if gap < minimum - 1e-9:
                violations.append(
                    RuleViolation(rule, poly_a.bbox.union_bbox(poly_b.bbox), gap, minimum)
                )
    return violations


def _polygon_gap(rects_a: Sequence[Rect], rects_b: Sequence[Rect]) -> float:
    gap = float("inf")
    for a in rects_a:
        for b in rects_b:
            gap = min(gap, _rect_gap(a, b))
            if gap == 0.0:
                return 0.0
    return gap


def _rect_gap(a: Rect, b: Rect) -> float:
    dx = max(a.x0 - b.x1, b.x0 - a.x1, 0.0)
    dy = max(a.y0 - b.y1, b.y0 - a.y1, 0.0)
    # Euclidean corner-to-corner distance; matches DRC "diagonal spacing".
    return (dx * dx + dy * dy) ** 0.5


def check_enclosure(
    inner: Sequence[Polygon], outer: Sequence[Polygon], minimum: float, rule: str = "enclosure"
) -> List[RuleViolation]:
    """Every inner shape must sit inside some outer shape with ``minimum`` margin."""
    violations: List[RuleViolation] = []
    for shape in inner:
        box = shape.bbox
        enclosed = False
        best_margin = -float("inf")
        for host in outer:
            hbox = host.bbox
            margin = min(
                box.x0 - hbox.x0, box.y0 - hbox.y0, hbox.x1 - box.x1, hbox.y1 - box.y1
            )
            best_margin = max(best_margin, margin)
            if margin >= minimum - 1e-9:
                enclosed = True
                break
        if not enclosed:
            violations.append(RuleViolation(rule, box, max(best_margin, 0.0), minimum))
    return violations


def run_drc(
    shapes_by_layer: Dict[LayerKey, Sequence[Polygon]], rules: DesignRules
) -> List[RuleViolation]:
    """Width and spacing DRC over a flat layout, layer by layer."""
    violations: List[RuleViolation] = []
    for layer, minimum in rules.min_width.items():
        polys = shapes_by_layer.get(layer, ())
        violations.extend(check_min_width(polys, minimum, f"{Layers.name_of(layer)}.width"))
    for layer, minimum in rules.min_space.items():
        polys = shapes_by_layer.get(layer, ())
        violations.extend(check_min_space(polys, minimum, f"{Layers.name_of(layer)}.space"))
    return violations
