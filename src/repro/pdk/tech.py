"""Technology bundle: optical settings, device parameters, design rules.

``make_tech_90nm`` is the default technology used throughout the
reproduction — a 90 nm-era logic process imaged with 193 nm annular
illumination, matching the technology generation of the DAC 2005 paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pdk.rules import DesignRules


@dataclass(frozen=True)
class LithoSettings:
    """Optical and resist model constants for the patterning simulation."""

    wavelength: float = 193.0       # nm, ArF
    numerical_aperture: float = 0.65
    #: illumination shape: "conventional", "annular" or "quadrupole"
    source_type: str = "annular"
    sigma_outer: float = 0.85
    sigma_inner: float = 0.55
    #: raster pixel in nm; must resolve ~0.25 lambda/NA comfortably
    pixel_nm: float = 8.0
    #: number of source points per axis for Abbe integration
    source_grid: int = 11
    #: resist: constant threshold on the normalized aerial image
    resist_threshold: float = 0.30
    #: acid-diffusion blur sigma in nm
    resist_diffusion_nm: float = 20.0
    #: nominal exposure dose (1.0 = nominal); dose scales the threshold
    nominal_dose: float = 1.0
    #: nominal defocus in nm
    nominal_defocus: float = 0.0
    #: mask technology: "binary" (chrome on glass) or "attpsm"
    mask_type: str = "binary"
    #: intensity transmission of the attenuated-PSM absorber (6% typical)
    psm_transmission: float = 0.06

    @property
    def rayleigh_resolution(self) -> float:
        """0.61 lambda / NA in nm."""
        return 0.61 * self.wavelength / self.numerical_aperture

    @property
    def depth_of_focus(self) -> float:
        """lambda / NA^2 in nm."""
        return self.wavelength / self.numerical_aperture ** 2

    def k1_for_pitch(self, pitch: float) -> float:
        """k1 = half-pitch * NA / lambda for a given full pitch in nm."""
        return (pitch / 2) * self.numerical_aperture / self.wavelength


@dataclass(frozen=True)
class DeviceParams:
    """Analytic MOSFET model constants (alpha-power law + subthreshold).

    Sensitivities are tuned to 90 nm-era silicon: ~1%/nm delay sensitivity
    to gate length near nominal and roughly a decade of leakage per ~25 nm
    of gate-length loss in the roll-off region.
    """

    vdd: float = 1.2                 # V
    vth0: float = 0.32               # V, long-channel threshold
    alpha: float = 1.3               # velocity-saturation exponent
    #: drive strength constant, A/(V^alpha) per square of W/L; tuned so an
    #: X1 NMOS (W=400nm, L=90nm) drives ~240 uA (~600 uA/um, 90 nm-era)
    k_drive: float = 6.0e-5
    #: Vth roll-off magnitude (V) and characteristic length (nm)
    vth_rolloff: float = 0.18
    rolloff_length: float = 28.0
    #: subthreshold swing factor n (S = n * kT/q * ln 10)
    subthreshold_n: float = 1.45
    #: leakage prefactor, A per square of W/L (~1 nA per X1 device)
    i0_leak: float = 4.0e-7
    thermal_voltage: float = 0.0259  # V at 300 K
    #: gate capacitance per area (incl. overlap), aF/nm^2 = fF/um^2 / 1000
    cox_af_per_nm2: float = 0.02
    #: nominal drawn gate length / minimum modelled gate length, nm
    l_nominal: float = 90.0
    l_min: float = 45.0
    #: typical NMOS finger width in the library, nm
    w_nominal: float = 600.0


@dataclass(frozen=True)
class Technology:
    """Everything the flow needs to know about the process."""

    name: str
    node_nm: float
    rules: DesignRules = field(default_factory=DesignRules)
    litho: LithoSettings = field(default_factory=LithoSettings)
    device: DeviceParams = field(default_factory=DeviceParams)

    @property
    def gate_length(self) -> float:
        return self.rules.gate_length


def make_tech_90nm() -> Technology:
    """The default 90 nm-flavoured technology used by the reproduction."""
    return Technology(name="repro90", node_nm=90.0)


def make_tech_130nm() -> Technology:
    """A 130 nm-flavoured technology: KrF (248 nm) optics, relaxed rules.

    The paper's era straddled 130 and 90 nm; this node exists so cross-node
    studies can show how the drawn-vs-printed gap *grows* as k1 shrinks
    (130 nm at k1 ~ 0.56 vs 90 nm at ~0.54 with more aggressive layout).
    """
    from dataclasses import replace

    rules = DesignRules(
        gate_length=130.0,
        poly_width=130.0,
        poly_space=160.0,
        poly_pitch=460.0,
        poly_endcap=130.0,
        active_width=160.0,
        active_space=220.0,
        active_overhang=240.0,
        contact_size=160.0,
        contact_space=180.0,
        contact_to_gate=90.0,
        poly_contact_enclosure=30.0,
        active_contact_enclosure=40.0,
        metal1_width=160.0,
        metal1_space=160.0,
        metal1_contact_enclosure=35.0,
        cell_height=3840.0,
    )
    litho = LithoSettings(
        wavelength=248.0,           # KrF
        numerical_aperture=0.60,
        sigma_outer=0.80,
        sigma_inner=0.50,
        pixel_nm=10.0,
        resist_diffusion_nm=30.0,
    )
    device = replace(
        DeviceParams(),
        vdd=1.5,
        vth0=0.36,
        l_nominal=130.0,
        l_min=70.0,
        rolloff_length=38.0,
        cox_af_per_nm2=0.014,
        k_drive=7.5e-5,
    )
    return Technology(name="repro130", node_nm=130.0, rules=rules,
                      litho=litho, device=device)
