"""Row-based standard-cell placement and full-layout assembly."""

from repro.place.placer import Placement, PlacedGate, place_rows
from repro.place.assembler import assemble_layout, instance_gate_rects

__all__ = ["Placement", "PlacedGate", "place_rows", "assemble_layout", "instance_gate_rects"]
