"""Assembly of a placed netlist into a hierarchical layout.

``assemble_layout`` produces the GDS-ready :class:`~repro.gds.Layout` (one
structure per distinct library cell plus a flat top cell of SREFs), and
``instance_gate_rects`` maps every transistor of every placed gate to its
absolute gate region — the measurement sites for post-OPC CD extraction.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cells import CellLibrary
from repro.circuits import Netlist
from repro.gds import Layout
from repro.geometry import Rect
from repro.place.placer import Placement

TOP_CELL = "CHIP"

#: key: (gate instance name, transistor name)
GateRectMap = Dict[Tuple[str, str], Rect]


def assemble_layout(
    netlist: Netlist, library: CellLibrary, placement: Placement
) -> Layout:
    """Build the full-chip layout for a placement."""
    layout = Layout(name=netlist.name.upper())
    used_cells = {p.cell_name for p in placement.gates.values()}
    for cell_name in sorted(used_cells):
        layout.add_cell(library[cell_name].layout)
    top = layout.new_cell(TOP_CELL)
    for gate_name in sorted(placement.gates):
        placed = placement.gates[gate_name]
        top.add_instance(placed.cell_name, placed.transform)
    return layout


def instance_gate_rects(
    netlist: Netlist, library: CellLibrary, placement: Placement
) -> GateRectMap:
    """Absolute gate rectangles of every transistor of every placed gate.

    Transforms can mirror/rotate, so the cell-local gate rect is mapped
    through the instance transform and re-normalized to an axis-aligned
    rect (gate rects are axis-aligned in all eight Manhattan orientations).
    """
    rects: GateRectMap = {}
    for gate_name, placed in placement.gates.items():
        cell = library[placed.cell_name]
        for transistor in cell.transistors:
            rects[(gate_name, transistor.name)] = placed.transform.apply_rect(
                transistor.gate_rect
            )
    return rects
