"""Row-based standard-cell placement.

The placer packs gates into rows of the technology's cell height, in
topological order so that connected gates tend to be neighbours (good
enough wirelength locality for the proximity effects this reproduction
studies).  Alternate rows are flipped about the x axis so power rails are
shared, exactly as in real standard-cell fabrics — this matters here
because flipping changes each gate's lithographic context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cells import CellLibrary
from repro.circuits import Netlist
from repro.geometry import Rect, Transform


@dataclass(frozen=True)
class PlacedGate:
    """One placed netlist gate."""

    gate_name: str
    cell_name: str
    transform: Transform
    row: int
    bbox: Rect


@dataclass
class Placement:
    """The result of placement: per-gate transforms plus die statistics."""

    netlist_name: str
    gates: Dict[str, PlacedGate] = field(default_factory=dict)
    die: Optional[Rect] = None
    rows: int = 0

    def __getitem__(self, gate_name: str) -> PlacedGate:
        return self.gates[gate_name]

    def __len__(self) -> int:
        return len(self.gates)

    def utilization(self, library: CellLibrary) -> float:
        """Placed cell area over die area."""
        if self.die is None or self.die.area == 0:
            return 0.0
        cell_area = sum(
            library[p.cell_name].area for p in self.gates.values()
        )
        return cell_area / self.die.area

    def half_perimeter_wirelength(self, netlist: Netlist, library: CellLibrary) -> float:
        """Sum of net bounding-box half-perimeters (HPWL), in nanometres.

        Pin positions are approximated by placed-cell centers.
        """
        net_points: Dict[str, List] = {}
        for gate in netlist.gates.values():
            center = self.gates[gate.name].bbox.center
            for net in gate.connections.values():
                net_points.setdefault(net, []).append(center)
        total = 0.0
        for points in net_points.values():
            if len(points) < 2:
                continue
            xs = [p.x for p in points]
            ys = [p.y for p in points]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total


def place_rows(
    netlist: Netlist,
    library: CellLibrary,
    aspect_ratio: float = 1.0,
    row_spacing: float = 0.0,
    flip_alternate_rows: bool = True,
) -> Placement:
    """Pack the netlist's gates into standard-cell rows.

    ``aspect_ratio`` is the target die width/height ratio; ``row_spacing``
    adds a gap between rows (zero gives rail-sharing abutment).
    """
    if not netlist.gates:
        raise ValueError("cannot place an empty netlist")
    order = netlist.topological_gates(library)
    height = library.tech.rules.cell_height
    total_width = sum(library[g.cell_name].width for g in order)
    total_area = total_width * height
    target_row_width = max(
        (total_area * aspect_ratio) ** 0.5,
        max(library[g.cell_name].width for g in order),
    )

    placement = Placement(netlist_name=netlist.name)
    x = 0.0
    row = 0
    max_x = 0.0
    for gate in order:
        cell = library[gate.cell_name]
        if x > 0 and x + cell.width > target_row_width:
            max_x = max(max_x, x)
            x = 0.0
            row += 1
        y0 = row * (height + row_spacing)
        flipped = flip_alternate_rows and row % 2 == 1
        if flipped:
            transform = Transform(dx=x, dy=y0 + height, mirror_x=True)
        else:
            transform = Transform(dx=x, dy=y0)
        bbox = Rect(x, y0, x + cell.width, y0 + height)
        placement.gates[gate.name] = PlacedGate(
            gate_name=gate.name,
            cell_name=gate.cell_name,
            transform=transform,
            row=row,
            bbox=bbox,
        )
        x += cell.width
    max_x = max(max_x, x)
    placement.rows = row + 1
    placement.die = Rect(0, 0, max_x, placement.rows * (height + row_spacing))
    return placement
