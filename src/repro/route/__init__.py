"""Grid-based global/detailed routing over the placed design."""

from repro.route.router import GridRouter, RoutedNet, RoutingResult, route_design

__all__ = ["GridRouter", "RoutedNet", "RoutingResult", "route_design"]
