"""Two-layer maze routing (Lee's algorithm with via costs).

Routes every net of a placed design on a track grid: one horizontal layer
(METAL2) and one vertical layer (METAL3-equivalent), vias between them.
Each grid cell holds at most one net — a track-capacity-one global router,
which is exactly enough to replace the HPWL wire estimate in STA with
realised wirelengths and to expose congestion (failed nets) on dense
designs.

Terminals are the placed pins of each gate; the router connects each net's
terminal set as a Steiner-ish tree by repeatedly running a breadth-first
wave from the already-routed tree to the next terminal.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cells import CellLibrary
from repro.circuits import Netlist
from repro.geometry import Point, Rect
from repro.place.placer import Placement

HORIZONTAL = 0  # layer index: rows run in x
VERTICAL = 1

Cell3 = Tuple[int, int, int]  # (layer, row, col)


@dataclass
class RoutedNet:
    """One net's realised route."""

    net: str
    cells: List[Cell3] = field(default_factory=list)
    wirelength_nm: float = 0.0
    vias: int = 0
    failed: bool = False


@dataclass
class RoutingResult:
    """All nets plus aggregate statistics."""

    nets: Dict[str, RoutedNet] = field(default_factory=dict)
    grid_pitch: float = 0.0

    @property
    def total_wirelength_nm(self) -> float:
        return sum(n.wirelength_nm for n in self.nets.values())

    @property
    def total_vias(self) -> int:
        return sum(n.vias for n in self.nets.values())

    @property
    def failed_nets(self) -> List[str]:
        return sorted(name for name, n in self.nets.items() if n.failed)

    @property
    def clean(self) -> bool:
        return not self.failed_nets

    def net_lengths(self) -> Dict[str, float]:
        """net -> routed wirelength in nm (for the STA wire model)."""
        return {name: n.wirelength_nm for name, n in self.nets.items()}


class GridRouter:
    """Maze router over a fixed-pitch two-layer track grid."""

    def __init__(self, die: Rect, pitch: float = 320.0, via_cost: int = 4):
        if pitch <= 0:
            raise ValueError("pitch must be positive")
        self.die = die
        self.pitch = pitch
        self.via_cost = via_cost
        self.cols = max(2, int(die.width // pitch) + 1)
        self.rows = max(2, int(die.height // pitch) + 1)
        #: occupancy: cell -> net name
        self.occupancy: Dict[Cell3, str] = {}

    # -- coordinate mapping ---------------------------------------------------

    def snap(self, point: Point) -> Tuple[int, int]:
        col = int(round((point.x - self.die.x0) / self.pitch))
        row = int(round((point.y - self.die.y0) / self.pitch))
        return (min(max(row, 0), self.rows - 1), min(max(col, 0), self.cols - 1))

    def cell_center(self, cell: Cell3) -> Point:
        _, row, col = cell
        return Point(self.die.x0 + col * self.pitch, self.die.y0 + row * self.pitch)

    # -- the maze ---------------------------------------------------------------

    def _neighbours(self, cell: Cell3):
        layer, row, col = cell
        if layer == HORIZONTAL:
            if col > 0:
                yield (layer, row, col - 1), 1
            if col < self.cols - 1:
                yield (layer, row, col + 1), 1
        else:
            if row > 0:
                yield (layer, row - 1, col), 1
            if row < self.rows - 1:
                yield (layer, row + 1, col), 1
        yield (1 - layer, row, col), self.via_cost

    def _wave(self, sources: Set[Cell3], targets: Set[Cell3],
              net: str) -> Optional[List[Cell3]]:
        """Dijkstra wave from the tree to the nearest target; returns the
        path (target first) or None."""
        best: Dict[Cell3, int] = {}
        back: Dict[Cell3, Cell3] = {}
        heap: List[Tuple[int, Cell3]] = []
        for cell in sources:
            best[cell] = 0
            heapq.heappush(heap, (0, cell))
        while heap:
            cost, cell = heapq.heappop(heap)
            if cost > best.get(cell, 1 << 30):
                continue
            if cell in targets:
                path = [cell]
                while cell in back:
                    cell = back[cell]
                    path.append(cell)
                return path
            for nxt, step in self._neighbours(cell):
                owner = self.occupancy.get(nxt)
                if owner is not None and owner != net:
                    continue
                new_cost = cost + step
                if new_cost < best.get(nxt, 1 << 30):
                    best[nxt] = new_cost
                    back[nxt] = cell
                    heapq.heappush(heap, (new_cost, nxt))
        return None

    def reserve_terminal(self, net: str, point: Point) -> Tuple[int, int]:
        """Claim a grid node for a pin (both layers), nudging to the nearest
        free node if another net already owns the snapped one.

        Without reservation, pins of different nets that snap to the same
        track node deadlock the maze; with it, every pin has a legal pad.
        """
        row0, col0 = self.snap(point)
        for radius in range(0, max(self.rows, self.cols)):
            for dr in range(-radius, radius + 1):
                for dc in range(-radius, radius + 1):
                    if max(abs(dr), abs(dc)) != radius:
                        continue
                    row, col = row0 + dr, col0 + dc
                    if not (0 <= row < self.rows and 0 <= col < self.cols):
                        continue
                    owners = {
                        self.occupancy.get((HORIZONTAL, row, col)),
                        self.occupancy.get((VERTICAL, row, col)),
                    }
                    if owners <= {None, net}:
                        self.occupancy[(HORIZONTAL, row, col)] = net
                        self.occupancy[(VERTICAL, row, col)] = net
                        return (row, col)
        raise RuntimeError(f"no free grid node for a terminal of {net!r}")

    def route_net(self, net: str, terminals: Sequence[Point],
                  pads: Optional[Sequence[Tuple[int, int]]] = None) -> RoutedNet:
        """Route one net over its terminal points (or pre-reserved pads)."""
        routed = RoutedNet(net=net)
        if len(terminals) < 2:
            return routed
        if pads is None:
            pads = [self.snap(p) for p in terminals]
        # Terminals exist on both layers (a via stack from the pin).
        tree: Set[Cell3] = {(HORIZONTAL, *pads[0]), (VERTICAL, *pads[0])}
        remaining = [set((HORIZONTAL, *p) for p in (pad,)) |
                     set(((VERTICAL, *pad),)) for pad in pads[1:]]
        for target_cells in remaining:
            path = self._wave(tree, target_cells, net)
            if path is None:
                routed.failed = True
                continue
            for cell in path:
                tree.add(cell)
        routed.cells = sorted(tree)
        for cell in tree:
            self.occupancy.setdefault(cell, net)
        routed.wirelength_nm, routed.vias = self._measure(tree)
        return routed

    def _measure(self, tree: Set[Cell3]) -> Tuple[float, int]:
        length = 0.0
        vias = 0
        for layer, row, col in tree:
            if layer == HORIZONTAL and (layer, row, col + 1) in tree:
                length += self.pitch
            if layer == VERTICAL and (layer, row + 1, col) in tree:
                length += self.pitch
            if layer == HORIZONTAL and (VERTICAL, row, col) in tree:
                vias += 1
        return length, vias


def _terminals_of(netlist: Netlist, cells: CellLibrary,
                  placement: Placement) -> Dict[str, List[Point]]:
    """Net -> physical pin points (placed pin-shape centers)."""
    points: Dict[str, List[Point]] = {}
    for gate in netlist.gates.values():
        placed = placement.gates[gate.name]
        cell = cells[gate.cell_name]
        for pin_name, net in gate.connections.items():
            pin = cell.pins.get(pin_name)
            if pin is None:
                continue
            location = placed.transform.apply_rect(pin.shape).center
            points.setdefault(net, []).append(location)
    return points


def route_design(
    netlist: Netlist,
    cells: CellLibrary,
    placement: Placement,
    pitch: float = 240.0,
    margin_tracks: int = 2,
) -> RoutingResult:
    """Route every multi-terminal net of a placed design.

    Nets are routed shortest-HPWL-first (easy nets claim tracks before the
    long ones constrain everything).  Primary I/O nets route between their
    gate pins only (pads are out of scope).
    """
    die = placement.die.expanded(margin_tracks * pitch)
    router = GridRouter(die, pitch=pitch)
    terminals = _terminals_of(netlist, cells, placement)
    result = RoutingResult(grid_pitch=pitch)

    def hpwl(points: Sequence[Point]) -> float:
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    order = sorted(
        (net for net, pts in terminals.items() if len(pts) >= 2),
        key=lambda net: hpwl(terminals[net]),
    )
    # Reserve every pin's grid node first so no net can wall in another
    # net's terminals.
    pads: Dict[str, List[Tuple[int, int]]] = {
        net: [router.reserve_terminal(net, p) for p in terminals[net]]
        for net in order
    }
    for net in order:
        result.nets[net] = router.route_net(net, terminals[net], pads=pads[net])
    return result
