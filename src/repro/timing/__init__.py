"""Static timing analysis: library characterization, the STA engine,
path reporting, CD back-annotation, corners, and Monte-Carlo SSTA."""

from repro.timing.liberty import LibertyCell, LibertyLibrary, TimingArc, TimingTable
from repro.timing.characterize import characterize_library
from repro.timing.sta import StaEngine, StaResult, TimingConstraints
from repro.timing.paths import PathStage, TimingPath, top_paths
from repro.timing.derate import (
    InstanceDerate,
    derates_from_measurements,
    instance_leakage,
    quarantine_derates,
)
from repro.timing.mc import (
    CornerSpec,
    MonteCarloResult,
    compose_derates,
    run_corners,
    run_monte_carlo,
)
from repro.timing.hold import HoldEndpoint, HoldResult, run_hold
from repro.timing.report import report_summary, report_timing
from repro.timing.liberty_writer import write_liberty
from repro.timing.incremental import (
    affected_gates,
    diff_derates,
    retime,
    run_incremental,
)

__all__ = [
    "TimingTable",
    "TimingArc",
    "LibertyCell",
    "LibertyLibrary",
    "characterize_library",
    "StaEngine",
    "StaResult",
    "TimingConstraints",
    "TimingPath",
    "PathStage",
    "top_paths",
    "InstanceDerate",
    "derates_from_measurements",
    "quarantine_derates",
    "instance_leakage",
    "CornerSpec",
    "MonteCarloResult",
    "run_corners",
    "run_monte_carlo",
    "HoldEndpoint",
    "HoldResult",
    "run_hold",
    "report_timing",
    "report_summary",
    "write_liberty",
    "affected_gates",
    "compose_derates",
    "diff_derates",
    "retime",
    "run_incremental",
]
