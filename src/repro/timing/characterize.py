"""Analytic cell characterization into NLDM tables.

Each arc's delay is the classic switch-resistance model

    delay = 0.69 * R_eff * (C_load + C_parasitic) + k_slew * slew_in

with R_eff from the alpha-power drive current of the worst-case switching
network (pull-up for output rise, pull-down for fall), and the output slew
proportional to the same RC product.  The tables exist so the STA engine
consumes the same artifact a 2005 flow did — and so per-instance derating
can rescale them without touching the closed form.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.cells import CellLibrary, StandardCell
from repro.cells.stdcell import unate_inputs
from repro.device import AlphaPowerModel
from repro.timing.liberty import LibertyCell, LibertyLibrary, TimingArc, TimingTable
from repro.units import Femtofarads, Kiloohms

#: default NLDM axes: input slew (ps), output load (fF)
DEFAULT_SLEWS: Tuple[float, ...] = (5.0, 15.0, 30.0, 60.0, 120.0, 240.0)
DEFAULT_LOADS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

#: delay contributed per ps of input slew (dimensionless)
SLEW_TO_DELAY = 0.25
#: output slew per unit of RC (dimensionless; ~2.2 for 10-90% RC)
RC_TO_SLEW = 2.2


def effective_resistance_kohm(
    cell: StandardCell, mos_type: str, model: AlphaPowerModel
) -> Kiloohms:
    """Switching resistance of the pull network, in kOhm.

    The network strength is an equivalent W/L; the drive current of that
    equivalent device at the cell's drawn gate length sets R = 0.7*Vdd/I.
    """
    wl = cell.network_strength(mos_type)
    length = cell.transistors[0].length
    current = model.drive_current(wl * length, length)
    return 0.7 * model.params.vdd / current / 1000.0


def parasitic_cap_ff(cell: StandardCell, model: AlphaPowerModel) -> Femtofarads:
    """Output-node parasitic (drain junction + wiring stub) in fF.

    Approximated as 40% of the gate capacitance of the devices on the
    output stage — the standard fitting used when junction data is absent.
    """
    total = sum(
        model.gate_capacitance(t.width, t.length)
        for t in cell.transistors
    )
    return 0.4 * total / max(len(cell.inputs), 1)


def build_arc_tables(
    r_kohm: float,
    c_par: float,
    slews: Sequence[float],
    loads: Sequence[float],
) -> Tuple[TimingTable, TimingTable]:
    """(delay, output slew) tables for one transition direction."""
    delay_rows = []
    slew_rows = []
    for slew in slews:
        delay_rows.append(tuple(
            0.69 * r_kohm * (load + c_par) + SLEW_TO_DELAY * slew for load in loads
        ))
        slew_rows.append(tuple(
            RC_TO_SLEW * r_kohm * (load + c_par) + 0.1 * slew for load in loads
        ))
    return (
        TimingTable(tuple(slews), tuple(loads), tuple(delay_rows)),
        TimingTable(tuple(slews), tuple(loads), tuple(slew_rows)),
    )


def characterize_cell(
    cell: StandardCell,
    model: AlphaPowerModel,
    slews: Sequence[float] = DEFAULT_SLEWS,
    loads: Sequence[float] = DEFAULT_LOADS,
) -> LibertyCell:
    """NLDM characterization of one standard cell."""
    caps = {
        pin: cell.input_capacitance(pin, model.params.cox_af_per_nm2)
        for pin in cell.inputs
    }
    lib_cell = LibertyCell(
        name=cell.name,
        input_caps=caps,
        is_sequential=cell.is_sequential,
        clock_pin=cell.clock or "",
    )
    r_pull_up = effective_resistance_kohm(cell, "p", model)
    r_pull_down = effective_resistance_kohm(cell, "n", model)
    c_par = parasitic_cap_ff(cell, model)
    delay_rise, slew_rise = build_arc_tables(r_pull_up, c_par, slews, loads)
    delay_fall, slew_fall = build_arc_tables(r_pull_down, c_par, slews, loads)

    if cell.is_sequential:
        # One clock-to-Q arc; the internal chain is folded into a constant.
        lib_cell.input_caps[cell.clock] = cell.input_capacitance(
            cell.clock, model.params.cox_af_per_nm2
        )
        internal = 0.69 * (r_pull_up + r_pull_down) * c_par * 3.0
        lib_cell.clk_to_q = internal
        lib_cell.setup_time = internal / 2
        lib_cell.arcs.append(
            TimingArc(cell.clock, cell.output, "non_unate",
                      delay_rise, delay_fall, slew_rise, slew_fall)
        )
        return lib_cell

    senses = unate_inputs(cell)
    sense_map = {"positive": "positive", "negative": "negative",
                 "non-unate": "non_unate", "independent": "positive"}
    for pin in cell.inputs:
        lib_cell.arcs.append(
            TimingArc(pin, cell.output, sense_map[senses[pin]],
                      delay_rise, delay_fall, slew_rise, slew_fall)
        )
    return lib_cell


def characterize_library(
    cells: CellLibrary,
    model: AlphaPowerModel,
    slews: Sequence[float] = DEFAULT_SLEWS,
    loads: Sequence[float] = DEFAULT_LOADS,
) -> LibertyLibrary:
    """Characterize every cell of the library."""
    liberty = LibertyLibrary(name=f"{cells.tech.name}_typ")
    for cell in cells:
        liberty.add(characterize_cell(cell, model, slews, loads))
    return liberty
