"""Per-instance timing derates from extracted CDs.

This is the back-annotation step of the paper: printed gate CDs (per
transistor, from metrology) become per-instance delay and capacitance
scale factors by re-evaluating each cell's pull-network strength with the
extracted equivalent lengths — no library re-characterization needed.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Tuple

from repro.cells import CellLibrary, StandardCell
from repro.circuits import Netlist
from repro.device import AlphaPowerModel, extract_equivalent_lengths
from repro.metrology.gate_cd import GateCdMeasurement
from repro.timing.sta import InstanceDerate
from repro.units import Dimensionless


def derates_from_measurements(
    netlist: Netlist,
    cells: CellLibrary,
    measurements: Mapping[Tuple[str, str], GateCdMeasurement],
    model: AlphaPowerModel,
) -> Dict[str, InstanceDerate]:
    """Build per-instance derates from per-transistor CD measurements.

    ``measurements`` is keyed by (gate instance, transistor name); missing
    transistors keep their drawn dimensions.  Delay scale is the ratio of
    drawn to printed drive current through the relevant network: output
    *rise* is limited by the pull-up ("p"), *fall* by the pull-down ("n").
    Capacitance scales with the printed gate area via the drive EL.
    """
    derates: Dict[str, InstanceDerate] = {}
    for gate in netlist.gates.values():
        cell = cells[gate.cell_name]
        overrides: Dict[str, Tuple[float, float]] = {}
        failed = False
        drawn_area = 0.0
        printed_area = 0.0
        for transistor in cell.transistors:
            drawn_area += transistor.width * transistor.length
            measurement = measurements.get((gate.name, transistor.name))
            if measurement is None:
                printed_area += transistor.width * transistor.length
                continue
            nrg = extract_equivalent_lengths(measurement, model, width=transistor.width)
            if nrg.failed:
                failed = True
                printed_area += transistor.width * transistor.length
                continue
            overrides[transistor.name] = (transistor.width, nrg.length_drive)
            printed_area += transistor.width * nrg.length_drive

        if not overrides and not failed:
            continue  # nothing measured for this instance

        derates[gate.name] = InstanceDerate(
            delay_rise_scale=_strength_ratio(cell, "p", overrides, model),
            delay_fall_scale=_strength_ratio(cell, "n", overrides, model),
            cap_scale=printed_area / drawn_area if drawn_area else 1.0,
            failed=failed,
        )
    return derates


def quarantine_derates(
    derates: Mapping[str, InstanceDerate],
) -> Tuple[Dict[str, InstanceDerate], Dict[str, str]]:
    """Split derates into (physical, quarantined-with-reason).

    A derate with a non-finite or non-positive scale factor would poison
    the STA (NaN slacks propagate silently); those instances fall back to
    drawn timing — dropping the derate *is* the drawn fallback — and the
    caller counts them against extraction coverage.
    """
    clean: Dict[str, InstanceDerate] = {}
    faults: Dict[str, str] = {}
    for name, derate in derates.items():
        bad = None
        for attr in ("delay_rise_scale", "delay_fall_scale", "cap_scale"):
            value = getattr(derate, attr)
            if not math.isfinite(value) or value <= 0:
                bad = f"{attr}={value!r}"
                break
        if bad is None:
            clean[name] = derate
        else:
            faults[name] = f"non-physical derate ({bad})"
    return clean, faults


def _strength_ratio(
    cell: StandardCell,
    mos_type: str,
    overrides: Mapping[str, Tuple[float, float]],
    model: AlphaPowerModel,
) -> Dimensionless:
    """delay scale = I_drawn / I_printed for the given network.

    The drive current of the network-equivalent device is evaluated at its
    own equivalent length so the Vth roll-off nonlinearity is captured,
    not just the W/L ratio.
    """
    drawn_wl = cell.network_strength(mos_type)
    printed_wl = cell.network_strength(mos_type, overrides)
    length_drawn = cell.transistors[0].length
    # Infer the network's equivalent length from the printed W/L assuming
    # the width is unchanged (only CDs were annotated).
    width = drawn_wl * length_drawn
    length_printed = width / printed_wl
    current_drawn = model.drive_current(width, length_drawn)
    current_printed = model.drive_current(width, length_printed)
    return current_drawn / current_printed


def instance_leakage(
    netlist: Netlist,
    cells: CellLibrary,
    measurements: Mapping[Tuple[str, str], GateCdMeasurement],
    model: AlphaPowerModel,
) -> Dict[str, float]:
    """Static leakage per instance (amperes) with printed leakage ELs.

    Unmeasured transistors use drawn dimensions.  Half the devices of a
    static CMOS gate are off in any state; the conventional average is
    applied so totals compare across netlists.
    """
    totals: Dict[str, float] = {}
    for gate in netlist.gates.values():
        cell = cells[gate.cell_name]
        total = 0.0
        for transistor in cell.transistors:
            measurement = measurements.get((gate.name, transistor.name))
            if measurement is None or not measurement.printed:
                length = transistor.length
            else:
                nrg = extract_equivalent_lengths(measurement, model, width=transistor.width)
                length = nrg.length_leakage
            total += model.leakage_current(transistor.width, length)
        totals[gate.name] = total / 2.0
    return totals
