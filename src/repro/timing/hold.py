"""Hold (min-path) analysis.

Setup checks use the *latest* arrival; hold checks need the *earliest*:
a register's D input must not change before the hold window after the
clock edge closes.  Short-gate CDs (the fast, leaky silicon the flow
uncovers) erode hold margins — the dual of the setup story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.timing.sta import (
    InstanceDerate,
    StaEngine,
    TimingConstraints,
    TRANSITIONS,
)
from repro.units import Picoseconds

_NO_DERATE = InstanceDerate()


@dataclass
class HoldEndpoint:
    gate: str
    net: str
    transition: str
    earliest_arrival: Picoseconds
    hold_time: Picoseconds

    @property
    def slack(self) -> Picoseconds:
        return self.earliest_arrival - self.hold_time


@dataclass
class HoldResult:
    """Earliest arrivals and register hold slacks."""

    min_arrivals: Dict[Tuple[str, str], float] = field(default_factory=dict)
    endpoints: List[HoldEndpoint] = field(default_factory=list)

    @property
    def worst_hold_slack(self) -> Picoseconds:
        if not self.endpoints:
            return float("inf")
        return min(e.slack for e in self.endpoints)

    @property
    def violations(self) -> List[HoldEndpoint]:
        return [e for e in self.endpoints if e.slack < 0]


def run_hold(
    engine: StaEngine,
    constraints: Optional[TimingConstraints] = None,
    derates: Optional[Mapping[str, InstanceDerate]] = None,
    hold_time_ps: float = 15.0,
) -> HoldResult:
    """Earliest-arrival propagation over ``engine``'s netlist.

    ``hold_time_ps`` is used for registers whose characterized hold time is
    zero (the analytic characterization folds hold into setup/2 by
    default).  Primary inputs launch at the clock edge (t = 0).
    """
    constraints = constraints or TimingConstraints()
    derates = derates or {}
    result = HoldResult()
    arrivals = result.min_arrivals
    slews: Dict[Tuple[str, str], float] = {}

    for net in engine.netlist.inputs:
        for transition in TRANSITIONS:
            arrivals[(net, transition)] = constraints.input_arrival_ps
            slews[(net, transition)] = constraints.input_slew_ps

    for gate in engine._order:
        cell = engine.cells[gate.cell_name]
        lib_cell = engine.liberty[gate.cell_name]
        derate = derates.get(gate.name, _NO_DERATE)
        out_net = gate.connections[cell.output]
        load = engine.net_load_ff(out_net, constraints, derates)

        if lib_cell.is_sequential:
            for transition in TRANSITIONS:
                scale = (derate.delay_rise_scale if transition == "rise"
                         else derate.delay_fall_scale)
                arrivals[(out_net, transition)] = lib_cell.clk_to_q * scale
                slews[(out_net, transition)] = constraints.input_slew_ps
            continue

        for arc in lib_cell.arcs:
            in_net = gate.connections[arc.input_pin]
            for in_transition in TRANSITIONS:
                key_in = (in_net, in_transition)
                if key_in not in arrivals:
                    continue
                for out_transition in arc.output_transitions(in_transition):
                    delay_table, slew_table = arc.tables_for(out_transition)
                    scale = (derate.delay_rise_scale if out_transition == "rise"
                             else derate.delay_fall_scale)
                    delay = delay_table.lookup(slews[key_in], load) * scale
                    key_out = (out_net, out_transition)
                    candidate = arrivals[key_in] + delay
                    if candidate < arrivals.get(key_out, float("inf")):
                        arrivals[key_out] = candidate
                        slews[key_out] = slew_table.lookup(slews[key_in], load)

    for gate in engine.netlist.gates.values():
        lib_cell = engine.liberty[gate.cell_name]
        if not lib_cell.is_sequential:
            continue
        cell = engine.cells[gate.cell_name]
        d_net = gate.connections[cell.inputs[0]]
        hold = lib_cell.setup_time / 2 or hold_time_ps
        for transition in TRANSITIONS:
            key = (d_net, transition)
            if key in arrivals:
                result.endpoints.append(
                    HoldEndpoint(gate.name, d_net, transition, arrivals[key], hold)
                )
    return result
