"""Incremental timing update.

Selective OPC changes a handful of instances; re-deriving the whole chip's
timing for each what-if is wasteful.  ``run_incremental`` re-propagates
only the fan-out cone of the changed instances (plus the drivers of their
input nets, whose loads changed with the instances' pin capacitance) and
splices the result into the previous analysis.

The result is bit-identical to a full re-run — enforced by parity tests
(``tests/timing/test_incremental_parity.py``), not merely asserted —
because arrival times outside the recomputed cone cannot change: STA
arrival is a pure function of the fan-in cone, and every node whose fan-in
intersects the change set is in the recomputed cone by construction.

Two properties keep the cone small on register-rich fabrics:

* Cones are bounded at sequential elements.  A register's Q arrival is
  ``clk_to_q`` scaled by *its own* derate — independent of the arrival or
  slew at D/CK — so dirtiness does not propagate through a register that
  is not itself in the change set.  D-pin endpoint slacks still update
  because endpoints are re-collected from the patched arrival map.
* Driver lookups go through :meth:`StaEngine.driver_name_of` (a
  precomputed net -> driver map) instead of the O(gates) netlist scan.

``retime`` is the flow-facing entry: diff two derate annotations with
:func:`diff_derates` and re-propagate only instances whose derate actually
changed.  All incremental entry points assume ``constraints`` match the
previous run's except for the clock period (arrivals inherited from
outside the cone were computed under the previous input slew/arrival and
output load).
"""

from __future__ import annotations

from typing import Mapping, Optional, Set

from repro.timing.sta import (
    InstanceDerate,
    StaEngine,
    StaResult,
    TimingConstraints,
    TRANSITIONS,
)

_NO_DERATE = InstanceDerate()


def diff_derates(
    old: Mapping[str, InstanceDerate],
    new: Mapping[str, InstanceDerate],
) -> Set[str]:
    """Instances whose effective derate differs between two annotations.

    A missing entry counts as the identity derate, so an instance moving
    between "absent" and "explicit identity" is not reported as changed.
    """
    changed: Set[str] = set()
    for name in old.keys() | new.keys():
        if old.get(name, _NO_DERATE) != new.get(name, _NO_DERATE):
            changed.add(name)
    return changed


def affected_gates(
    engine: StaEngine, changed_gates: Set[str]
) -> Set[str]:
    """The changed instances, the drivers of their input nets (their load
    changed), and the combinational downstream closure of either.

    The closure stops at registers: a non-changed sequential gate's output
    arrival does not depend on its inputs, so it neither joins the cone
    nor re-dirties its Q net.
    """
    seeds: Set[str] = set(changed_gates)
    for gate_name in changed_gates:
        gate = engine.netlist.gates[gate_name]
        cell = engine.cells[gate.cell_name]
        sink_pins = list(cell.inputs) + ([cell.clock] if cell.clock else [])
        for pin in sink_pins:
            driver = engine.driver_name_of(gate.connections[pin])
            if driver is not None:
                seeds.add(driver)

    # Downstream closure over the topological order.
    affected: Set[str] = set(seeds)
    dirty_nets: Set[str] = set()
    for gate_name in seeds:
        gate = engine.netlist.gates[gate_name]
        cell = engine.cells[gate.cell_name]
        dirty_nets.add(gate.connections[cell.output])
    for gate in engine._order:
        cell = engine.cells[gate.cell_name]
        if gate.name in affected:
            dirty_nets.add(gate.connections[cell.output])
            continue
        if engine.liberty[gate.cell_name].is_sequential:
            continue  # registers bound the cone
        sink_pins = list(cell.inputs) + ([cell.clock] if cell.clock else [])
        if any(gate.connections[pin] in dirty_nets for pin in sink_pins):
            affected.add(gate.name)
            dirty_nets.add(gate.connections[cell.output])
    return affected


def run_incremental(
    engine: StaEngine,
    previous: StaResult,
    changed_gates: Set[str],
    constraints: Optional[TimingConstraints] = None,
    derates: Optional[Mapping[str, InstanceDerate]] = None,
) -> StaResult:
    """Update ``previous`` for a new derate set differing only on
    ``changed_gates``.  Exact: matches a full :meth:`StaEngine.run`."""
    constraints = constraints or TimingConstraints()
    derates = derates or {}
    cone = affected_gates(engine, changed_gates) if changed_gates else set()

    result = StaResult(clock_period_ps=constraints.clock_period_ps)
    result.arrivals = dict(previous.arrivals)
    result.slews = dict(previous.slews)
    result.predecessors = dict(previous.predecessors)

    # Clear the cone's output nodes, then re-propagate just those gates.
    for gate_name in cone:
        gate = engine.netlist.gates[gate_name]
        cell = engine.cells[gate.cell_name]
        out_net = gate.connections[cell.output]
        for transition in TRANSITIONS:
            result.arrivals.pop((out_net, transition), None)
            result.slews.pop((out_net, transition), None)
            result.predecessors.pop((out_net, transition), None)

    for gate in engine._order:
        if gate.name not in cone:
            continue
        cell = engine.cells[gate.cell_name]
        lib_cell = engine.liberty[gate.cell_name]
        derate = derates.get(gate.name, _NO_DERATE)
        out_net = gate.connections[cell.output]
        load = engine.net_load_ff(out_net, constraints, derates)

        if lib_cell.is_sequential:
            for transition in TRANSITIONS:
                scale = (derate.delay_rise_scale if transition == "rise"
                         else derate.delay_fall_scale)
                result.arrivals[(out_net, transition)] = lib_cell.clk_to_q * scale
                result.slews[(out_net, transition)] = constraints.input_slew_ps
                result.predecessors[(out_net, transition)] = None
            continue

        for arc in lib_cell.arcs:
            in_net = gate.connections[arc.input_pin]
            for in_transition in TRANSITIONS:
                key_in = (in_net, in_transition)
                if key_in not in result.arrivals:
                    continue
                for out_transition in arc.output_transitions(in_transition):
                    delay_table, slew_table = arc.tables_for(out_transition)
                    scale = (derate.delay_rise_scale if out_transition == "rise"
                             else derate.delay_fall_scale)
                    delay = delay_table.lookup(result.slews[key_in], load) * scale
                    delay += engine._wire_delay_ps(out_net, load)
                    out_slew = slew_table.lookup(result.slews[key_in], load)
                    key_out = (out_net, out_transition)
                    candidate = result.arrivals[key_in] + delay
                    if candidate > result.arrivals.get(key_out, -float("inf")):
                        result.arrivals[key_out] = candidate
                        result.slews[key_out] = out_slew
                        result.predecessors[key_out] = (
                            in_net, in_transition, gate.name, delay
                        )
                    elif key_out in result.slews:
                        # Worst-slew merge, matching the full engine: the
                        # cone net's single driver is in the cone, so every
                        # arc writing key_out is replayed in full-run order.
                        result.slews[key_out] = max(result.slews[key_out], out_slew)

    engine._collect_endpoints(result, constraints)
    return result


def retime(
    engine: StaEngine,
    previous: StaResult,
    old_derates: Mapping[str, InstanceDerate],
    new_derates: Mapping[str, InstanceDerate],
    constraints: Optional[TimingConstraints] = None,
) -> StaResult:
    """Re-time ``previous`` (computed under ``old_derates``) for
    ``new_derates``, re-propagating only instances whose derate actually
    changed.  With an empty diff this reduces to re-collecting endpoints
    at the requested clock period."""
    changed = diff_derates(old_derates, new_derates)
    return run_incremental(engine, previous, changed, constraints, new_derates)
