"""Liberty-style timing library: NLDM lookup tables.

Times are picoseconds, capacitances femtofarads, resistances kilo-ohms
(kOhm x fF = ps).  Tables are indexed by (input slew, output load) with
bilinear interpolation and clamped extrapolation, exactly like the NLDM
tables production STA consumed in 2005.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.units import Femtofarads, Picoseconds


@dataclass(frozen=True)
class TimingTable:
    """A 2-D (slew x load) lookup table."""

    slews: Tuple[float, ...]
    loads: Tuple[float, ...]
    values: Tuple[Tuple[float, ...], ...]  # values[i][j] at (slews[i], loads[j])

    def __post_init__(self) -> None:
        if not self.slews or not self.loads:
            raise ValueError("table axes must be non-empty")
        if list(self.slews) != sorted(self.slews) or list(self.loads) != sorted(self.loads):
            raise ValueError("table axes must be sorted ascending")
        if len(self.values) != len(self.slews):
            raise ValueError("row count must match slew axis")
        if any(len(row) != len(self.loads) for row in self.values):
            raise ValueError("column count must match load axis")

    def lookup(self, slew: Picoseconds, load: Femtofarads) -> Picoseconds:
        """Bilinear interpolation; clamps outside the table envelope."""
        i0, i1, ti = _bracket(self.slews, slew)
        j0, j1, tj = _bracket(self.loads, load)
        v = self.values
        bottom = v[i0][j0] * (1 - tj) + v[i0][j1] * tj
        top = v[i1][j0] * (1 - tj) + v[i1][j1] * tj
        return bottom * (1 - ti) + top * ti

    def scaled(self, factor: float) -> "TimingTable":
        """A copy with every value multiplied by ``factor`` (derating)."""
        return TimingTable(
            self.slews, self.loads,
            tuple(tuple(x * factor for x in row) for row in self.values),
        )


def _bracket(axis: Sequence[float], value: float) -> Tuple[int, int, float]:
    if value <= axis[0]:
        return 0, 0, 0.0
    if value >= axis[-1]:
        n = len(axis) - 1
        return n, n, 0.0
    hi = bisect.bisect_right(axis, value)
    lo = hi - 1
    t = (value - axis[lo]) / (axis[hi] - axis[lo])
    return lo, hi, t


@dataclass(frozen=True)
class TimingArc:
    """One input-to-output timing arc of a cell.

    ``sense`` is the arc unateness: "negative" (input rise -> output fall),
    "positive", or "non_unate" (both transitions propagate to both).
    """

    input_pin: str
    output_pin: str
    sense: str
    delay_rise: TimingTable   # output *rising* transition
    delay_fall: TimingTable
    slew_rise: TimingTable
    slew_fall: TimingTable

    def __post_init__(self) -> None:
        if self.sense not in ("positive", "negative", "non_unate"):
            raise ValueError(f"bad arc sense {self.sense!r}")

    def output_transitions(self, input_transition: str) -> List[str]:
        """Which output transitions an input transition triggers."""
        if self.sense == "positive":
            return [input_transition]
        if self.sense == "negative":
            return ["fall" if input_transition == "rise" else "rise"]
        return ["rise", "fall"]

    def tables_for(self, output_transition: str) -> Tuple[TimingTable, TimingTable]:
        if output_transition == "rise":
            return self.delay_rise, self.slew_rise
        return self.delay_fall, self.slew_fall


@dataclass
class LibertyCell:
    """Characterized timing view of one standard cell."""

    name: str
    input_caps: Dict[str, float]          # pin -> fF
    arcs: List[TimingArc] = field(default_factory=list)
    is_sequential: bool = False
    clock_pin: str = ""
    #: ps, clock-to-Q for sequential cells
    clk_to_q: Picoseconds = 0.0
    setup_time: Picoseconds = 0.0

    def arcs_from(self, pin: str) -> List[TimingArc]:
        return [arc for arc in self.arcs if arc.input_pin == pin]

    def capacitance(self, pin: str) -> Femtofarads:
        if pin not in self.input_caps:
            raise KeyError(f"cell {self.name} has no input pin {pin!r}")
        return self.input_caps[pin]


class LibertyLibrary:
    """A set of characterized cells."""

    def __init__(self, name: str = "repro_typ") -> None:
        self.name = name
        self.cells: Dict[str, LibertyCell] = {}

    def add(self, cell: LibertyCell) -> LibertyCell:
        if cell.name in self.cells:
            raise ValueError(f"cell {cell.name!r} already characterized")
        self.cells[cell.name] = cell
        return cell

    def __getitem__(self, name: str) -> LibertyCell:
        return self.cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __len__(self) -> int:
        return len(self.cells)
