"""Liberty (.lib) text emission.

Writes the characterized library in the classic Synopsys Liberty syntax so
the artifact is inspectable with standard tooling habits (and so tests can
assert the flow produces a legal-looking library).  Values use the units
of this package: ns are avoided — time is declared in ps, capacitance in
fF.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.timing.liberty import LibertyCell, LibertyLibrary, TimingTable


def write_liberty(library: LibertyLibrary) -> str:
    """Render the whole library as Liberty text."""
    out: List[str] = [
        f"library ({library.name}) {{",
        '  time_unit : "1ps";',
        '  capacitive_load_unit (1, "ff");',
        "  delay_model : table_lookup;",
        "",
    ]
    template = _template_of(library)
    if template is not None:
        slews, loads = template
        out.append("  lu_table_template (delay_template) {")
        out.append("    variable_1 : input_net_transition;")
        out.append("    variable_2 : total_output_net_capacitance;")
        out.append(f"    index_1 ({_values(slews)});")
        out.append(f"    index_2 ({_values(loads)});")
        out.append("  }")
        out.append("")
    for name in sorted(library.cells):
        out.extend(_cell_lines(library.cells[name]))
    out.append("}")
    return "\n".join(out) + "\n"


def _template_of(
    library: LibertyLibrary,
) -> Optional[Tuple[Tuple[float, ...], Tuple[float, ...]]]:
    for cell in library.cells.values():
        for arc in cell.arcs:
            return arc.delay_rise.slews, arc.delay_rise.loads
    return None


def _cell_lines(cell: LibertyCell) -> List[str]:
    lines = [f"  cell ({cell.name}) {{"]
    if cell.is_sequential:
        lines.append('    ff (IQ, IQN) { clocked_on : "%s"; next_state : "D"; }'
                     % cell.clock_pin)
    for pin, cap in sorted(cell.input_caps.items()):
        direction = "input"
        lines.append(f"    pin ({pin}) {{")
        lines.append(f"      direction : {direction};")
        if pin == cell.clock_pin:
            lines.append("      clock : true;")
        lines.append(f"      capacitance : {cap:.4f};")
        lines.append("    }")
    outputs = {arc.output_pin for arc in cell.arcs}
    for output in sorted(outputs):
        lines.append(f"    pin ({output}) {{")
        lines.append("      direction : output;")
        for arc in cell.arcs:
            if arc.output_pin != output:
                continue
            lines.append("      timing () {")
            lines.append(f"        related_pin : \"{arc.input_pin}\";")
            lines.append(f"        timing_sense : {arc.sense}_unate;"
                         if arc.sense != "non_unate"
                         else "        timing_sense : non_unate;")
            lines.extend(_table_lines("cell_rise", arc.delay_rise))
            lines.extend(_table_lines("cell_fall", arc.delay_fall))
            lines.extend(_table_lines("rise_transition", arc.slew_rise))
            lines.extend(_table_lines("fall_transition", arc.slew_fall))
            lines.append("      }")
        lines.append("    }")
    lines.append("  }")
    lines.append("")
    return lines


def _table_lines(keyword: str, table: TimingTable) -> List[str]:
    lines = [f"        {keyword} (delay_template) {{"]
    lines.append(f"          index_1 ({_values(table.slews)});")
    lines.append(f"          index_2 ({_values(table.loads)});")
    rows = ", ".join(f'"{", ".join(f"{v:.3f}" for v in row)}"' for row in table.values)
    lines.append(f"          values ({rows});")
    lines.append("        }")
    return lines


def _values(axis: Sequence[float]) -> str:
    return '"' + ", ".join(f"{v:g}" for v in axis) + '"'
