"""Corner-based and Monte-Carlo statistical timing.

The paper's motivation: corner cases assume every gate sits at its
worst-case CD simultaneously, which silicon never does.  ``run_corners``
produces that classical guardband; ``run_monte_carlo`` samples per-instance
CD perturbations (a systematic mean, a spatially correlated component over
placement, and independent noise) and reruns STA, exposing how pessimistic
the corners are.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cells import StandardCell
from repro.circuits import Netlist
from repro.device import AlphaPowerModel
from repro.place.placer import Placement
from repro.timing.sta import InstanceDerate, StaEngine, TimingConstraints
from repro.units import Dimensionless, Picoseconds


@dataclass(frozen=True)
class CdVariationSpec:
    """CD perturbation statistics in nm."""

    mean_nm: float = 0.0
    sigma_random_nm: float = 2.0
    sigma_correlated_nm: float = 2.0
    correlation_length_nm: float = 50_000.0
    seed: int = 1


@dataclass(frozen=True)
class CornerSpec:
    """A classical process corner: every gate at the same CD offset."""

    name: str
    delta_l_nm: float


DEFAULT_CORNERS = (
    CornerSpec("fast", -6.0),
    CornerSpec("typical", 0.0),
    CornerSpec("slow", +6.0),
)


@dataclass
class MonteCarloResult:
    """WNS samples plus summary statistics.

    All statistics raise ``ValueError("no samples")`` on an empty result
    (e.g. ``run_monte_carlo(samples=0)``) rather than surfacing as
    ``ZeroDivisionError``/``ValueError`` from the arithmetic.
    """

    wns_samples: List[float] = field(default_factory=list)
    critical_delay_samples: List[float] = field(default_factory=list)

    def _require_samples(self) -> None:
        if not self.wns_samples:
            raise ValueError("no samples")

    @property
    def mean_wns(self) -> Picoseconds:
        self._require_samples()
        return sum(self.wns_samples) / len(self.wns_samples)

    @property
    def sigma_wns(self) -> Picoseconds:
        mean = self.mean_wns
        return (sum((x - mean) ** 2 for x in self.wns_samples) / len(self.wns_samples)) ** 0.5

    @property
    def min_wns(self) -> Picoseconds:
        self._require_samples()
        return min(self.wns_samples)

    def percentile_wns(self, q: Dimensionless) -> Picoseconds:
        """Nearest-rank percentile: the ceil(q/100 * n)-th order statistic.

        The previous ``int(q/100 * n)`` truncation was biased one rank
        high (q=50 over 10 samples picked the 6th order statistic).
        """
        self._require_samples()
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        ordered = sorted(self.wns_samples)
        index = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[min(index, len(ordered) - 1)]


#: ``cos(u)*cos(v)`` over independent uniform phases has mean-square 1/4
#: (E[cos^2] = 1/2 per axis), so the raw wave would deliver a per-gate
#: correlated sigma of sigma_correlated/2.  Scaling the wave by 2 restores
#: E[(amplitude * wave)^2] = sigma_correlated^2 exactly.
_CORRELATED_WAVE_NORM = 2.0


def compose_derates(prior: InstanceDerate, sampled: InstanceDerate) -> InstanceDerate:
    """Multiplicative composition of two per-instance derates.

    Scales multiply; ``failed`` is sticky — a catastrophic printability
    fault from either contribution survives composition.  (An earlier
    inline composition kept only ``prior.failed``, silently un-failing a
    failed sampled instance whenever base derates were present.)
    """
    return InstanceDerate(
        delay_rise_scale=prior.delay_rise_scale * sampled.delay_rise_scale,
        delay_fall_scale=prior.delay_fall_scale * sampled.delay_fall_scale,
        cap_scale=prior.cap_scale * sampled.cap_scale,
        failed=prior.failed or sampled.failed,
    )


def derate_for_delta_l(cell: StandardCell, delta_l: float, model: AlphaPowerModel) -> InstanceDerate:
    """Derate for a uniform gate-length shift of one instance."""
    length = cell.transistors[0].length
    new_length = max(length + delta_l, model.params.l_min * 0.8)
    scales = {}
    for mos_type in ("p", "n"):
        wl = cell.network_strength(mos_type)
        width = wl * length
        scales[mos_type] = (
            model.drive_current(width, length) / model.drive_current(width, new_length)
        )
    return InstanceDerate(
        delay_rise_scale=scales["p"],
        delay_fall_scale=scales["n"],
        cap_scale=new_length / length,
    )


def run_corners(
    engine: StaEngine,
    model: AlphaPowerModel,
    constraints: Optional[TimingConstraints] = None,
    corners: Sequence[CornerSpec] = DEFAULT_CORNERS,
) -> Dict[str, float]:
    """WNS at each classical corner (all instances shifted together)."""
    results: Dict[str, float] = {}
    for corner in corners:
        derates = {
            gate.name: derate_for_delta_l(
                engine.cells[gate.cell_name], corner.delta_l_nm, model
            )
            for gate in engine.netlist.gates.values()
        }
        results[corner.name] = engine.run(constraints, derates).wns
    return results


def sample_instance_deltas(
    netlist: Netlist,
    placement: Optional[Placement],
    spec: CdVariationSpec,
    sample_index: int,
) -> Dict[str, float]:
    """Per-instance delta-L (nm) for one Monte-Carlo sample.

    The correlated component is a smooth random field over placement
    coordinates (two cosine harmonics with random phase — cheap, bounded,
    and spatially smooth), normalized by ``_CORRELATED_WAVE_NORM`` so the
    delivered per-gate variance is exactly ``sigma_correlated_nm**2``
    (marginally over the phases); the random component is i.i.d. per
    instance.
    """
    rng = random.Random(spec.seed * 1_000_003 + sample_index)
    phase_x = rng.uniform(0, 2 * math.pi)
    phase_y = rng.uniform(0, 2 * math.pi)
    amplitude = rng.gauss(0.0, spec.sigma_correlated_nm)
    deltas: Dict[str, float] = {}
    for gate_name in netlist.gates:
        correlated = 0.0
        if placement is not None and spec.sigma_correlated_nm > 0:
            center = placement.gates[gate_name].bbox.center
            wave = math.cos(
                2 * math.pi * center.x / spec.correlation_length_nm + phase_x
            ) * math.cos(2 * math.pi * center.y / spec.correlation_length_nm + phase_y)
            correlated = amplitude * _CORRELATED_WAVE_NORM * wave
        elif spec.sigma_correlated_nm > 0:
            correlated = amplitude  # fully shared when no placement given
        deltas[gate_name] = spec.mean_nm + correlated + rng.gauss(0.0, spec.sigma_random_nm)
    return deltas


def run_monte_carlo(
    engine: StaEngine,
    model: AlphaPowerModel,
    samples: int = 100,
    spec: Optional[CdVariationSpec] = None,
    constraints: Optional[TimingConstraints] = None,
    base_derates: Optional[Dict[str, InstanceDerate]] = None,
) -> MonteCarloResult:
    """Monte-Carlo SSTA: sample CD fields, rerun STA, collect WNS.

    ``base_derates`` (e.g. the post-OPC systematic back-annotation) compose
    multiplicatively with the sampled variation.
    """
    spec = spec or CdVariationSpec()
    result = MonteCarloResult()
    base = base_derates or {}
    for index in range(samples):
        deltas = sample_instance_deltas(engine.netlist, engine.placement, spec, index)
        derates: Dict[str, InstanceDerate] = {}
        for gate in engine.netlist.gates.values():
            sampled = derate_for_delta_l(
                engine.cells[gate.cell_name], deltas[gate.name], model
            )
            prior = base.get(gate.name)
            if prior is None:
                derates[gate.name] = sampled
            else:
                derates[gate.name] = compose_derates(prior, sampled)
        sta = engine.run(constraints, derates)
        result.wns_samples.append(sta.wns)
        result.critical_delay_samples.append(sta.critical_delay)
    return result
