"""Critical-path reconstruction and ranking.

The paper's speed-path tables rank endpoints by slack and inspect the
worst path into each.  ``top_paths`` reconstructs exactly that: one worst
path per endpoint, ordered most-critical first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.timing.sta import StaResult


@dataclass(frozen=True)
class PathStage:
    """One hop of a timing path."""

    gate: str            # gate instance ("" for the launch point)
    net: str             # net the stage arrives on
    transition: str
    arrival: float
    delay: float         # arc delay into this stage


@dataclass(frozen=True)
class TimingPath:
    """A reconstructed worst path into one endpoint."""

    endpoint_net: str
    endpoint_transition: str
    arrival: float
    slack: float
    stages: Tuple[PathStage, ...]

    @property
    def gates(self) -> List[str]:
        return [s.gate for s in self.stages if s.gate]

    @property
    def depth(self) -> int:
        return len(self.gates)

    @property
    def name(self) -> str:
        return f"{self.endpoint_net}:{self.endpoint_transition}"

    def __str__(self) -> str:
        chain = " -> ".join(self.gates) or "<direct>"
        return (
            f"path to {self.name}: arrival {self.arrival:.1f} ps, "
            f"slack {self.slack:+.1f} ps via {chain}"
        )


def reconstruct_path(result: StaResult, net: str, transition: str) -> TimingPath:
    """Walk the predecessor chain back from an endpoint node."""
    key = (net, transition)
    if key not in result.arrivals:
        raise KeyError(f"no timing node {key}")
    stages: List[PathStage] = []
    slack_lookup = {(e.net, e.transition): e.slack for e in result.endpoints}
    while True:
        prev = result.predecessors.get(key)
        if prev is None:
            stages.append(PathStage("", key[0], key[1], result.arrivals[key], 0.0))
            break
        prev_net, prev_transition, gate, delay = prev
        stages.append(PathStage(gate, key[0], key[1], result.arrivals[key], delay))
        key = (prev_net, prev_transition)
    stages.reverse()
    return TimingPath(
        endpoint_net=net,
        endpoint_transition=transition,
        arrival=result.arrivals[(net, transition)],
        slack=slack_lookup.get((net, transition),
                               result.clock_period_ps - result.arrivals[(net, transition)]),
        stages=tuple(stages),
    )


def top_paths(result: StaResult, k: int = 10) -> List[TimingPath]:
    """The ``k`` most critical endpoint paths (one per endpoint node).

    Endpoints are collapsed per net (worst transition) so the ranking
    matches the paper's per-speed-path view, then ordered by slack.
    """
    worst_per_net: Dict[str, Tuple[float, str]] = {}
    for endpoint in result.endpoints:
        slack = endpoint.slack
        if endpoint.net not in worst_per_net or slack < worst_per_net[endpoint.net][0]:
            worst_per_net[endpoint.net] = (slack, endpoint.transition)
    ranked = sorted(worst_per_net.items(), key=lambda item: item[1][0])
    paths = [
        reconstruct_path(result, net, transition)
        for net, (slack, transition) in ranked[:k]
    ]
    return paths


def path_rank_map(paths: List[TimingPath]) -> Dict[str, int]:
    """Endpoint net -> rank (0 = most critical)."""
    return {path.endpoint_net: rank for rank, path in enumerate(paths)}
