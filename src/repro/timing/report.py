"""Human-readable timing reports (signoff-tool style)."""

from __future__ import annotations

from typing import List, Optional

from repro.circuits import Netlist
from repro.timing.paths import top_paths
from repro.timing.sta import StaResult


def report_timing(
    result: StaResult,
    k: int = 3,
    netlist: Optional[Netlist] = None,
) -> str:
    """A classic per-path timing report: one block per critical endpoint.

    ``netlist`` (optional) annotates each stage with its cell type.
    """
    blocks: List[str] = []
    for path in top_paths(result, k):
        lines = [
            f"Path to {path.endpoint_net} ({path.endpoint_transition})",
            f"  required: {result.clock_period_ps:10.1f} ps",
            f"  arrival:  {path.arrival:10.1f} ps",
            f"  slack:    {path.slack:+10.1f} ps "
            f"({'VIOLATED' if path.slack < 0 else 'MET'})",
            "",
            f"  {'point':<28} {'incr':>8} {'arrive':>8}",
            f"  {'-' * 46}",
        ]
        for stage in path.stages:
            if stage.gate:
                cell = ""
                if netlist is not None:
                    cell = f" ({netlist.gates[stage.gate].cell_name})"
                point = f"{stage.gate}{cell}/{stage.net}"
            else:
                point = f"{stage.net} (launch)"
            arrow = "^" if stage.transition == "rise" else "v"
            lines.append(
                f"  {point:<28} {stage.delay:8.1f} {stage.arrival:8.1f} {arrow}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def report_summary(result: StaResult) -> str:
    """One-paragraph timing summary (WNS / TNS / endpoint counts)."""
    failing = sum(1 for e in result.endpoints if e.slack < 0)
    return (
        f"clock period {result.clock_period_ps:.1f} ps | "
        f"WNS {result.wns:+.1f} ps | TNS {result.tns:+.1f} ps | "
        f"{failing}/{len(result.endpoints)} endpoints failing"
    )
