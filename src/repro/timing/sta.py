"""The static timing analysis engine.

Block-based STA over the gate-level netlist: per-net arrival times and
slews for both transitions, endpoint slacks against a clock constraint,
and predecessor records for path reconstruction.  Per-instance derates
(the vehicle for post-OPC CD back-annotation) scale arc delays and pin
capacitances without re-characterizing the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cells import CellLibrary
from repro.circuits import Netlist
from repro.place.placer import Placement
from repro.timing.liberty import LibertyLibrary
from repro.units import Dimensionless, Femtofarads, Picoseconds

TRANSITIONS = ("rise", "fall")

NodeKey = Tuple[str, str]  # (net, transition)


@dataclass(frozen=True)
class TimingConstraints:
    """The timing environment."""

    clock_period_ps: float = 1000.0
    input_slew_ps: float = 30.0
    input_arrival_ps: float = 0.0
    #: capacitive load each primary output drives (fF)
    output_load_ff: float = 2.0


@dataclass(frozen=True)
class WireModel:
    """Linear wire parasitics applied to net HPWL (per nm)."""

    c_per_nm: float = 2.0e-4   # fF/nm  (~0.2 fF/um)
    r_per_nm: float = 2.5e-7   # kOhm/nm (~0.25 Ohm/um)


@dataclass(frozen=True)
class InstanceDerate:
    """Per-instance timing adjustment from extracted CDs.

    Delay scales multiply the arc delay through this instance (rise = the
    output rising, limited by the pull-up network); ``cap_scale``
    multiplies the instance's input pin capacitances (printed gate area).
    A ``failed`` instance records a catastrophic printability fault.
    """

    delay_rise_scale: Dimensionless = 1.0
    delay_fall_scale: Dimensionless = 1.0
    cap_scale: Dimensionless = 1.0
    failed: bool = False


@dataclass
class Endpoint:
    net: str
    transition: str
    arrival: Picoseconds
    required: Picoseconds

    @property
    def slack(self) -> Picoseconds:
        return self.required - self.arrival


@dataclass
class StaResult:
    """All timing quantities of one STA run."""

    arrivals: Dict[NodeKey, float] = field(default_factory=dict)
    slews: Dict[NodeKey, float] = field(default_factory=dict)
    #: (net, transition) -> (prev net, prev transition, gate name, arc delay)
    predecessors: Dict[NodeKey, Optional[Tuple[str, str, str, float]]] = field(
        default_factory=dict
    )
    endpoints: List[Endpoint] = field(default_factory=list)
    clock_period_ps: float = 0.0

    @property
    def worst_endpoint(self) -> Endpoint:
        if not self.endpoints:
            raise ValueError("no endpoints in STA result")
        return min(self.endpoints, key=lambda e: e.slack)

    @property
    def wns(self) -> Picoseconds:
        """Worst negative slack (most critical slack; may be positive)."""
        return self.worst_endpoint.slack

    @property
    def tns(self) -> Picoseconds:
        """Total negative slack."""
        return sum(min(e.slack, 0.0) for e in self.endpoints)

    @property
    def critical_delay(self) -> Picoseconds:
        """Longest arrival over all endpoints."""
        return max(e.arrival for e in self.endpoints)

    def endpoint_slacks(self) -> Dict[Tuple[str, str], float]:
        return {(e.net, e.transition): e.slack for e in self.endpoints}

    def slack_of(self, net: str) -> Picoseconds:
        """Worst slack over transitions at one endpoint net."""
        slacks = [e.slack for e in self.endpoints if e.net == net]
        if not slacks:
            raise KeyError(f"{net!r} is not an endpoint")
        return min(slacks)

    def with_clock_period(self, clock_period_ps: float) -> "StaResult":
        """This result re-based to a different clock period.

        Arrivals, slews and predecessors do not depend on the period —
        only endpoint required times do, and they all shift by the same
        delta (outputs are required at the period, register D pins at
        period minus setup).  The rebased copy shares the arrival/slew
        dicts with the original, so rebasing a cached STA is O(endpoints)
        instead of a full re-run; treat results as immutable.
        """
        if clock_period_ps == self.clock_period_ps:
            return self
        delta = clock_period_ps - self.clock_period_ps
        return StaResult(
            arrivals=self.arrivals,
            slews=self.slews,
            predecessors=self.predecessors,
            endpoints=[
                Endpoint(e.net, e.transition, e.arrival, e.required + delta)
                for e in self.endpoints
            ],
            clock_period_ps=clock_period_ps,
        )


class StaEngine:
    """Timing engine bound to one netlist + characterized library."""

    def __init__(
        self,
        netlist: Netlist,
        cells: CellLibrary,
        liberty: LibertyLibrary,
        placement: Optional[Placement] = None,
        wire_model: Optional[WireModel] = None,
        net_lengths: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.netlist = netlist
        self.cells = cells
        self.liberty = liberty
        self.placement = placement
        self.wire_model = wire_model if wire_model is not None else WireModel()
        self._order = netlist.topological_gates(cells)
        self._loads = self._build_load_map()
        self._driver_by_net: Dict[str, str] = {
            gate.connections[cells[gate.cell_name].output]: gate.name
            for gate in netlist.gates.values()
        }
        # Wire lengths: realised routes if provided, HPWL estimate otherwise.
        if net_lengths is not None:
            self._hpwl = dict(net_lengths)
        else:
            self._hpwl = self._build_hpwl() if placement is not None else {}

    # -- construction helpers ---------------------------------------------

    def _build_load_map(self) -> Dict[str, List[Tuple[str, str]]]:
        """net -> [(gate, input pin)] sink list."""
        loads: Dict[str, List[Tuple[str, str]]] = {}
        for gate in self.netlist.gates.values():
            cell = self.cells[gate.cell_name]
            sink_pins = list(cell.inputs) + ([cell.clock] if cell.clock else [])
            for pin in sink_pins:
                loads.setdefault(gate.connections[pin], []).append((gate.name, pin))
        return loads

    def _build_hpwl(self) -> Dict[str, float]:
        lengths: Dict[str, float] = {}
        points: Dict[str, List] = {}
        for gate in self.netlist.gates.values():
            center = self.placement.gates[gate.name].bbox.center
            for net in gate.connections.values():
                points.setdefault(net, []).append(center)
        for net, pts in points.items():
            if len(pts) < 2:
                lengths[net] = 0.0
                continue
            xs = [p.x for p in pts]
            ys = [p.y for p in pts]
            lengths[net] = (max(xs) - min(xs)) + (max(ys) - min(ys))
        return lengths

    def driver_name_of(self, net: str) -> Optional[str]:
        """Name of the gate driving ``net`` (None for primary inputs).

        O(1) via a map precomputed at construction — the Netlist-level
        ``driver_of`` scans every gate per query, which turns incremental
        cone extraction quadratic on multi-thousand-gate designs.
        """
        return self._driver_by_net.get(net)

    def net_load_ff(
        self,
        net: str,
        constraints: TimingConstraints,
        derates: Mapping[str, InstanceDerate],
    ) -> float:
        """Total capacitive load on a net: sink pins + wire + PO load."""
        total = 0.0
        for gate_name, pin in self._loads.get(net, ()):  # pin caps
            gate = self.netlist.gates[gate_name]
            lib_cell = self.liberty[gate.cell_name]
            scale = derates.get(gate_name, _NO_DERATE).cap_scale
            total += lib_cell.capacitance(pin) * scale
        total += self._hpwl.get(net, 0.0) * self.wire_model.c_per_nm
        if net in self.netlist.outputs:
            total += constraints.output_load_ff
        return total

    def _wire_delay_ps(self, net: str, sink_cap: float) -> float:
        length = self._hpwl.get(net, 0.0)
        if length == 0.0:
            return 0.0
        r = length * self.wire_model.r_per_nm
        c = length * self.wire_model.c_per_nm
        return r * (c / 2 + sink_cap)

    # -- the engine -------------------------------------------------------

    def run(
        self,
        constraints: Optional[TimingConstraints] = None,
        derates: Optional[Mapping[str, InstanceDerate]] = None,
    ) -> StaResult:
        constraints = constraints or TimingConstraints()
        derates = derates or {}
        result = StaResult(clock_period_ps=constraints.clock_period_ps)
        arrivals = result.arrivals
        slews = result.slews

        for net in self.netlist.inputs:
            for transition in TRANSITIONS:
                arrivals[(net, transition)] = constraints.input_arrival_ps
                slews[(net, transition)] = constraints.input_slew_ps
                result.predecessors[(net, transition)] = None

        for gate in self._order:
            cell = self.cells[gate.cell_name]
            lib_cell = self.liberty[gate.cell_name]
            derate = derates.get(gate.name, _NO_DERATE)
            out_net = gate.connections[cell.output]
            load = self.net_load_ff(out_net, constraints, derates)

            if lib_cell.is_sequential:
                # Launch at clock edge (t=0) + clock-to-Q.
                for transition in TRANSITIONS:
                    scale = (derate.delay_rise_scale if transition == "rise"
                             else derate.delay_fall_scale)
                    arrivals[(out_net, transition)] = lib_cell.clk_to_q * scale
                    slews[(out_net, transition)] = constraints.input_slew_ps
                    result.predecessors[(out_net, transition)] = None
                continue

            for arc in lib_cell.arcs:
                in_net = gate.connections[arc.input_pin]
                for in_transition in TRANSITIONS:
                    key_in = (in_net, in_transition)
                    if key_in not in arrivals:
                        continue
                    for out_transition in arc.output_transitions(in_transition):
                        delay_table, slew_table = arc.tables_for(out_transition)
                        scale = (derate.delay_rise_scale if out_transition == "rise"
                                 else derate.delay_fall_scale)
                        delay = delay_table.lookup(slews[key_in], load) * scale
                        delay += self._wire_delay_ps(out_net, load)
                        out_slew = slew_table.lookup(slews[key_in], load)
                        key_out = (out_net, out_transition)
                        candidate = arrivals[key_in] + delay
                        if candidate > arrivals.get(key_out, -float("inf")):
                            arrivals[key_out] = candidate
                            slews[key_out] = out_slew
                            result.predecessors[key_out] = (
                                in_net, in_transition, gate.name, delay
                            )
                        elif key_out in slews:
                            # Worst-slew merge, the conservative STA habit.
                            slews[key_out] = max(slews[key_out], out_slew)

        self._collect_endpoints(result, constraints)
        return result

    def _collect_endpoints(
        self, result: StaResult, constraints: TimingConstraints
    ) -> None:
        period = constraints.clock_period_ps
        for net in self.netlist.outputs:
            for transition in TRANSITIONS:
                key = (net, transition)
                if key in result.arrivals:
                    result.endpoints.append(
                        Endpoint(net, transition, result.arrivals[key], period)
                    )
        # DFF D pins are capture endpoints.
        for gate in self.netlist.gates.values():
            lib_cell = self.liberty[gate.cell_name]
            if not lib_cell.is_sequential:
                continue
            cell = self.cells[gate.cell_name]
            d_net = gate.connections[cell.inputs[0]]
            for transition in TRANSITIONS:
                key = (d_net, transition)
                if key in result.arrivals:
                    result.endpoints.append(
                        Endpoint(d_net, transition, result.arrivals[key],
                                 period - lib_cell.setup_time)
                    )


_NO_DERATE = InstanceDerate()
