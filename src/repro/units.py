"""Physical-unit vocabulary for the repro signal chain.

The whole pipeline is unit transport: drawn CDs in **nm** are rasterized
onto a **pixel** grid (``pixel`` = nm per pixel), contoured back to nm,
turned into dimensionless derate scales, and finally into **ps**-scale
timing.  These aliases make that transport explicit in signatures and
dataclass fields::

    def value_at(self, x: Nanometers, y: Nanometers) -> Dimensionless: ...

At runtime every alias *is* ``float`` (``typing.Annotated`` erases to its
base), so annotating an API changes nothing about execution or mypy
strictness.  The payoff is static: ``repro lint`` seeds its unit lattice
from these aliases (and from the naming conventions tabled below) and
propagates them interprocedurally, so adding nm to px, or returning an
unlabelled float from a metrology API, becomes a lint finding
(``unit-mismatch`` / ``missing-grid-conversion`` / ``unit-unsafe-return``
in :mod:`repro.lintcheck.units`).

Conventions the linter recognizes without an annotation:

===============  ==========================================
name shape       unit
===============  ==========================================
``*_nm``         nanometres
``*_um``         micrometres
``*_px``         pixels
``*_ps``         picoseconds
``*_ns``         nanoseconds
``pixel``        nm per pixel (the raster conversion factor)
``pixel_nm``     nm per pixel (same factor, settings name)
===============  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Annotated, Dict


@dataclass(frozen=True)
class Unit:
    """Annotation marker naming the physical unit of a value."""

    name: str


#: lengths in layout/wafer space
Nanometers = Annotated[float, Unit("nm")]
Micrometers = Annotated[float, Unit("um")]
#: positions/sizes on the raster grid (image sample space)
Pixels = Annotated[float, Unit("px")]
#: the raster conversion factor: how many nm one pixel spans
NmPerPixel = Annotated[float, Unit("nm_per_px")]
#: timing quantities
Picoseconds = Annotated[float, Unit("ps")]
Nanoseconds = Annotated[float, Unit("ns")]
#: electrical quantities of the delay model (load caps, driver resistance)
Femtofarads = Annotated[float, Unit("fF")]
Kiloohms = Annotated[float, Unit("kohm")]
#: spatial frequency (pupil cutoff NA/lambda and friends)
PerNanometer = Annotated[float, Unit("inv_nm")]
#: explicitly unitless quantities (ratios, scales, intensities)
Dimensionless = Annotated[float, Unit("1")]

#: alias simple name -> lattice unit name, the seed table the lint reads
ALIAS_UNITS: Dict[str, str] = {
    "Nanometers": "nm",
    "Micrometers": "um",
    "Pixels": "px",
    "NmPerPixel": "nm_per_px",
    "Picoseconds": "ps",
    "Nanoseconds": "ns",
    "Femtofarads": "fF",
    "Kiloohms": "kohm",
    "PerNanometer": "inv_nm",
    "Dimensionless": "1",
}

#: identifier suffix -> unit (matched on variables, parameters, attributes)
SUFFIX_UNITS: Dict[str, str] = {
    "_nm": "nm",
    "_um": "um",
    "_px": "px",
    "_ps": "ps",
    "_ns": "ns",
    "_ff": "fF",
    "_kohm": "kohm",
}

#: exact identifier/attribute names with a fixed conventional unit
NAME_UNITS: Dict[str, str] = {
    "pixel": "nm_per_px",
    "pixel_nm": "nm_per_px",
    "defocus": "nm",
    "wavelength": "nm",
    "ambit": "nm",
}

PS_PER_NS = 1000.0
NM_PER_UM = 1000.0


def nm_to_px(value_nm: Nanometers, pixel: NmPerPixel) -> Pixels:
    """Convert a wafer-space length to raster samples."""
    if pixel <= 0:
        raise ValueError("pixel must be positive")
    return value_nm / pixel


def px_to_nm(value_px: Pixels, pixel: NmPerPixel) -> Nanometers:
    """Convert a raster-space length back to wafer nanometres."""
    if pixel <= 0:
        raise ValueError("pixel must be positive")
    return value_px * pixel


def ns_to_ps(value_ns: Nanoseconds) -> Picoseconds:
    return value_ns * PS_PER_NS


def ps_to_ns(value_ps: Picoseconds) -> Nanoseconds:
    return value_ps / PS_PER_NS


def um_to_nm(value_um: Micrometers) -> Nanometers:
    return value_um * NM_PER_UM
