"""Across-chip process variation: dose/defocus maps, LER, decomposition."""

from repro.variation.maps import DoseDefocusMap, condition_at, uniform_map
from repro.variation.ler import apply_ler

__all__ = ["DoseDefocusMap", "condition_at", "uniform_map", "apply_ler"]
