"""Line-edge-roughness (LER) injection.

The CTR model produces perfectly smooth edges; real resist adds a
stochastic edge position noise (sigma ~1.5-2.5 nm at 90 nm-era processes,
correlation length tens of nm).  Each measured CD slice sees the combined
roughness of its two independent edges, so slice CDs get sigma*sqrt(2) of
Gaussian noise — applied post-metrology, which is statistically equivalent
to roughening the contours for everything downstream (ELs, derates).
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Mapping

from repro.metrology.gate_cd import GateCdMeasurement


def apply_ler(
    measurements: Mapping[Hashable, GateCdMeasurement],
    sigma_nm: float = 1.8,
    seed: int = 0,
) -> Dict[Hashable, GateCdMeasurement]:
    """A new measurement set with per-slice LER noise added.

    Slices further apart than the roughness correlation length are
    independent; the flow's slices are ~100 nm apart, so i.i.d. noise per
    slice is the right regime.  CDs are floored at zero (an edge cannot
    cross itself).
    """
    if sigma_nm < 0:
        raise ValueError("sigma must be non-negative")
    rng = random.Random(seed)
    noisy: Dict[Hashable, GateCdMeasurement] = {}
    edge_factor = 2.0 ** 0.5  # two independent rough edges per CD
    for key in sorted(measurements, key=repr):
        m = measurements[key]
        copy = GateCdMeasurement(gate_rect=m.gate_rect, drawn_cd=m.drawn_cd)
        copy.slice_positions = list(m.slice_positions)
        copy.slice_cds = [
            max(0.0, cd + rng.gauss(0.0, sigma_nm * edge_factor)) if cd > 0 else 0.0
            for cd in m.slice_cds
        ]
        noisy[key] = copy
    return noisy
