"""Across-chip exposure maps.

Dose and focus are not uniform over a die: lens heating, wafer topography
and scan-direction signatures create smooth low-order spatial variation.
``DoseDefocusMap`` models this as a bounded harmonic field over the die,
giving each layout location its own :class:`ProcessCondition` — the
across-chip linewidth variation (ACLV) driver of the evaluation.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Tuple

from repro.geometry import Rect
from repro.litho.resist import ProcessCondition


@dataclass(frozen=True)
class DoseDefocusMap:
    """Smooth dose/defocus fields over a die region.

    Each field is mean + amplitude * cos(2 pi x / Lx + px) * cos(2 pi y /
    Ly + py) with seeded random phases — bounded, differentiable, and with
    a controllable spatial scale, which is all the evaluation needs.
    """

    die: Rect
    dose_mean: float = 1.0
    dose_amplitude: float = 0.03
    defocus_mean_nm: float = 0.0
    defocus_amplitude_nm: float = 80.0
    spatial_scale: float = 0.7  # wavelengths across the die
    seed: int = 0
    _phases: Tuple[float, float, float, float] = field(init=False, default=(0, 0, 0, 0))

    def __post_init__(self):
        rng = random.Random(self.seed)
        object.__setattr__(
            self, "_phases", tuple(rng.uniform(0, 2 * math.pi) for _ in range(4))
        )

    def _harmonic(self, x: float, y: float, phase_x: float, phase_y: float) -> float:
        width = max(self.die.width, 1.0)
        height = max(self.die.height, 1.0)
        fx = 2 * math.pi * self.spatial_scale * (x - self.die.x0) / width
        fy = 2 * math.pi * self.spatial_scale * (y - self.die.y0) / height
        return math.cos(fx + phase_x) * math.cos(fy + phase_y)

    def dose_at(self, x: float, y: float) -> float:
        p = self._phases
        return self.dose_mean + self.dose_amplitude * self._harmonic(x, y, p[0], p[1])

    def defocus_at(self, x: float, y: float) -> float:
        p = self._phases
        return self.defocus_mean_nm + self.defocus_amplitude_nm * self._harmonic(
            x, y, p[2], p[3]
        )

    def condition_at(self, x: float, y: float) -> ProcessCondition:
        return ProcessCondition(dose=self.dose_at(x, y), defocus_nm=self.defocus_at(x, y))


def uniform_map(die: Rect, dose: float = 1.0, defocus_nm: float = 0.0) -> DoseDefocusMap:
    """A degenerate map: the same condition everywhere (corner studies)."""
    return DoseDefocusMap(
        die=die,
        dose_mean=dose,
        dose_amplitude=0.0,
        defocus_mean_nm=defocus_nm,
        defocus_amplitude_nm=0.0,
    )


def condition_at(process_map: DoseDefocusMap, rect: Rect) -> ProcessCondition:
    """The exposure condition at a layout rectangle's center."""
    center = rect.center
    return process_map.condition_at(center.x, center.y)
