"""Tests for rank correlation and report formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import compare_rankings, format_histogram, format_table, kendall_tau, spearman_rho
from repro.timing.paths import PathStage, TimingPath


def path(net, slack):
    return TimingPath(
        endpoint_net=net, endpoint_transition="rise", arrival=100.0 - slack,
        slack=slack, stages=(PathStage("", net, "rise", 100.0 - slack, 0.0),),
    )


class TestRankCorrelation:
    def test_identical_rankings(self):
        assert kendall_tau([0, 1, 2], [0, 1, 2]) == 1.0
        assert spearman_rho([0, 1, 2], [0, 1, 2]) == 1.0

    def test_reversed_rankings(self):
        assert kendall_tau([0, 1, 2], [2, 1, 0]) == -1.0
        assert spearman_rho([0, 1, 2, 3], [3, 2, 1, 0]) == -1.0

    def test_single_swap(self):
        tau = kendall_tau([0, 1, 2, 3], [1, 0, 2, 3])
        assert tau == pytest.approx(1 - 2 * 1 / 6)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau([0], [0, 1])
        with pytest.raises(ValueError):
            spearman_rho([0], [0, 1])

    @given(st.permutations(list(range(6))))
    def test_tau_bounds(self, perm):
        tau = kendall_tau(list(range(6)), list(perm))
        assert -1.0 <= tau <= 1.0

    @given(st.permutations(list(range(6))))
    def test_rho_bounds(self, perm):
        rho = spearman_rho(list(range(6)), list(perm))
        assert -1.0 <= rho <= 1.0


class TestCompareRankings:
    def test_no_reorder(self):
        before = [path("a", 1.0), path("b", 2.0)]
        after = [path("a", 0.5), path("b", 1.5)]
        cmp = compare_rankings(before, after)
        assert cmp.tau == 1.0
        assert cmp.moved == 0
        assert not cmp.new_top

    def test_top_path_swap(self):
        before = [path("a", 1.0), path("b", 2.0)]
        after = [path("b", 0.5), path("a", 1.5)]
        cmp = compare_rankings(before, after)
        assert cmp.new_top
        assert cmp.moved == 2
        assert cmp.tau < 1.0

    def test_endpoint_entering_topk(self):
        before = [path("a", 1.0), path("b", 2.0)]
        after = [path("a", 1.0), path("c", 1.5)]
        cmp = compare_rankings(before, after)
        assert set(cmp.endpoints) == {"a", "b", "c"}
        assert cmp.moved >= 1

    def test_rows(self):
        before = [path("a", 1.0), path("b", 2.0)]
        after = [path("b", 0.5), path("a", 1.5)]
        rows = compare_rankings(before, after).rows()
        lookup = {net: (rb, ra, move) for net, rb, ra, move in rows}
        assert lookup["a"] == (0, 1, -1)
        assert lookup["b"] == (1, 0, 1)


class TestReport:
    def test_table_alignment(self):
        table = format_table(["name", "value"], [["x", 1.5], ["longer", 22.25]],
                             title="T1")
        lines = table.splitlines()
        assert lines[0] == "T1"
        assert "value" in lines[1]
        assert all("|" in line for line in lines[3:])
        assert "22.25" in table

    def test_histogram(self):
        text = format_histogram([(-1.0, 2), (0.0, 10), (1.0, 0)])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[1].count("#") > lines[0].count("#")
        assert lines[2].count("#") == 0

    def test_empty_histogram(self):
        assert "empty" in format_histogram([])
