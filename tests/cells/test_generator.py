"""Tests for generated cell layout: structure and DRC cleanliness."""

import pytest

from repro.cells import build_library
from repro.cells.generator import generate_cell_layout
from repro.pdk import Layers, make_tech_90nm
from repro.pdk.rules import run_drc


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


class TestGenerator:
    def test_stripe_count_matches_pins(self, tech):
        gen = generate_cell_layout("T", ["A", "B", "C"], 1, tech, input_pins=["A", "B", "C"])
        assert len(gen.cell.polygons_on(Layers.POLY)) == 6  # 3 stripes + 3 pads
        assert len(gen.transistors) == 6

    def test_cell_width_follows_pitch(self, tech):
        gen = generate_cell_layout("T", ["A", "B"], 1, tech)
        assert gen.width == 3 * tech.rules.poly_pitch

    def test_cell_height_is_row_height(self, tech):
        gen = generate_cell_layout("T", ["A"], 1, tech)
        assert gen.height == tech.rules.cell_height

    def test_rejects_empty_stripes(self, tech):
        with pytest.raises(ValueError):
            generate_cell_layout("T", [], 1, tech)

    def test_rejects_bad_drive(self, tech):
        with pytest.raises(ValueError):
            generate_cell_layout("T", ["A"], 0, tech)

    def test_oversized_drive_rejected(self, tech):
        with pytest.raises(ValueError):
            generate_cell_layout("T", ["A"], 10, tech)

    def test_pins_present(self, tech):
        gen = generate_cell_layout("T", ["A", "B"], 1, tech, input_pins=["A", "B"])
        assert set(gen.pins) == {"A", "B", "Z"}
        assert gen.pins["A"].direction == "input"
        assert gen.pins["Z"].direction == "output"

    def test_clock_pin_direction(self, tech):
        gen = generate_cell_layout(
            "T", ["D", "CK"], 1, tech, input_pins=["D"], clock_pin="CK", output_pin="Q"
        )
        assert gen.pins["CK"].direction == "clock"

    def test_gates_sit_on_active(self, tech):
        gen = generate_cell_layout("T", ["A", "B"], 2, tech)
        actives = gen.cell.polygons_on(Layers.ACTIVE)
        for t in gen.transistors:
            hosting = [a for a in actives if a.bbox.contains_rect(t.gate_rect)]
            assert len(hosting) == 1

    def test_poly_endcap_extends_past_active(self, tech):
        gen = generate_cell_layout("T", ["A"], 1, tech)
        stripe = max(gen.cell.polygons_on(Layers.POLY), key=lambda p: p.bbox.height)
        actives = gen.cell.polygons_on(Layers.ACTIVE)
        top = max(a.bbox.y1 for a in actives)
        bottom = min(a.bbox.y0 for a in actives)
        assert stripe.bbox.y1 - top >= tech.rules.poly_endcap - 1e-9
        assert bottom - stripe.bbox.y0 >= tech.rules.poly_endcap - 1e-9


class TestLibraryDrc:
    @pytest.mark.parametrize("name", [
        "INV_X1", "INV_X2", "BUF_X1", "NAND2_X1", "NAND3_X1", "NOR2_X1",
        "NOR3_X2", "AOI21_X1", "OAI21_X2", "XOR2_X1", "XNOR2_X1", "DFF_X1",
    ])
    def test_cells_are_drc_clean(self, lib, tech, name):
        cell = lib[name].layout
        shapes = {layer: cell.polygons_on(layer) for layer in cell.layers()}
        violations = run_drc(shapes, tech.rules)
        assert violations == [], "\n".join(str(v) for v in violations)


class TestLibrary:
    def test_expected_cells_present(self, lib):
        for base in ("INV", "BUF", "NAND2", "NAND3", "NOR2", "NOR3",
                     "AOI21", "OAI21", "XOR2", "XNOR2", "DFF"):
            assert f"{base}_X1" in lib
            assert f"{base}_X2" in lib

    def test_len_and_names(self, lib):
        assert len(lib) == 22
        assert lib.names() == sorted(lib.names())

    def test_unknown_cell_message(self, lib):
        with pytest.raises(KeyError, match="available"):
            lib["MAGIC_X9"]

    def test_duplicate_add_rejected(self, lib):
        with pytest.raises(ValueError):
            lib.add(lib["INV_X1"])

    def test_combinational_excludes_dff(self, lib):
        names = {c.name for c in lib.combinational()}
        assert "DFF_X1" not in names
        assert "INV_X1" in names

    def test_dff_is_sequential_with_clock(self, lib):
        dff = lib["DFF_X1"]
        assert dff.is_sequential
        assert dff.clock == "CK"
        assert dff.output == "Q"
