"""Tests for SPICE subcircuit emission."""

import re

import pytest

from repro.cells import build_library
from repro.cells.spice import write_spice_library, write_spice_subckt
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def lib():
    return build_library(make_tech_90nm())


class TestSpiceSubckt:
    def test_structure(self, lib):
        deck = write_spice_subckt(lib["NAND2_X1"])
        assert deck.startswith("* NAND2_X1")
        assert ".subckt NAND2_X1 A B Z VDD VSS" in deck
        assert deck.rstrip().endswith(".ends NAND2_X1")

    def test_one_device_per_transistor(self, lib):
        cell = lib["AOI21_X1"]
        deck = write_spice_subckt(cell)
        devices = [line for line in deck.splitlines() if line.startswith("M")]
        assert len(devices) == len(cell.transistors)

    def test_drawn_dimensions(self, lib):
        deck = write_spice_subckt(lib["INV_X1"])
        assert "W=400n L=90.0n" in deck   # NMOS
        assert "W=600n L=90.0n" in deck   # PMOS

    def test_length_overrides(self, lib):
        deck = write_spice_subckt(lib["INV_X1"], {"MN0": 84.3})
        assert "L=84.3n" in deck
        assert "W=600n L=90.0n" in deck  # PMOS untouched

    def test_mos_models_and_bulk(self, lib):
        deck = write_spice_subckt(lib["INV_X1"])
        nmos = next(line for line in deck.splitlines() if line.startswith("MMN0"))
        pmos = next(line for line in deck.splitlines() if line.startswith("MMP0"))
        assert "nch" in nmos and nmos.split()[3] == "VSS"
        assert "pch" in pmos and pmos.split()[3] == "VDD"

    def test_clock_pin_in_ports(self, lib):
        deck = write_spice_subckt(lib["DFF_X1"])
        assert ".subckt DFF_X1 D CK Q VDD VSS" in deck

    def test_library_deck_contains_all_cells(self, lib):
        deck = write_spice_library(lib)
        for cell in lib:
            assert f".subckt {cell.name} " in deck
        # Every subckt is closed.
        assert deck.count(".subckt") == deck.count(".ends")

    def test_numeric_fields_parse(self, lib):
        deck = write_spice_subckt(lib["XOR2_X1"])
        for match in re.finditer(r"W=([\d.]+)n L=([\d.]+)n", deck):
            assert float(match.group(1)) > 0
            assert float(match.group(2)) > 0
