"""Tests for the standard-cell data model and electrical summaries."""

import pytest

from repro.cells import build_library
from repro.cells.stdcell import unate_inputs
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def lib():
    return build_library(make_tech_90nm())


class TestLogic:
    def test_inverter(self, lib):
        inv = lib["INV_X1"]
        assert inv.evaluate({"A": False}) is True
        assert inv.evaluate({"A": True}) is False

    def test_nand2_truth_table(self, lib):
        nand = lib["NAND2_X1"]
        for a in (False, True):
            for b in (False, True):
                assert nand.evaluate({"A": a, "B": b}) == (not (a and b))

    def test_aoi21(self, lib):
        aoi = lib["AOI21_X1"]
        assert aoi.evaluate({"A1": True, "A2": True, "B": False}) is False
        assert aoi.evaluate({"A1": True, "A2": False, "B": False}) is True
        assert aoi.evaluate({"A1": False, "A2": False, "B": True}) is False

    def test_xor_xnor_complement(self, lib):
        xor, xnor = lib["XOR2_X1"], lib["XNOR2_X1"]
        for a in (False, True):
            for b in (False, True):
                values = {"A": a, "B": b}
                assert xor.evaluate(values) != xnor.evaluate(values)

    def test_missing_input_raises(self, lib):
        with pytest.raises(KeyError):
            lib["NAND2_X1"].evaluate({"A": True})

    def test_unateness(self, lib):
        assert unate_inputs(lib["INV_X1"]) == {"A": "negative"}
        assert unate_inputs(lib["BUF_X1"]) == {"A": "positive"}
        assert unate_inputs(lib["NAND2_X1"]) == {"A": "negative", "B": "negative"}
        assert unate_inputs(lib["XOR2_X1"]) == {"A": "non-unate", "B": "non-unate"}


class TestElectrical:
    def test_inverter_strengths(self, lib):
        inv = lib["INV_X1"]
        # Wn=400, Wp=600 at L=90.
        assert inv.network_strength("n") == pytest.approx(400 / 90)
        assert inv.network_strength("p") == pytest.approx(600 / 90)

    def test_nand2_series_pull_down_is_half(self, lib):
        nand = lib["NAND2_X1"]
        assert nand.network_strength("n") == pytest.approx(400 / 90 / 2)
        assert nand.network_strength("p") == pytest.approx(600 / 90)

    def test_nor3_series_pull_up_is_third(self, lib):
        nor = lib["NOR3_X1"]
        assert nor.network_strength("p") == pytest.approx(600 / 90 / 3)
        assert nor.network_strength("n") == pytest.approx(400 / 90)

    def test_aoi21_worst_branch(self, lib):
        aoi = lib["AOI21_X1"]
        # Pull-down worst case: the 2-stack A branch, not the single B device.
        assert aoi.network_strength("n") == pytest.approx(400 / 90 / 2)

    def test_drive_scaling(self, lib):
        x1, x2 = lib["INV_X1"], lib["INV_X2"]
        assert x2.network_strength("n") == pytest.approx(2 * x1.network_strength("n"))

    def test_dimension_overrides_derate_strength(self, lib):
        inv = lib["INV_X1"]
        nominal = inv.network_strength("n")
        shorter = inv.network_strength("n", {"MN0": (400.0, 80.0)})
        longer = inv.network_strength("n", {"MN0": (400.0, 100.0)})
        assert shorter > nominal > longer

    def test_input_capacitance_positive_and_scales(self, lib):
        cox = make_tech_90nm().device.cox_af_per_nm2
        c1 = lib["INV_X1"].input_capacitance("A", cox)
        c2 = lib["INV_X2"].input_capacitance("A", cox)
        assert c1 > 0
        assert c2 == pytest.approx(2 * c1)

    def test_buffer_input_cap_counts_first_stage_only(self, lib):
        cox = make_tech_90nm().device.cox_af_per_nm2
        buf, inv = lib["BUF_X1"], lib["INV_X1"]
        assert buf.input_capacitance("A", cox) == pytest.approx(
            inv.input_capacitance("A", cox)
        )

    def test_unknown_branch_reference_rejected(self, lib):
        from repro.cells.stdcell import StandardCell

        inv = lib["INV_X1"]
        with pytest.raises(ValueError):
            StandardCell(
                name="BAD", kind="inv", inputs=["A"], output="Z",
                function=lambda v: not v["A"], layout=inv.layout,
                transistors=inv.transistors, pins=inv.pins,
                pull_down_branches=[["MISSING"]], pull_up_branches=[["MP0"]],
                width=inv.width, height=inv.height,
            )


class TestGeometryLinkage:
    def test_gate_rects_exist_per_transistor(self, lib):
        nand = lib["NAND2_X1"]
        rects = nand.gate_rects()
        assert set(rects) == {"MN0", "MN1", "MP0", "MP1"}

    def test_gate_rect_dimensions_match_device(self, lib):
        for cell in (lib["INV_X1"], lib["NAND3_X2"]):
            for t in cell.transistors:
                assert t.gate_rect.width == pytest.approx(t.length)
                assert t.gate_rect.height == pytest.approx(t.width)

    def test_nmos_below_pmos(self, lib):
        inv = lib["INV_X1"]
        mn, mp = inv.transistor("MN0"), inv.transistor("MP0")
        assert mn.gate_rect.y1 < mp.gate_rect.y0

    def test_area(self, lib):
        inv = lib["INV_X1"]
        assert inv.area == pytest.approx(inv.width * inv.height)
