"""Tests for the .bench parser and writer."""

import pytest

from repro.cells import build_library
from repro.circuits import C17_BENCH, parse_bench, write_bench
from repro.circuits.netlist import NetlistError
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def lib():
    return build_library(make_tech_90nm())


class TestParse:
    def test_c17(self, lib):
        n = parse_bench(C17_BENCH, lib)
        assert n.gate_count == 6
        assert all(g.cell_name == "NAND2_X1" for g in n.gates.values())

    def test_comments_and_blank_lines_ignored(self, lib):
        text = """
        # a comment
        INPUT(a)

        OUTPUT(y)
        y = NOT(a)  # trailing is not supported but inline strips fine
        """
        n = parse_bench(text, lib)
        assert n.gate_count == 1

    def test_and_expands_to_nand_inv(self, lib):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n"
        n = parse_bench(text, lib)
        usage = n.cell_usage()
        assert usage == {"NAND2_X1": 1, "INV_X1": 1}
        assert n.simulate(lib, {"a": True, "b": True})["y"] is True
        assert n.simulate(lib, {"a": True, "b": False})["y"] is False

    def test_or_expands_to_nor_inv(self, lib):
        text = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n"
        n = parse_bench(text, lib)
        assert n.simulate(lib, {"a": False, "b": False})["y"] is False
        assert n.simulate(lib, {"a": False, "b": True})["y"] is True

    def test_wide_nand_tree(self, lib):
        text = ("INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n"
                "OUTPUT(y)\ny = NAND(a, b, c, d, e)\n")
        n = parse_bench(text, lib)
        all_on = n.simulate(lib, {s: True for s in "abcde"})
        assert all_on["y"] is False
        one_off = n.simulate(lib, {"a": True, "b": True, "c": True, "d": True, "e": False})
        assert one_off["y"] is True

    def test_wide_xor_parity(self, lib):
        text = ("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = XOR(a, b, c)\n")
        n = parse_bench(text, lib)
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    values = n.simulate(lib, {"a": bool(a), "b": bool(b), "c": bool(c)})
                    assert values["y"] == bool((a + b + c) % 2)

    def test_numeric_nets_prefixed(self, lib):
        n = parse_bench(C17_BENCH, lib)
        assert "n22" in n.outputs

    def test_unknown_function_rejected(self, lib):
        with pytest.raises(NetlistError, match="unsupported"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n", lib)

    def test_garbage_line_rejected(self, lib):
        with pytest.raises(NetlistError, match="cannot parse"):
            parse_bench("INPUT(a)\nwhat is this\n", lib)

    def test_drive_selects_cells(self, lib):
        n = parse_bench(C17_BENCH, lib, drive=2)
        assert all(g.cell_name == "NAND2_X2" for g in n.gates.values())


class TestWrite:
    def test_roundtrip_c17(self, lib):
        original = parse_bench(C17_BENCH, lib)
        text = write_bench(original, lib)
        again = parse_bench(text, lib)
        assert again.gate_count == original.gate_count
        vec = {n: (i % 2 == 0) for i, n in enumerate(original.inputs)}
        for out in original.outputs:
            assert original.simulate(lib, vec)[out] == again.simulate(lib, vec)[out]

    def test_unsupported_kind_rejected(self, lib):
        from repro.circuits import Netlist

        n = Netlist("t")
        n.add_input("a")
        n.add_input("b")
        n.add_input("c")
        n.add_gate("g", "AOI21_X1", {"A1": "a", "A2": "b", "B": "c", "Z": "y"})
        n.add_output("y")
        with pytest.raises(NetlistError, match="no .bench equivalent"):
            write_bench(n, lib)
