"""Structured-ASIC fabric generator: determinism, sizing, validity."""

import pytest

from repro.cells import build_library
from repro.circuits import structured_asic
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def lib():
    return build_library(make_tech_90nm())


def _signature(netlist):
    """Full structural identity: every instance with its cell and pins."""
    return sorted(
        (g.name, g.cell_name, tuple(sorted(g.connections.items())))
        for g in netlist.gates.values()
    )


class TestStructuredAsic:
    @pytest.mark.parametrize("n_gates", [150, 400, 1000])
    def test_exact_gate_count(self, lib, n_gates):
        netlist = structured_asic(n_gates)
        assert netlist.gate_count == n_gates
        netlist.validate(lib)

    def test_deterministic_for_same_seed(self, lib):
        a = structured_asic(300, seed=7)
        b = structured_asic(300, seed=7)
        assert _signature(a) == _signature(b)

    def test_seed_changes_netlist(self):
        a = structured_asic(300, seed=1)
        b = structured_asic(300, seed=2)
        assert _signature(a) != _signature(b)
        # but not its size
        assert a.gate_count == b.gate_count == 300

    def test_has_register_banks(self, lib):
        netlist = structured_asic(400, n_stages=3)
        seq = [g for g in netlist.gates.values()
               if lib[g.cell_name].is_sequential]
        # n_stages + 1 banks, default width >= n_inputs = 16
        assert len(seq) >= (3 + 1) * 16
        assert all(set(g.connections) == {"D", "CK", "Q"} for g in seq)
        assert all(g.connections["CK"] == "ck" for g in seq)

    def test_outputs_are_final_bank(self, lib):
        netlist = structured_asic(200)
        q_nets = {g.connections["Q"] for g in netlist.gates.values()
                  if lib[g.cell_name].is_sequential}
        assert set(netlist.outputs) <= q_nets

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            structured_asic(10)  # cannot fit the register banks
        with pytest.raises(ValueError):
            structured_asic(500, n_inputs=2)

    def test_places_and_simulates_sta_shape(self, lib):
        from repro.place import place_rows

        netlist = structured_asic(500)
        placement = place_rows(netlist, lib)
        assert placement.die.width > 0
        assert set(placement.gates) == set(netlist.gates)
