"""Functional verification of the benchmark circuit generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells import build_library
from repro.circuits import (
    array_multiplier,
    c17,
    carry_select_adder,
    inverter_chain,
    random_logic,
    ripple_carry_adder,
)
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def lib():
    return build_library(make_tech_90nm())


def adder_inputs(bits, a, b, cin):
    values = {"cin": bool(cin)}
    for i in range(bits):
        values[f"a{i}"] = bool((a >> i) & 1)
        values[f"b{i}"] = bool((b >> i) & 1)
    return values


def adder_result(values, bits):
    total = sum(int(values[f"s{i}"]) << i for i in range(bits))
    return total + (int(values["cout"]) << bits)


class TestInverterChain:
    def test_parity(self, lib):
        for length in (1, 2, 5):
            chain = inverter_chain(length)
            chain.validate(lib)
            out = chain.simulate(lib, {"in0": True})["out"]
            assert out == (length % 2 == 0)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            inverter_chain(0)


class TestRippleCarryAdder:
    @pytest.mark.parametrize("bits", [1, 2, 4])
    def test_valid(self, lib, bits):
        ripple_carry_adder(bits).validate(lib)

    @pytest.mark.parametrize("a,b,cin", [(0, 0, 0), (1, 1, 0), (3, 1, 1), (7, 7, 1), (15, 1, 0)])
    def test_exhaustive_cases_4bit(self, lib, a, b, cin):
        rca = ripple_carry_adder(4)
        values = rca.simulate(lib, adder_inputs(4, a, b, cin))
        assert adder_result(values, 4) == a + b + cin

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    def test_random_8bit(self, lib, a, b, cin):
        rca = ripple_carry_adder(8)
        values = rca.simulate(lib, adder_inputs(8, a, b, cin))
        assert adder_result(values, 8) == a + b + cin


class TestCarrySelectAdder:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    def test_matches_integer_addition(self, lib, a, b, cin):
        csa = carry_select_adder(8, block=3)
        csa.validate(lib)
        values = csa.simulate(lib, adder_inputs(8, a, b, cin))
        assert adder_result(values, 8) == a + b + cin

    def test_shallower_than_ripple(self, lib):
        rca = ripple_carry_adder(16)
        csa = carry_select_adder(16, block=4)
        assert csa.logic_depth(lib) < rca.logic_depth(lib)


class TestArrayMultiplier:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_4x4_matches_integer_multiplication(self, lib, a, b):
        mult = array_multiplier(4)
        mult.validate(lib)
        values = {}
        for i in range(4):
            values[f"a{i}"] = bool((a >> i) & 1)
            values[f"b{i}"] = bool((b >> i) & 1)
        result = mult.simulate(lib, values)
        product = sum(int(result[f"p{k}"]) << k for k in range(8))
        assert product == a * b

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            array_multiplier(1)


class TestRandomLogic:
    def test_deterministic_per_seed(self, lib):
        n1 = random_logic(50, seed=7)
        n2 = random_logic(50, seed=7)
        assert [g.cell_name for g in n1.gates.values()] == [
            g.cell_name for g in n2.gates.values()
        ]

    def test_different_seeds_differ(self, lib):
        n1 = random_logic(50, seed=1)
        n2 = random_logic(50, seed=2)
        assert [g.cell_name for g in n1.gates.values()] != [
            g.cell_name for g in n2.gates.values()
        ]

    def test_valid_and_simulable(self, lib):
        n = random_logic(100, n_inputs=10, seed=3)
        n.validate(lib)
        values = n.simulate(lib, {f"in{i}": i % 2 == 0 for i in range(10)})
        assert all(isinstance(v, bool) for v in values.values())

    def test_has_outputs(self, lib):
        assert random_logic(30, seed=5).outputs


class TestC17:
    def test_structure(self, lib):
        netlist = c17(lib)
        assert netlist.gate_count == 6
        assert set(netlist.inputs) == {"n1", "n2", "n3", "n6", "n7"}
        assert set(netlist.outputs) == {"n22", "n23"}

    def test_known_vector(self, lib):
        netlist = c17(lib)
        # All-ones input: trace the NAND network by hand.
        values = netlist.simulate(lib, {n: True for n in netlist.inputs})
        # 10=NAND(1,3)=0; 11=NAND(3,6)=0; 16=NAND(2,11)=1; 19=NAND(11,7)=1
        # 22=NAND(10,16)=1; 23=NAND(16,19)=0
        assert values["n22"] is True
        assert values["n23"] is False
