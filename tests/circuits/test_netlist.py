"""Tests for the netlist model: structure, validation, simulation."""

import pytest

from repro.cells import build_library
from repro.circuits import Netlist
from repro.circuits.netlist import NetlistError
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def lib():
    return build_library(make_tech_90nm())


def tiny_netlist():
    n = Netlist("tiny")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("g1", "NAND2_X1", {"A": "a", "B": "b", "Z": "w1"})
    n.add_gate("g2", "INV_X1", {"A": "w1", "Z": "y"})
    n.add_output("y")
    return n


class TestStructure:
    def test_duplicate_input_rejected(self):
        n = Netlist("t")
        n.add_input("a")
        with pytest.raises(NetlistError):
            n.add_input("a")

    def test_duplicate_gate_rejected(self):
        n = tiny_netlist()
        with pytest.raises(NetlistError):
            n.add_gate("g1", "INV_X1", {"A": "a", "Z": "zz"})

    def test_driver_and_loads(self, lib):
        n = tiny_netlist()
        assert n.driver_of("w1", lib).name == "g1"
        assert n.driver_of("a", lib) is None
        assert [g.name for g in n.loads_of("w1", lib)] == ["g2"]
        assert [g.name for g in n.loads_of("a", lib)] == ["g1"]

    def test_fanout_counts_primary_outputs(self, lib):
        n = tiny_netlist()
        assert n.fanout_count("y", lib) == 1  # PO only
        assert n.fanout_count("w1", lib) == 1

    def test_nets(self, lib):
        n = tiny_netlist()
        assert n.nets(lib) == {"a", "b", "w1", "y"}

    def test_cell_usage(self):
        n = tiny_netlist()
        assert n.cell_usage() == {"NAND2_X1": 1, "INV_X1": 1}


class TestValidate:
    def test_clean_netlist_passes(self, lib):
        tiny_netlist().validate(lib)

    def test_multiple_drivers_rejected(self, lib):
        n = tiny_netlist()
        n.add_gate("g3", "INV_X1", {"A": "a", "Z": "w1"})
        with pytest.raises(NetlistError, match="driven by both"):
            n.validate(lib)

    def test_dangling_input_rejected(self, lib):
        n = tiny_netlist()
        n.add_gate("g3", "INV_X1", {"A": "ghost", "Z": "w3"})
        with pytest.raises(NetlistError, match="no driver"):
            n.validate(lib)

    def test_wrong_pins_rejected(self, lib):
        n = Netlist("t")
        n.add_input("a")
        n.add_gate("g1", "NAND2_X1", {"A": "a", "Z": "y"})  # missing B
        with pytest.raises(NetlistError, match="pins"):
            n.validate(lib)

    def test_undriven_output_rejected(self, lib):
        n = tiny_netlist()
        n.add_output("floating")
        with pytest.raises(NetlistError, match="no driver"):
            n.validate(lib)


class TestOrderAndSim:
    def test_topological_order_respects_dependencies(self, lib):
        n = tiny_netlist()
        order = [g.name for g in n.topological_gates(lib)]
        assert order.index("g1") < order.index("g2")

    def test_cycle_detected(self, lib):
        n = Netlist("loop")
        n.add_input("a")
        n.add_gate("g1", "NAND2_X1", {"A": "a", "B": "w2", "Z": "w1"})
        n.add_gate("g2", "INV_X1", {"A": "w1", "Z": "w2"})
        with pytest.raises(NetlistError, match="cycle"):
            n.topological_gates(lib)

    def test_dff_breaks_cycle(self, lib):
        n = Netlist("seq")
        n.add_input("clk_unused")
        n.add_gate("ff", "DFF_X1", {"D": "w2", "CK": "clk_unused", "Q": "q"})
        n.add_gate("g1", "INV_X1", {"A": "q", "Z": "w2"})
        n.add_output("q")
        order = [g.name for g in n.topological_gates(lib)]
        assert set(order) == {"ff", "g1"}

    def test_simulation_truth(self, lib):
        n = tiny_netlist()
        for a in (False, True):
            for b in (False, True):
                values = n.simulate(lib, {"a": a, "b": b})
                assert values["y"] == (a and b)

    def test_simulation_with_register_value(self, lib):
        n = Netlist("seq")
        n.add_input("clk")
        n.add_gate("ff", "DFF_X1", {"D": "w", "CK": "clk", "Q": "q"})
        n.add_gate("g1", "INV_X1", {"A": "q", "Z": "w"})
        n.add_output("w")
        low = n.simulate(lib, {"clk": False})
        assert low["w"] is True  # Q defaults to 0
        high = n.simulate(lib, {"clk": False}, register_values={"ff": True})
        assert high["w"] is False

    def test_simulation_missing_input_raises(self, lib):
        with pytest.raises(KeyError):
            tiny_netlist().simulate(lib, {"a": True})

    def test_logic_depth(self, lib):
        n = tiny_netlist()
        assert n.logic_depth(lib) == 2
