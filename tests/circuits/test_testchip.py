"""Tests for the mixed sequential testchip generator."""

import pytest

from repro.cells import build_library
from repro.circuits import testchip as build_testchip
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def lib():
    return build_library(make_tech_90nm())


@pytest.fixture(scope="module")
def chip(lib):
    chip = build_testchip(bits=3, random_gates=20)
    chip.validate(lib)
    return chip


class TestTestchip:
    def test_validates_and_sized(self, chip):
        # Adder + multiplier + random logic + registers + buffers.
        assert chip.gate_count > 80

    def test_all_islands_present(self, chip):
        prefixes = {name.split("_")[0] for name in chip.gates}
        assert {"add", "mul", "rnd", "ff"} <= prefixes

    def test_registers_bound_the_islands(self, chip, lib):
        dffs = [g for g in chip.gates.values() if g.cell_name.startswith("DFF")]
        # 6 input registers (3 bits x 2 buses) + one capture per island output.
        assert len(dffs) == 6 + len(chip.outputs)
        assert all(g.connections["CK"] == "ck" for g in dffs)

    def test_simulable(self, chip, lib):
        values = {"ck": False}
        for i in range(3):
            values[f"a{i}"] = True
            values[f"b{i}"] = i % 2 == 0
        result = chip.simulate(lib, values)
        assert all(isinstance(v, bool) for v in result.values())

    def test_register_to_register_paths_exist(self, chip, lib):
        from repro.device import AlphaPowerModel
        from repro.timing import StaEngine, TimingConstraints, characterize_library

        tech = make_tech_90nm()
        liberty = characterize_library(lib, AlphaPowerModel(tech.device))
        engine = StaEngine(chip, lib, liberty)
        result = engine.run(TimingConstraints(clock_period_ps=900))
        # EVERY capture-register D pin must be a timed endpoint: register
        # launches must be ordered before their combinational fanout.
        nets = {e.net for e in result.endpoints}
        for gate in chip.gates.values():
            if gate.cell_name.startswith("DFF") and gate.name.startswith("ff_out"):
                assert gate.connections["D"] in nets, gate.name
        assert result.critical_delay > 100  # launches at clk-to-Q, real logic

    def test_hold_endpoints_present(self, chip, lib):
        from repro.device import AlphaPowerModel
        from repro.timing import StaEngine, characterize_library, run_hold

        tech = make_tech_90nm()
        liberty = characterize_library(lib, AlphaPowerModel(tech.device))
        hold = run_hold(StaEngine(chip, lib, liberty))
        assert hold.endpoints
        assert hold.worst_hold_slack != float("inf")

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            build_testchip(bits=1)


class TestFlowReportMarkdown:
    def test_renders_complete_document(self, lib):
        from repro.analysis import flow_report_markdown
        from repro.circuits import inverter_chain
        from repro.flow import FlowConfig, PostOpcTimingFlow

        tech = make_tech_90nm()
        flow = PostOpcTimingFlow(inverter_chain(2), tech, cells=lib)
        report = flow.run(FlowConfig(opc_mode="none", clock_period_ps=400))
        text = flow_report_markdown(report)
        assert text.startswith("# Post-OPC timing report")
        assert "Worst-case slack" in text
        assert "Speed-path ranking" in text
        assert "Static power" in text
        assert "stage runtimes" in text
        assert f"{report.cd_stats.count} transistors measured" in text
