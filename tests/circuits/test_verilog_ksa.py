"""Tests for Verilog interchange and the Kogge-Stone generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells import build_library
from repro.circuits import (
    c17,
    kogge_stone_adder,
    parse_verilog,
    ripple_carry_adder,
    write_verilog,
)
from repro.circuits.netlist import NetlistError
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def lib():
    return build_library(make_tech_90nm())


class TestKoggeStone:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_8bit_addition(self, lib, a, b):
        ksa = kogge_stone_adder(8)
        values = {}
        for i in range(8):
            values[f"a{i}"] = bool((a >> i) & 1)
            values[f"b{i}"] = bool((b >> i) & 1)
        out = ksa.simulate(lib, values)
        got = sum(int(out[f"s{i}"]) << i for i in range(8)) + (int(out["cout"]) << 8)
        assert got == a + b

    def test_validates(self, lib):
        kogge_stone_adder(8).validate(lib)

    def test_logarithmic_depth(self, lib):
        ksa = kogge_stone_adder(8)
        rca = ripple_carry_adder(8)
        assert ksa.logic_depth(lib) < rca.logic_depth(lib) / 1.5

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            kogge_stone_adder(1)


class TestVerilogRoundTrip:
    def test_c17_roundtrip(self, lib):
        original = c17(lib)
        text = write_verilog(original, lib)
        again = parse_verilog(text, lib)
        assert again.gate_count == original.gate_count
        assert set(again.inputs) == set(original.inputs)
        vec = {n: (i % 2 == 0) for i, n in enumerate(original.inputs)}
        for out in original.outputs:
            assert again.simulate(lib, vec)[out] == original.simulate(lib, vec)[out]

    def test_adder_roundtrip_functional(self, lib):
        original = ripple_carry_adder(3)
        again = parse_verilog(write_verilog(original, lib), lib)
        values = {"cin": True}
        for i in range(3):
            values[f"a{i}"] = True
            values[f"b{i}"] = i == 1
        assert original.simulate(lib, values) == again.simulate(lib, values)

    def test_output_contains_structure(self, lib):
        text = write_verilog(c17(lib), lib)
        assert text.startswith("module c17 (")
        assert "input n1, n2, n3, n6, n7;" in text
        assert "endmodule" in text
        assert "NAND2_X1 g_n10 (.A(n1), .B(n3), .Z(n10));" in text

    def test_comments_stripped(self, lib):
        text = write_verilog(c17(lib), lib)
        commented = "// header comment\n" + text.replace(
            "endmodule", "/* block\ncomment */\nendmodule"
        )
        assert parse_verilog(commented, lib).gate_count == 6

    def test_missing_module_rejected(self, lib):
        with pytest.raises(NetlistError, match="module"):
            parse_verilog("wire w;\n", lib)

    def test_missing_endmodule_rejected(self, lib):
        with pytest.raises(NetlistError, match="endmodule"):
            parse_verilog("module m (a);\ninput a;\n", lib)

    def test_unknown_cell_rejected(self, lib):
        text = ("module m (a, y);\ninput a;\noutput y;\n"
                "MAGIC_X1 g1 (.A(a), .Z(y));\nendmodule\n")
        with pytest.raises(NetlistError, match="unknown cell"):
            parse_verilog(text, lib)

    def test_positional_ports_rejected(self, lib):
        text = ("module m (a, y);\ninput a;\noutput y;\n"
                "INV_X1 g1 (a, y);\nendmodule\n")
        with pytest.raises(NetlistError, match="positional"):
            parse_verilog(text, lib)

    def test_numeric_leading_name_sanitised(self, lib):
        netlist = ripple_carry_adder(2, name="2wide")
        text = write_verilog(netlist, lib)
        assert text.startswith("module m_2wide2 (") or "module" in text
        parse_verilog(text, lib)
