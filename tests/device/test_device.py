"""Tests for the MOSFET model and non-rectangular-gate extraction."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.device import (
    AlphaPowerModel,
    equivalent_length_drive,
    equivalent_length_leakage,
    extract_equivalent_lengths,
)
from repro.geometry import Rect
from repro.metrology.gate_cd import GateCdMeasurement
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def model():
    return AlphaPowerModel(make_tech_90nm().device)


class TestThreshold:
    def test_nominal_below_long_channel(self, model):
        p = model.params
        assert model.threshold_voltage(p.l_nominal) < p.vth0
        assert model.threshold_voltage(10 * p.l_nominal) == pytest.approx(p.vth0, abs=1e-4)

    def test_rolloff_monotone_in_length(self, model):
        vths = [model.threshold_voltage(L) for L in (50, 70, 90, 120, 200)]
        assert vths == sorted(vths)

    def test_rejects_bad_length(self, model):
        with pytest.raises(ValueError):
            model.threshold_voltage(0)


class TestDrive:
    def test_scales_with_width(self, model):
        assert model.drive_current(800, 90) == pytest.approx(
            2 * model.drive_current(400, 90)
        )

    def test_increases_as_length_shrinks(self, model):
        assert model.drive_current(400, 80) > model.drive_current(400, 90)

    def test_sensitivity_near_one_percent_per_nm(self, model):
        s = model.delay_sensitivity(90.0)
        assert 0.008 < s < 0.020  # ~1-2 %/nm, the 90 nm-era figure

    def test_rejects_bad_dimensions(self, model):
        with pytest.raises(ValueError):
            model.drive_current(0, 90)
        with pytest.raises(ValueError):
            model.leakage_current(400, -1)

    def test_effective_resistance_decreases_with_width(self, model):
        assert model.effective_resistance(800, 90) < model.effective_resistance(400, 90)

    def test_gate_capacitance(self, model):
        c = model.gate_capacitance(400, 90)
        assert c == pytest.approx(400 * 90 * model.params.cox_af_per_nm2 / 1000.0)


class TestLeakage:
    def test_explodes_at_short_length(self, model):
        ratio = model.leakage_current(400, 70) / model.leakage_current(400, 90)
        assert ratio > 1.5

    def test_ratio_per_nm_in_era_range(self, model):
        r = model.leakage_ratio_per_nm(90.0)
        assert 1.02 < r < 1.15

    def test_leakage_more_sensitive_than_drive(self, model):
        drive_ratio = model.drive_current(400, 80) / model.drive_current(400, 90)
        leak_ratio = model.leakage_current(400, 80) / model.leakage_current(400, 90)
        assert leak_ratio > drive_ratio

    @given(st.floats(50, 200))
    def test_always_positive(self, model, length):
        assert model.leakage_current(400, length) > 0
        assert model.drive_current(400, length) > 0


class TestEquivalentLength:
    def test_uniform_gate_recovers_slice_cd(self, model):
        cds = [88.0] * 5
        widths = [80.0] * 5
        assert equivalent_length_drive(cds, widths, model) == pytest.approx(88.0, abs=0.01)
        assert equivalent_length_leakage(cds, widths, model) == pytest.approx(88.0, abs=0.01)

    def test_leakage_el_below_drive_el_for_necked_gate(self, model):
        # One narrow slice: dominates leakage, mild for drive.
        cds = [90, 90, 70, 90, 90]
        widths = [80.0] * 5
        el_drive = equivalent_length_drive(cds, widths, model)
        el_leak = equivalent_length_leakage(cds, widths, model)
        assert el_leak < el_drive < 90
        # Leakage EL is pulled hard toward the narrow slice.
        assert el_leak < 86

    def test_el_bounded_by_extreme_slices(self, model):
        cds = [80, 85, 90, 95, 100]
        widths = [80.0] * 5
        for el in (equivalent_length_drive(cds, widths, model),
                   equivalent_length_leakage(cds, widths, model)):
            assert 80 <= el <= 100

    def test_open_slices_excluded_from_current(self, model):
        cds = [90, 0, 90]
        widths = [100.0] * 3
        el = equivalent_length_drive(cds, widths, model)
        # Two thirds of the width conducting at 90 -> equivalent is longer.
        assert el > 90

    def test_validation_errors(self, model):
        with pytest.raises(ValueError):
            equivalent_length_drive([90], [80, 80], model)
        with pytest.raises(ValueError):
            equivalent_length_drive([], [], model)
        with pytest.raises(ValueError):
            equivalent_length_leakage([0, 0], [80, 80], model)

    @given(st.lists(st.floats(70, 120), min_size=2, max_size=8))
    def test_el_within_slice_range(self, model, cds):
        widths = [60.0] * len(cds)
        el = equivalent_length_drive(cds, widths, model)
        assert min(cds) - 0.01 <= el <= max(cds) + 0.01


class TestExtractFromMeasurement:
    def make_measurement(self, cds):
        m = GateCdMeasurement(gate_rect=Rect(0, 0, 90, 400), drawn_cd=90)
        m.slice_positions = list(range(len(cds)))
        m.slice_cds = list(cds)
        return m

    def test_healthy_gate(self, model):
        result = extract_equivalent_lengths(self.make_measurement([88, 87, 86, 87, 88]), model)
        assert not result.failed
        assert result.length_drive == pytest.approx(87, abs=1)
        assert result.drive_delta < 0
        assert result.length_leakage <= result.length_drive

    def test_failed_gate_flagged(self, model):
        result = extract_equivalent_lengths(self.make_measurement([90, 0, 90]), model)
        assert result.failed
        assert result.length_drive == 90  # falls back to drawn

    def test_width_override(self, model):
        result = extract_equivalent_lengths(
            self.make_measurement([90, 90]), model, width=640.0
        )
        assert result.width == 640.0
