"""Tests for flexible design rules (image-parameter classification)."""

import pytest

from repro.dfm import FdrLimits, explore_pitch_rules
from repro.dfm.flexible import classify
from repro.litho import LithographySimulator
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def sim():
    tech = make_tech_90nm()
    simulator = LithographySimulator.for_tech(tech)
    simulator.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    return simulator


class TestClassify:
    def test_unprinted_is_flagged(self):
        assert classify(90, 320, 0.0, 2.0, 1.0, FdrLimits()) == "flagged"

    def test_good_parameters_preferred(self):
        assert classify(90, 320, 90.0, 2.0, 1.5, FdrLimits()) == "preferred"

    def test_marginal_parameters_allowed(self):
        limits = FdrLimits()
        verdict = classify(90, 640, 78.0, 0.7, 3.0, limits)
        assert verdict == "allowed"

    def test_poor_nils_flagged(self):
        assert classify(90, 500, 88.0, 0.2, 1.5, FdrLimits()) == "flagged"

    def test_huge_cd_error_flagged(self):
        assert classify(90, 500, 60.0, 2.0, 1.5, FdrLimits()) == "flagged"


class TestExplorePitchRules:
    @pytest.fixture(scope="class")
    def verdicts(self, sim):
        return explore_pitch_rules(sim, 90.0, [320, 480, 960])

    def test_one_verdict_per_pitch(self, verdicts):
        assert [v.pitch for v in verdicts] == [320, 480, 960]

    def test_anchor_pitch_not_flagged(self, verdicts):
        anchor = verdicts[0]
        assert anchor.classification in ("preferred", "allowed")
        assert abs(anchor.cd_error) < 2.0

    def test_parameters_populated(self, verdicts):
        for v in verdicts:
            assert v.nils > 0
            assert v.meef > 0
            assert v.printed_cd > 0

    def test_uncorrected_mid_pitch_worse_than_anchor(self, verdicts):
        # Without OPC the 480 pitch prints ~15 nm thin: worse CD fidelity.
        assert abs(verdicts[1].cd_error) > abs(verdicts[0].cd_error)
