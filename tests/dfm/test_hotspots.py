"""Tests for pattern-based hotspot classification."""

import numpy as np
import pytest

from repro.dfm import HotspotLibrary, cluster_snippets, extract_snippets
from repro.dfm.hotspots import Snippet
from repro.geometry import Point, Polygon, Rect
from repro.opc.orc import OrcViolation


def line_pair(x0, gap):
    """Two vertical lines with the given gap, around x0."""
    return [
        Polygon.from_rect(Rect(x0 - 90 - gap / 2, -500, x0 - gap / 2, 500)),
        Polygon.from_rect(Rect(x0 + gap / 2, -500, x0 + gap / 2 + 90, 500)),
    ]


def violation(x, y, kind="pinch"):
    return OrcViolation(kind, Point(x, y), 40.0, 54.0)


class TestSnippets:
    def test_bitmap_shape_and_content(self):
        polys = line_pair(0, 140)
        (snippet,) = extract_snippets(polys, [violation(0, 0)], radius=400, grid=16)
        assert snippet.bitmap.shape == (16, 16)
        assert snippet.bitmap.any()
        assert not snippet.bitmap.all()

    def test_translation_invariance(self):
        a = extract_snippets(line_pair(0, 140), [violation(0, 0)])[0]
        b = extract_snippets(line_pair(5000, 140), [violation(5000, 0)])[0]
        assert a.similarity(b) == 1.0

    def test_different_configurations_differ(self):
        a = extract_snippets(line_pair(0, 140), [violation(0, 0)])[0]
        b = extract_snippets(line_pair(0, 600), [violation(0, 0)])[0]
        assert a.similarity(b) < 0.9

    def test_similarity_bounds(self):
        a = Snippet(Point(0, 0), "pinch", np.zeros((8, 8), dtype=bool))
        b = Snippet(Point(0, 0), "pinch", np.ones((8, 8), dtype=bool))
        assert a.similarity(a) == 1.0  # empty vs empty
        assert a.similarity(b) == 0.0

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            extract_snippets([], [], radius=0)
        with pytest.raises(ValueError):
            extract_snippets([], [], grid=1)


class TestClustering:
    def make_population(self):
        polys = []
        violations = []
        # Five instances of configuration A (tight pair)...
        for k in range(5):
            x = k * 3000
            polys.extend(line_pair(x, 140))
            violations.append(violation(x, 0))
        # ...and two of configuration B (wide pair).
        for k in range(2):
            x = 20000 + k * 3000
            polys.extend(line_pair(x, 600))
            violations.append(violation(x, 0, kind="bridge"))
        return polys, violations

    def test_two_classes_found(self):
        polys, violations = self.make_population()
        snippets = extract_snippets(polys, violations)
        classes = cluster_snippets(snippets)
        assert len(classes) == 2
        assert classes[0].count == 5  # sorted by frequency
        assert classes[1].count == 2

    def test_kind_histogram(self):
        polys, violations = self.make_population()
        classes = cluster_snippets(extract_snippets(polys, violations))
        assert classes[0].kinds == {"pinch": 5}
        assert classes[1].kinds == {"bridge": 2}

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            cluster_snippets([], similarity_threshold=0.0)

    def test_near_duplicate_configurations_merge(self):
        # Gap 140 vs gap 160: sub-pixel difference on the coarse signature
        # grid, so the two sites classify together.
        polys = line_pair(0, 140) + line_pair(5000, 160)
        violations = [violation(0, 0), violation(5000, 0)]
        classes = cluster_snippets(extract_snippets(polys, violations),
                                   similarity_threshold=0.5)
        assert len(classes) == 1
        assert classes[0].count == 2


class TestLibraryMatch:
    def test_matches_known_pattern_in_new_layout(self):
        train_polys = line_pair(0, 140)
        library = HotspotLibrary.from_orc(train_polys, [violation(0, 0)])
        # New layout: the same configuration at a new location plus a
        # benign isolated line.
        new_polys = line_pair(9000, 140) + [
            Polygon.from_rect(Rect(30000, -500, 30090, 500))
        ]
        hits = library.match(new_polys, [Point(9000, 0), Point(30045, 0)])
        assert [(round(p.x), cls) for p, cls in hits] == [(9000, 0)]

    def test_empty_site_skipped(self):
        library = HotspotLibrary.from_orc(line_pair(0, 140), [violation(0, 0)])
        assert library.match([], [Point(0, 0)]) == []

    def test_len(self):
        library = HotspotLibrary.from_orc(line_pair(0, 140), [violation(0, 0)])
        assert len(library) == 1
